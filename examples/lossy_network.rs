//! Lossy network demo: the same FedOMD run over a perfect in-process
//! channel and over a deterministic faulty network (`SimNetChannel`),
//! showing retries, dropped frames, and partial aggregation at work.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use std::collections::BTreeMap;

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};
use fedomd_telemetry::{MemoryObserver, RoundEvent};
use fedomd_transport::{Channel, FaultConfig, InProcChannel, SimNetChannel};

fn main() {
    let dataset = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&dataset, &FederationConfig::mini(4, 0));
    let cfg = TrainConfig::mini(0);
    let omd = FedOmdConfig::paper();

    // Baseline: the fault-free in-process channel a `FedRun` uses by
    // default (routed explicitly here so we can read its stats after).
    let mut inproc = InProcChannel::new();
    let clean = FedRun::new(&clients, dataset.n_classes)
        .train(cfg.clone())
        .omd(omd)
        .channel(&mut inproc)
        .run();

    // The same run across a lossy network: 15 % frame loss, one retry,
    // client 2 a 4x straggler against a 50 ms round deadline. Everything
    // is derived from `seed`, so reruns reproduce the exact loss pattern.
    let faults = FaultConfig {
        seed: 7,
        drop_prob: 0.15,
        max_retries: 1,
        straggler_ids: vec![2],
        straggler_factor: 4.0,
        round_timeout_ms: 50.0,
        ..Default::default()
    };
    let mut simnet = SimNetChannel::new(faults);
    // A telemetry observer rides along and attributes every lost frame to
    // its payload kind — something the transport's aggregate counters
    // cannot tell you.
    let mut mem = MemoryObserver::new();
    let lossy = FedRun::new(&clients, dataset.n_classes)
        .train(cfg.clone())
        .omd(omd)
        .channel(&mut simnet)
        .observer(&mut mem)
        .run();
    let net = simnet.stats();

    println!("channel    test acc   uplink MB   dropped frames   retries");
    println!(
        "in-proc    {:6.2}%    {:8.2}    {:14}   {:7}",
        100.0 * clean.test_acc,
        clean.comms.uplink_bytes as f64 / 1e6,
        clean.comms.dropped_messages,
        inproc.stats().retries,
    );
    println!(
        "simnet     {:6.2}%    {:8.2}    {:14}   {:7}",
        100.0 * lossy.test_acc,
        lossy.comms.uplink_bytes as f64 / 1e6,
        lossy.comms.dropped_messages,
        net.retries,
    );
    println!(
        "\nsimnet sent {} frames, delivered {} — the server aggregates whatever",
        net.sent_frames, net.delivered_frames
    );
    println!("arrives by the deadline; missing parties just sit a round out.");

    let mut lost: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for e in &mem.events {
        if let RoundEvent::FrameDropped { kind, bytes } = e {
            let slot = lost.entry(kind).or_default();
            slot.0 += 1;
            slot.1 += bytes;
        }
    }
    println!("\nlost frames by payload kind (from the telemetry trace):");
    for (kind, (count, bytes)) in &lost {
        println!(
            "  {kind:12} {count:4} frames, {:.1} kB",
            *bytes as f64 / 1e3
        );
    }
    println!(
        "partial rounds: {} of {} aggregations ran with fewer than {} parties",
        mem.events
            .iter()
            .filter(|e| matches!(
                e,
                RoundEvent::AggregationDone { participants } if *participants < clients.len()
            ))
            .count(),
        mem.count("aggregation_done"),
        clients.len()
    );
}
