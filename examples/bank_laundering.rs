//! The paper's second motivating application (§1): "bank money laundering
//! detection" across institutions that cannot share transaction graphs.
//!
//! Each bank holds a transaction subgraph; account features (transaction
//! statistics) are bank-conditional because products and customer bases
//! differ. This example focuses on the *operational* questions a bank
//! consortium would ask of FedOMD: what does each mechanism contribute
//! (the paper's Table 6 ablation), and what does the exchange cost on the
//! wire (Table 3's argument)?
//!
//! ```text
//! cargo run --release --example bank_laundering
//! ```

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, SynthParams};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};

fn main() {
    // Account graph: 1500 accounts, classes {retail, business, mule}.
    let params = SynthParams {
        name: "interbank-accounts".into(),
        n_nodes: 1500,
        n_edges: 7000,
        n_classes: 3,
        n_features: 48, // transaction statistics
        n_communities: 24,
        intra_ratio: 0.88, // most transfers stay within a bank's book
        label_purity: 0.75,
        class_signature_dims: 8,
        nnz_per_node: 8,
    };
    let dataset = generate(&params, 7);
    let clients = setup_federation(&dataset, &FederationConfig::mini(4, 7));
    println!(
        "consortium of {} banks over {} accounts / {} transfers\n",
        clients.len(),
        dataset.n_nodes(),
        dataset.n_edges()
    );

    let cfg = TrainConfig::mini(7);
    let variants = [
        (
            "neither (plain fed Ortho-GCN)",
            FedOmdConfig {
                use_ortho: false,
                use_cmd: false,
                ..FedOmdConfig::paper()
            },
        ),
        ("orthogonality only", FedOmdConfig::ortho_only()),
        ("CMD only", FedOmdConfig::cmd_only()),
        ("full FedOMD", FedOmdConfig::paper()),
    ];

    println!(
        "{:<32} {:>9} {:>11} {:>12}",
        "variant", "accuracy", "uplink MB", "stats share"
    );
    for (label, omd) in variants {
        let r = FedRun::new(&clients, dataset.n_classes)
            .train(cfg.clone())
            .omd(omd)
            .run();
        println!(
            "{:<32} {:>8.2}% {:>10.2} {:>11.3}%",
            label,
            100.0 * r.test_acc,
            r.comms.uplink_bytes as f64 / 1e6,
            100.0 * r.comms.stats_fraction()
        );
    }
    println!(
        "\nThe CMD statistics ride along at a fraction of a percent of the \
         weight traffic — the paper's 'negligible communication cost' claim, \
         here measured on the wire."
    );
}
