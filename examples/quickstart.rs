//! Quickstart: generate a synthetic citation graph, cut it into three
//! parties with Louvain, train FedOMD, and print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedomd_core::{FedRun, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig};
use fedomd_telemetry::ConsoleObserver;

fn main() {
    // 1. A Cora-like synthetic dataset (2708-node scale is `DatasetName::Cora`;
    //    the mini variant keeps this example under a minute).
    let dataset = generate(&spec(DatasetName::CoraMini), 0);
    println!(
        "dataset: {} ({} nodes, {} edges, {} classes, {} features)",
        dataset.name,
        dataset.n_nodes(),
        dataset.n_edges(),
        dataset.n_classes,
        dataset.n_features()
    );

    // 2. The Louvain cut: three parties, non-i.i.d. by construction.
    let clients = setup_federation(&dataset, &FederationConfig::mini(3, 0));
    for (i, c) in clients.iter().enumerate() {
        println!(
            "  party {i}: {} nodes, {} edges, {} train / {} val / {} test",
            c.n_nodes(),
            c.edges.len(),
            c.splits.train.len(),
            c.splits.val.len(),
            c.splits.test.len()
        );
    }

    // 3. Train FedOMD with the paper's hyper-parameters, watching the
    //    per-evaluation round lines on stderr as it goes. Drop the
    //    `.observer(...)` line for a silent run — observers never change
    //    the numbers.
    let mut console = ConsoleObserver::stderr();
    let result = FedRun::new(&clients, dataset.n_classes)
        .config(RunConfig::mini(0))
        .observer(&mut console)
        .run();

    // 4. Report.
    println!(
        "\nFedOMD finished after {} communication rounds",
        result.comms.rounds
    );
    println!(
        "  best validation accuracy : {:.2}%",
        100.0 * result.val_acc
    );
    println!(
        "  test accuracy            : {:.2}%",
        100.0 * result.test_acc
    );
    println!(
        "  total traffic            : {:.2} MB",
        result.comms.total_bytes() as f64 / 1e6
    );
    println!(
        "  CMD statistics share     : {:.3}% of uplink",
        100.0 * result.comms.stats_fraction()
    );
}
