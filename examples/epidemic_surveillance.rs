//! The paper's motivating scenario (§1): regional health authorities want
//! to detect an epidemic whose *symptoms present differently by region*
//! ("the features of coronavirus appear the non-i.i.d phenomenon in
//! different regions"), but cannot pool patient contact graphs.
//!
//! We synthesise a patient-contact graph whose communities are regions,
//! with region-conditional symptom features (the non-i.i.d. shift), cut it
//! across five health authorities, and compare isolated local models,
//! plain federated GCN, and FedOMD — whose CMD constraint aligns the
//! regional feature distributions exactly as the paper argues.
//!
//! ```text
//! cargo run --release --example epidemic_surveillance
//! ```

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, SynthParams};
use fedomd_federated::baselines::{run_baseline, Baseline};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};

fn main() {
    // Patient contact network: 1200 patients, 3 diagnosis classes
    // (healthy / influenza-like / target pathogen), region-structured.
    let params = SynthParams {
        name: "patient-contacts".into(),
        n_nodes: 1200,
        n_edges: 4800,
        n_classes: 3,
        n_features: 64, // symptom indicators
        n_communities: 30,
        intra_ratio: 0.9,  // contacts are overwhelmingly regional
        label_purity: 0.7, // outbreaks cluster by region but leak
        class_signature_dims: 10,
        nnz_per_node: 9,
    };
    let dataset = generate(&params, 42);
    println!(
        "patient-contact graph: {} patients, {} contacts, homophily {:.2}",
        dataset.n_nodes(),
        dataset.n_edges(),
        dataset.graph.edge_homophily(&dataset.labels)
    );

    let clients = setup_federation(&dataset, &FederationConfig::mini(5, 42));
    println!("{} health authorities participate\n", clients.len());

    let cfg = TrainConfig::mini(42);
    let mut rows = Vec::new();
    for b in [Baseline::LocGcn, Baseline::FedGcn] {
        let r = run_baseline(b, &clients, dataset.n_classes, &cfg);
        rows.push((r.algorithm.clone(), r.test_acc, r.comms.total_bytes()));
    }
    let r = FedRun::new(&clients, dataset.n_classes)
        .train(cfg.clone())
        .omd(FedOmdConfig::paper())
        .run();
    rows.push((r.algorithm.clone(), r.test_acc, r.comms.total_bytes()));

    println!("{:<10} {:>10} {:>12}", "model", "accuracy", "traffic");
    for (name, acc, bytes) in rows {
        println!(
            "{:<10} {:>9.2}% {:>9.2} MB",
            name,
            100.0 * acc,
            bytes as f64 / 1e6
        );
    }
    println!(
        "\nFedOMD aligns each authority's hidden symptom distribution to the \
         federation-wide one via the two-round moment exchange, so the shared \
         detector works in regions whose presentation differs."
    );
}
