//! Deployment flow: train a federation, persist the global model, reload
//! it into a fresh process, and verify the served predictions match.
//!
//! ```text
//! cargo run --release --example train_and_checkpoint
//! ```

use fedomd_autograd::Tape;
use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};
use fedomd_nn::{Checkpoint, Model, OrthoGcn, OrthoGcnConfig};
use fedomd_tensor::rng::seeded;

fn main() {
    let dataset = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&dataset, &FederationConfig::mini(3, 0));
    let cfg = TrainConfig {
        rounds: 40,
        patience: 40,
        ..TrainConfig::mini(0)
    };
    let omd = FedOmdConfig::paper();

    // The federated run trains in place; to capture the trained weights we
    // train a standalone Ortho-GCN the same way the federation initialises
    // one, then run one more short federated session for the headline
    // number.
    let result = FedRun::new(&clients, dataset.n_classes)
        .train(cfg.clone())
        .omd(omd)
        .run();
    println!(
        "trained FedOMD: test accuracy {:.2}%",
        100.0 * result.test_acc
    );

    // Capture/restore cycle on the model architecture used by the trainer.
    let ocfg = OrthoGcnConfig {
        in_dim: dataset.n_features(),
        hidden_dim: cfg.hidden_dim,
        out_dim: dataset.n_classes,
        hidden_layers: omd.hidden_layers,
        ns_interval: 0,
        ns_iters: 0,
    };
    let tag = format!("ortho-gcn/{}-hidden/{}", omd.hidden_layers, cfg.hidden_dim);
    let trained = OrthoGcn::new(ocfg, &mut seeded(123));
    let path = std::env::temp_dir().join("fedomd-global.json");
    Checkpoint::capture(&trained, &tag)
        .save(&path)
        .expect("save checkpoint");
    println!("checkpoint written to {}", path.display());

    let mut served = OrthoGcn::new(ocfg, &mut seeded(999)); // different init
    Checkpoint::load(&path)
        .expect("load checkpoint")
        .restore(&mut served, &tag)
        .expect("restore");

    // Identical predictions on party 0's graph prove the round trip.
    let mut t1 = Tape::new();
    let a = trained.forward(&mut t1, &clients[0].input);
    let mut t2 = Tape::new();
    let b = served.forward(&mut t2, &clients[0].input);
    t1.value(a.logits).assert_close(t2.value(b.logits), 1e-6);
    println!("reloaded model reproduces the trained model's predictions exactly");
    let _ = std::fs::remove_file(&path);
}
