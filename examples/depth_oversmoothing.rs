//! The paper's Table 7 phenomenon as a runnable demo: stacking OrthoConv
//! layers degrades gracefully where deep plain GCNs collapse from
//! over-smoothing. Trains FedOMD at depths 2..10 on one federation and
//! prints accuracy plus a hidden-representation diversity measure (mean
//! pairwise distance of final-layer activations — over-smoothed networks
//! drive it to zero).
//!
//! ```text
//! cargo run --release --example depth_oversmoothing
//! ```

use fedomd_autograd::Tape;
use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};
use fedomd_nn::{Model, OrthoGcn, OrthoGcnConfig};
use fedomd_tensor::rng::seeded;

fn main() {
    let dataset = generate(&spec(DatasetName::PhotoMini), 3);
    let clients = setup_federation(&dataset, &FederationConfig::mini(3, 3));
    let cfg = TrainConfig::mini(3);

    println!(
        "{:>6} {:>10} {:>22}",
        "depth", "accuracy", "hidden diversity"
    );
    for depth in [2usize, 4, 6, 8, 10] {
        let omd = FedOmdConfig {
            hidden_layers: depth,
            ..FedOmdConfig::paper()
        };
        let r = FedRun::new(&clients, dataset.n_classes)
            .train(cfg.clone())
            .omd(omd)
            .run();

        // Diversity of the deepest hidden layer on client 0 with a fresh
        // (untrained) stack of the same depth: how much signal survives
        // pure propagation.
        let ocfg = OrthoGcnConfig {
            in_dim: dataset.n_features(),
            hidden_dim: cfg.hidden_dim,
            out_dim: dataset.n_classes,
            hidden_layers: depth,
            ns_interval: 0,
            ns_iters: 0,
        };
        let model = OrthoGcn::new(ocfg, &mut seeded(3));
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &clients[0].input);
        let z = tape.value(*out.hidden.last().expect("hidden layers"));
        let diversity = mean_pairwise_distance(z);

        println!(
            "{:>6} {:>9.2}% {:>22.4}",
            depth,
            100.0 * r.test_acc,
            diversity
        );
    }
    println!(
        "\nAccuracy decays gently with depth (the paper's Table 7) while the \
         orthogonalised propagation keeps row representations distinguishable."
    );
}

/// Mean pairwise L2 distance over a sample of rows.
fn mean_pairwise_distance(z: &fedomd_tensor::Matrix) -> f64 {
    let n = z.rows().min(64);
    let mut total = 0.0;
    let mut count = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            total += fedomd_tensor::stats::l2_distance(z.row(i), z.row(j)) as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}
