#!/usr/bin/env bash
# Kernel benchmark runner: executes the hot-path Criterion benches with a
# fixed per-benchmark time budget and folds the results into the
# machine-readable perf trajectory at BENCH_kernels.json.
#
#   scripts/bench.sh <run-label> [notes]
#
# e.g.  scripts/bench.sh pr4-before "seed kernels"
#       scripts/bench.sh pr4-after  "packed GEMM + nnz-balanced SpMM"
#
# Runs are keyed by label; re-running a label replaces that run in place.
# BENCH_BUDGET_MS overrides the per-benchmark budget (default 1000 ms —
# fixed here so runs are comparable across invocations; compare the
# median_ns column between runs, the mean swings ±30% on a busy 1-CPU
# box while the many-iteration median holds still).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: scripts/bench.sh <run-label> [notes]}"
NOTES="${2:-}"
SUITES=(gemm spmm fed_round cmd net_round cohort_scale)

export CRITERION_BUDGET_MS="${BENCH_BUDGET_MS:-1000}"
JSONL="$(mktemp /tmp/fedomd_bench.XXXXXX.jsonl)"
trap 'rm -f "$JSONL"' EXIT
export CRITERION_JSON="$JSONL"

cargo build --release --workspace
for suite in "${SUITES[@]}"; do
    echo "== bench suite: $suite (budget ${CRITERION_BUDGET_MS} ms/bench)"
    cargo bench -q -p fedomd-bench --bench "$suite"
done

unset CRITERION_JSON
if [[ -n "$NOTES" ]]; then
    cargo run -q --release -p fedomd-bench --bin bench_report -- \
        --label "$LABEL" --jsonl "$JSONL" --out BENCH_kernels.json --notes "$NOTES"
else
    cargo run -q --release -p fedomd-bench --bin bench_report -- \
        --label "$LABEL" --jsonl "$JSONL" --out BENCH_kernels.json
fi
