#!/usr/bin/env bash
# Multi-process deployment smoke test: one `fedomd-server` and three
# `fedomd-client` OS processes train a short cora-mini run over TCP on
# 127.0.0.1 and must all exit 0. This is the only tier-1 check that
# crosses a real process boundary — the loopback golden tests
# (tests/net_golden.rs) run the same entry points from threads.
#
#   scripts/net_smoke.sh [sequential|pipelined]
#
# `pipelined` starts the server with --pipelined (fold-on-arrival round
# driver, DESIGN.md §16); the clients are identical in both modes — the
# handshake digest deliberately ignores the flag. Default: sequential.
# NET_SMOKE_ROUNDS overrides the round budget (default 4).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-sequential}"
SERVER_FLAGS=()
case "$MODE" in
    sequential) ;;
    pipelined) SERVER_FLAGS+=(--pipelined) ;;
    *)
        echo "net_smoke: unknown mode '$MODE' (want sequential or pipelined)" >&2
        exit 2
        ;;
esac

ROUNDS="${NET_SMOKE_ROUNDS:-4}"
BIN=target/release

cargo build -q --release -p fedomd-net

SERVER=""
CLIENTS=()
cleanup() {
    [[ -n "$SERVER" ]] && kill "$SERVER" 2>/dev/null || true
    [[ "${#CLIENTS[@]}" -gt 0 ]] && kill "${CLIENTS[@]}" 2>/dev/null || true
}
trap cleanup EXIT

# Probe a few ports in the dynamic range: a server that dies within the
# first half second hit a bind conflict, so move on to the next candidate.
ADDR=""
for _try in 1 2 3 4 5; do
    port=$((21000 + (RANDOM % 20000)))
    timeout 240 "$BIN/fedomd-server" --addr "127.0.0.1:$port" --clients 3 \
        --rounds "$ROUNDS" --phase-timeout-ms 10000 --quiet "${SERVER_FLAGS[@]+"${SERVER_FLAGS[@]}"}" &
    SERVER=$!
    sleep 0.5
    if kill -0 "$SERVER" 2>/dev/null; then
        ADDR="127.0.0.1:$port"
        break
    fi
    wait "$SERVER" 2>/dev/null || true
    SERVER=""
done
if [[ -z "$ADDR" ]]; then
    echo "net_smoke: could not start fedomd-server on any probed port" >&2
    exit 1
fi

for id in 0 1 2; do
    timeout 240 "$BIN/fedomd-client" --addr "$ADDR" --id "$id" --clients 3 \
        --rounds "$ROUNDS" --phase-timeout-ms 10000 --quiet &
    CLIENTS+=($!)
done

fail=0
if ! wait "$SERVER"; then
    echo "net_smoke: fedomd-server failed" >&2
    fail=1
fi
SERVER=""
for i in "${!CLIENTS[@]}"; do
    if ! wait "${CLIENTS[$i]}"; then
        echo "net_smoke: fedomd-client $i failed" >&2
        fail=1
    fi
done
CLIENTS=()
trap - EXIT

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "net_smoke: OK (1 server + 3 clients over 127.0.0.1, $ROUNDS rounds, $MODE)"
