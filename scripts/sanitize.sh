#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-heavy test subset.
#
#   scripts/sanitize.sh
#
# Runs the tests that exercise real threads and channels — the TCP
# deployment golden tests (`net_golden`) and the fold pipeline's
# proptests and exhaustive interleaving sweep — under TSan. TSan needs a
# nightly toolchain with the rust-src component (`-Z build-std` rebuilds
# std with instrumentation); when none is installed this script prints a
# clear skip message and exits 0, so it is safe to wire as a non-blocking
# CI job and as a local convenience on stable-only machines.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitize: no nightly toolchain installed; skipping TSan pass" \
         "(install with: rustup toolchain install nightly --component rust-src)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src (installed)'; then
    echo "sanitize: nightly lacks rust-src; skipping TSan pass" \
         "(install with: rustup component add rust-src --toolchain nightly)"
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
echo "sanitize: running TSan on ${host}"

# TSan flags an allocator/runtime race pattern in pure-Rust code rarely;
# suppressions would go here. One test thread at a time keeps reports
# readable and avoids cross-test noise.
export RUSTFLAGS="-Z sanitizer=thread"
export RUSTDOCFLAGS="-Z sanitizer=thread"
export TSAN_OPTIONS="halt_on_error=1"

run() {
    echo "sanitize: $*"
    cargo +nightly test -Z build-std --target "${host}" "$@" -- --test-threads=1
}

# The TCP deployment: thread-per-connection readers, acceptor, bounded
# inbound queue, generation-stamped eviction.
run -p fedomd-suite --test net_golden
# The fold pipeline: scoped fold thread + reorder window, spot-checked
# orders (the in-crate proptests) and the exhaustive n ≤ 5 sweeps.
run -p fedomd-federated --lib pipeline
run -p fedomd-federated --test interleaving
run -p fedomd-core --test interleaving

echo "sanitize: OK"
