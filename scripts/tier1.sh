#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   scripts/tier1.sh
#
# Builds the whole workspace in release mode and runs the full test
# suite. If rustfmt / clippy are installed, formatting and lints are
# checked too (skipped with a note otherwise so the gate still works on
# minimal toolchains).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# Massive-cohort smoke (DESIGN.md §15): a 2000-party planted federation
# completes sampled rounds with streaming aggregation. Ignored by default
# (it is release-speed work), run explicitly here in release mode.
cargo test -q --release --test end_to_end -- --ignored
# Benches are tier-1 compile targets: a PR must not break them even if it
# never runs them (perf runs go through scripts/bench.sh).
cargo bench --workspace --no-run

# Workspace invariant checker (DESIGN.md §13, §17): unsafe hygiene,
# serialization determinism, wall-clock confinement, panic-freedom, lock
# discipline, bounded-concurrency hygiene, and protocol exhaustiveness —
# plus a drift check that UNSAFE_INVENTORY.md still matches the unsafe
# sites in the tree.
cargo run -q --release -p fedomd-lint -- --check
cargo run -q --release -p fedomd-lint -- --inventory --check

# Exhaustive interleaving sweep (DESIGN.md §17): every arrival permutation
# and straggler subset for cohorts n ≤ 5 folds bit-identically to the
# sequential batch path, on both `fold_in_order` and the server collector.
# (Already part of `cargo test --workspace` above; run explicitly so a
# sweep failure is attributable at a glance. n = 6 stays `--ignored`.)
cargo test -q --release -p fedomd-federated --test interleaving
cargo test -q --release -p fedomd-core --test interleaving

# Multi-process deployment smoke (DESIGN.md §14): 1 fedomd-server and
# 3 fedomd-client OS processes complete a short run over 127.0.0.1 —
# once phase-sequential, once with the fold-on-arrival pipelined server
# (DESIGN.md §16).
scripts/net_smoke.sh sequential
scripts/net_smoke.sh pipelined

if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "tier1: rustfmt unavailable, skipping cargo fmt --check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "tier1: clippy unavailable, skipping cargo clippy"
fi

echo "tier1: OK"
