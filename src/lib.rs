//! Workspace facade crate: hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the `fedomd-*` member crates; the most useful entry
//! point for downstream users is [`fedomd_core`].

pub use fedomd_autograd as autograd;
pub use fedomd_core as core;
pub use fedomd_data as data;
pub use fedomd_federated as federated;
pub use fedomd_graph as graph;
pub use fedomd_metrics as metrics;
pub use fedomd_nn as nn;
pub use fedomd_sparse as sparse;
pub use fedomd_tensor as tensor;

/// One-stop imports for the common "generate → cut → train → evaluate"
/// flow (what `examples/quickstart.rs` uses).
pub mod prelude {
    pub use fedomd_core::{FedOmdConfig, FedRun, RunConfig};
    pub use fedomd_data::{generate, spec, DatasetName};
    pub use fedomd_federated::baselines::{run_baseline, Baseline};
    pub use fedomd_federated::{
        setup_federation, ClientData, FederationConfig, RunResult, TrainConfig,
    };
    pub use fedomd_nn::{Checkpoint, Model};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_covers_the_quickstart_flow() {
        use crate::prelude::*;
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        let clients = setup_federation(&ds, &FederationConfig::mini(2, 0));
        assert_eq!(clients.len(), 2);
        let _cfg: TrainConfig = TrainConfig::mini(0);
        let _omd = FedOmdConfig::paper();
        let _b = Baseline::parse("fedgcn").expect("known baseline");
    }
}
