//! Cross-crate gradient validation of the *complete* FedOMD objective
//! (Eq. 12 — cross-entropy + α·orthogonality + β·CMD) through a full
//! multi-layer graph network.
//!
//! Two complementary checks:
//!
//! * finite differences on a kink-free configuration (all-positive inputs
//!   and weights keep every ReLU strictly in its linear region, and the
//!   propagation weights are tape parameters with no stop-gradient paths),
//! * a descent check on the realistic Ortho-GCN (whose forward contains
//!   ReLU kinks and the weight-norm stop-gradient, where raw finite
//!   differences are not meaningful).

use std::sync::Arc;

use fedomd_autograd::check::finite_diff_check;
use fedomd_autograd::{CmdTargets, Tape, Var};
use fedomd_nn::{GraphInput, Model, OrthoGcn, OrthoGcnConfig};
use fedomd_sparse::normalized_adjacency;
use fedomd_tensor::rng::seeded;
use fedomd_tensor::Matrix;

fn tiny_input(n: usize, f: usize) -> GraphInput {
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 3) % n)).collect();
    let s = Arc::new(normalized_adjacency(n, &edges));
    // Strictly positive features.
    let x = Matrix::from_fn(n, f, |r, c| 0.1 + ((r * 13 + c * 5) % 7) as f32 / 7.0);
    GraphInput::new(s, x)
}

/// Eq. 12 on a hand-rolled 3-layer graph net with positive weights:
/// CE + α·‖W₁W₁ᵀ − I‖_F + β·Σ_l d_CMD(Z^l).
fn eq12_positive_net(
    input: &GraphInput,
    w0m: &Matrix,
    w1m: &Matrix,
    w2m: &Matrix,
    labels: &[usize],
    mask: &[usize],
    targets: &[CmdTargets; 2],
) -> (Tape, [Var; 3], f32) {
    let mut tape = Tape::new();
    let x = tape.constant((*input.x).clone());
    let w0 = tape.param(w0m.clone());
    let w1 = tape.param(w1m.clone());
    let w2 = tape.param(w2m.clone());

    let z1 = tape.matmul(x, w0);
    let z1 = tape.spmm(input.s.clone(), z1);
    let z1 = tape.relu(z1);
    let z2 = tape.matmul(z1, w1);
    let z2 = tape.spmm(input.s.clone(), z2);
    let z2 = tape.relu(z2);
    let logits = tape.matmul(z2, w2);

    let mut loss = tape.softmax_cross_entropy(logits, labels, mask);
    let pen = tape.ortho_penalty(w1);
    let pen = tape.scale(pen, 5e-4);
    loss = tape.add(loss, pen);
    for (z, t) in [(z1, &targets[0]), (z2, &targets[1])] {
        let cmd = tape.cmd_loss_weighted(z, t, 1.0, 0.1);
        let cmd = tape.scale(cmd, 10.0);
        loss = tape.add(loss, cmd);
    }
    tape.backward(loss);
    let v = tape.scalar(loss);
    (tape, [w0, w1, w2], v)
}

#[test]
fn eq12_gradients_match_finite_differences_on_kink_free_net() {
    let n = 10;
    let (f, h, k) = (4, 5, 3);
    let input = tiny_input(n, f);
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    let mask: Vec<usize> = (0..n).step_by(2).collect();

    let mut rng = seeded(21);
    // Positive weights keep all pre-activations strictly positive.
    let w0 = fedomd_tensor::init::xavier_uniform(f, h, &mut rng).map(|v| v.abs() + 0.05);
    let w1 = fedomd_tensor::init::xavier_uniform(h, h, &mut rng).map(|v| v.abs() + 0.05);
    let w2 = fedomd_tensor::init::xavier_uniform(h, k, &mut rng).map(|v| v.abs() + 0.05);

    let targets = {
        let mk = |seed: u64| {
            CmdTargets::from_matrix(
                &fedomd_tensor::init::standard_normal(12, h, &mut seeded(seed))
                    .map(|v| v.abs() * 0.4 + 0.2),
                5,
            )
        };
        [mk(31), mk(32)]
    };

    let (tape, vars, _) = eq12_positive_net(&input, &w0, &w1, &w2, &labels, &mask, &targets);
    let ws = [w0.clone(), w1.clone(), w2.clone()];
    for (idx, var) in vars.iter().enumerate() {
        let analytic = tape.grad(*var).cloned().expect("param gradient exists");
        finite_diff_check(
            |m| {
                let mut sub = ws.clone();
                sub[idx] = m.clone();
                eq12_positive_net(&input, &sub[0], &sub[1], &sub[2], &labels, &mask, &targets).2
            },
            &ws[idx],
            &analytic,
            1e-3,
            3e-2,
        );
    }
}

#[test]
fn eq12_gradient_step_descends_on_real_ortho_gcn() {
    // On the realistic Ortho-GCN (ReLU kinks + weight-norm stop-gradient)
    // the analytic gradient must still be a descent direction for the full
    // Eq. 12 objective.
    let n = 12;
    let (f, k) = (5, 3);
    let input = tiny_input(n, f);
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    let mask: Vec<usize> = (0..n).collect();

    let ocfg = OrthoGcnConfig {
        in_dim: f,
        hidden_dim: 6,
        out_dim: k,
        hidden_layers: 3,
        ns_interval: 0,
        ns_iters: 0,
    };
    let mut model = OrthoGcn::new(ocfg, &mut seeded(40));

    let targets: Vec<CmdTargets> = {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &input);
        out.hidden
            .iter()
            .map(|&hv| CmdTargets::from_matrix(&tape.value(hv).map(|v| v * 1.2 + 0.05), 5))
            .collect()
    };

    let objective = |model: &OrthoGcn, want_grads: bool| -> (f32, Option<Vec<Matrix>>) {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &input);
        let mut loss = tape.softmax_cross_entropy(out.logits, &labels, &mask);
        for &w in &out.ortho_weight_vars {
            let pen = tape.ortho_penalty(w);
            let pen = tape.scale(pen, 5e-4);
            loss = tape.add(loss, pen);
        }
        for (&hv, t) in out.hidden.iter().zip(&targets) {
            let cmd = tape.cmd_loss_weighted(hv, t, 1.0, 0.1);
            let cmd = tape.scale(cmd, 10.0);
            loss = tape.add(loss, cmd);
        }
        if !want_grads {
            return (tape.scalar(loss), None);
        }
        tape.backward(loss);
        let grads = out
            .param_vars
            .iter()
            .map(|&v| {
                tape.grad(v).cloned().unwrap_or_else(|| {
                    let val = tape.value(v);
                    Matrix::zeros(val.rows(), val.cols())
                })
            })
            .collect();
        (tape.scalar(loss), Some(grads))
    };

    let (before, grads) = objective(&model, true);
    let grads = grads.expect("grads");
    let mut params = model.params();
    for (p, g) in params.iter_mut().zip(&grads) {
        fedomd_tensor::ops::axpy(p, -0.02, g);
    }
    model.set_params(&params);
    let (after, _) = objective(&model, false);
    assert!(
        after < before,
        "analytic gradient was not a descent direction: {before} -> {after}"
    );
}
