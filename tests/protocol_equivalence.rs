//! The paper's central communication claim (§4.4, Algorithm 1): the
//! 2-round exchange implicitly computes the pooled ("IID") distribution.
//! Here we verify it on *real* model activations — each client runs its
//! Ortho-GCN forward on its Louvain-cut subgraph, and the distributed
//! statistics must match a centralised computation over the stacked
//! activations.

use fedomd_autograd::Tape;
use fedomd_core::protocol::exchange;
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig};
use fedomd_nn::{Model, OrthoGcn, OrthoGcnConfig};
use fedomd_tensor::rng::seeded;
use fedomd_tensor::stats::{central_moments, column_means};
use fedomd_tensor::Matrix;

#[test]
fn two_round_protocol_equals_centralized_on_model_activations() {
    let ds = generate(&spec(DatasetName::CoraMini), 3);
    let clients = setup_federation(&ds, &FederationConfig::mini(4, 3));

    let ocfg = OrthoGcnConfig {
        in_dim: ds.n_features(),
        hidden_dim: 16,
        out_dim: ds.n_classes,
        hidden_layers: 2,
        ns_interval: 0,
        ns_iters: 0,
    };
    let model = OrthoGcn::new(ocfg, &mut seeded(9));

    // Per-client hidden activations from the shared model.
    let sessions: Vec<(Tape, Vec<fedomd_autograd::Var>)> = clients
        .iter()
        .map(|c| {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &c.input);
            (tape, out.hidden)
        })
        .collect();
    let per_client: Vec<Vec<&Matrix>> = sessions
        .iter()
        .map(|(tape, hidden)| hidden.iter().map(|&h| tape.value(h)).collect())
        .collect();

    let stats = exchange(&per_client, 5).expect("non-degenerate federation");

    // Centralised reference: stack every client's activations per layer.
    let n_layers = per_client[0].len();
    for layer in 0..n_layers {
        let dim = per_client[0][layer].cols();
        let mut pooled = Vec::new();
        let mut rows = 0;
        for client in &per_client {
            pooled.extend_from_slice(client[layer].as_slice());
            rows += client[layer].rows();
        }
        let pooled = Matrix::from_vec(rows, dim, pooled);
        let mean = column_means(&pooled);
        for (a, b) in stats.means[layer].iter().zip(&mean) {
            assert!((a - b).abs() < 1e-4, "layer {layer} mean: {a} vs {b}");
        }
        for (o, order) in (2u32..=5).enumerate() {
            let mom = central_moments(&pooled, &mean, order);
            for (a, b) in stats.moments[layer][o].iter().zip(&mom) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "layer {layer} order {order}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn protocol_uplink_is_orders_smaller_than_weights() {
    // Table 3's communication argument, measured on a real model: the
    // statistics a client ships per round are O(layers·d_h) scalars versus
    // O(f·d_h) weight scalars — a >10× gap at Cora-like dimensions.
    let ds = generate(&spec(DatasetName::CoraMini), 4);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 4));
    let ocfg = OrthoGcnConfig {
        in_dim: ds.n_features(),
        hidden_dim: 32,
        out_dim: ds.n_classes,
        hidden_layers: 2,
        ns_interval: 0,
        ns_iters: 0,
    };
    let model = OrthoGcn::new(ocfg, &mut seeded(10));
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, &clients[0].input);
    let hidden: Vec<&Matrix> = out.hidden.iter().map(|&h| tape.value(h)).collect();
    let stats = exchange(&[hidden], 5).expect("non-degenerate federation");

    let stat_scalars = stats.uplink_scalars();
    let weight_scalars = model.n_scalars();
    assert!(
        stat_scalars * 10 < weight_scalars,
        "stats {stat_scalars} not ≪ weights {weight_scalars}"
    );
}
