//! Reproducibility: every stage of the pipeline is a pure function of its
//! seed, so entire federated runs are bit-for-bit repeatable — the property
//! that makes the experiment records in EXPERIMENTS.md regenerable.

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::baselines::{run_baseline, Baseline};
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};

#[test]
fn whole_fedomd_run_is_bit_reproducible() {
    let run = || {
        let ds = generate(&spec(DatasetName::CiteseerMini), 11);
        let clients = setup_federation(&ds, &FederationConfig::mini(3, 11));
        let cfg = TrainConfig {
            rounds: 15,
            ..TrainConfig::mini(11)
        };
        FedRun::new(&clients, ds.n_classes)
            .train(cfg)
            .omd(FedOmdConfig::paper())
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.test_acc, b.test_acc);
    assert_eq!(a.val_acc, b.val_acc);
    assert_eq!(a.best_round, b.best_round);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.val_acc, y.val_acc);
        assert_eq!(x.train_loss, y.train_loss);
    }
    assert_eq!(a.comms, b.comms);
}

#[test]
fn stochastic_baselines_are_reproducible_too() {
    // FedSage+ (random impairment + generated noise) and FedLIT (k-means)
    // are the most randomness-heavy baselines.
    for b in [Baseline::FedSagePlus, Baseline::FedLit] {
        let run = || {
            let ds = generate(&spec(DatasetName::CoraMini), 7);
            let clients = setup_federation(&ds, &FederationConfig::mini(3, 7));
            let cfg = TrainConfig {
                rounds: 8,
                ..TrainConfig::mini(7)
            };
            run_baseline(b, &clients, ds.n_classes, &cfg)
        };
        let x = run();
        let y = run();
        assert_eq!(x.test_acc, y.test_acc, "{:?} not reproducible", b);
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let acc = |seed: u64| {
        let ds = generate(&spec(DatasetName::CoraMini), seed);
        let clients = setup_federation(&ds, &FederationConfig::mini(3, seed));
        let cfg = TrainConfig {
            rounds: 15,
            ..TrainConfig::mini(seed)
        };
        FedRun::new(&clients, ds.n_classes)
            .train(cfg)
            .omd(FedOmdConfig::paper())
            .run()
    };
    let a = acc(1);
    let b = acc(2);
    // Histories of independent seeds should not coincide point-for-point.
    let identical = a.history.len() == b.history.len()
        && a.history
            .iter()
            .zip(&b.history)
            .all(|(x, y)| x.val_acc == y.val_acc);
    assert!(
        !identical,
        "two different seeds produced identical histories"
    );
}
