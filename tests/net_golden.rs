//! Golden guarantees of the real TCP deployment (DESIGN.md §14): a run
//! spread across OS-level sockets on 127.0.0.1 reproduces the in-process
//! run's accuracy and history exactly; a client that departs mid-run
//! degrades the federation to partial aggregation rather than wedging it;
//! and a server killed mid-run resumes from its checkpoint while the
//! clients reconnect on their own.
//!
//! The server and clients here are the same `serve_on` / `run_client`
//! entry points the `fedomd-server` / `fedomd-client` binaries wrap —
//! run from threads so one test process exercises real sockets without
//! spawning subprocesses (scripts/net_smoke.sh covers the multi-process
//! variant).

use std::net::TcpListener;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use fedomd_core::{ClientOutcome, FedRun, RunCheckpoint, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, ClientData, FederationConfig};
use fedomd_net::{run_client, serve_on, ClientOpts, ClientReport, NetConfig, ServeOpts};
use fedomd_telemetry::NullObserver;

fn mini_setup(seed: u64) -> (String, Vec<ClientData>, usize) {
    let ds = generate(&spec(DatasetName::CoraMini), seed);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, seed));
    (ds.name.clone(), clients, ds.n_classes)
}

/// Loopback-tuned knobs: quick reconnects, a bounded join window, and the
/// given per-phase deadline (generous where every frame must arrive,
/// short where a test wants the degraded path to trigger fast).
fn quick_net(phase: Duration) -> NetConfig {
    NetConfig {
        phase_timeout: phase,
        connect_attempts: 100,
        connect_backoff: Duration::from_millis(100),
        join_timeout: Duration::from_secs(60),
        ..NetConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedomd-net-golden-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One client process, as a thread. Panics (failing the test at join)
/// if the client errors out instead of producing a report.
#[allow(clippy::too_many_arguments)]
fn spawn_client(
    addr: String,
    id: u32,
    run: RunConfig,
    dataset: String,
    n_clients: usize,
    shard: ClientData,
    n_classes: usize,
    net: NetConfig,
) -> JoinHandle<ClientReport> {
    std::thread::spawn(move || {
        let opts = ClientOpts { addr, id, net };
        run_client(
            &opts,
            &run,
            &dataset,
            n_clients,
            &shard,
            n_classes,
            &mut NullObserver,
        )
        .unwrap_or_else(|e| panic!("client {id}: {e}"))
    })
}

/// One full loopback federation: a server (with its own config — e.g.
/// `--pipelined` on) plus one client thread per shard, each running
/// `client_runs[id]`. Panics unless every client finishes cleanly.
fn run_loopback(
    server_run: &RunConfig,
    client_runs: &[RunConfig],
    name: &str,
    clients: &[ClientData],
    n_classes: usize,
) -> fedomd_federated::RunResult {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net = quick_net(Duration::from_secs(20));
    let server = {
        let (run, name) = (server_run.clone(), name.to_string());
        let opts = ServeOpts {
            net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            spawn_client(
                addr.clone(),
                id as u32,
                client_runs[id].clone(),
                name.to_string(),
                clients.len(),
                shard.clone(),
                n_classes,
                net,
            )
        })
        .collect();
    let result = server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for (id, worker) in workers.into_iter().enumerate() {
        let report = worker.join().expect("client thread");
        assert_eq!(report.outcome, ClientOutcome::Finished, "client {id}");
    }
    result
}

#[test]
fn a_pipelined_server_reproduces_the_sequential_tcp_run() {
    let (name, clients, n_classes) = mini_setup(4);
    let run = RunConfig::mini(4).with_rounds(10).with_patience(40);
    let same: Vec<RunConfig> = vec![run.clone(); clients.len()];

    let sequential = run_loopback(&run, &same, &name, &clients, n_classes);
    assert!(sequential.improved(), "sequential run must actually learn");
    // The handshake digest excludes the pipeline flag, so unmodified
    // sequential clients are admitted by the fold-on-arrival server.
    let pipelined = run_loopback(
        &run.clone().with_pipelined(true),
        &same,
        &name,
        &clients,
        n_classes,
    );

    assert_eq!(pipelined.test_acc, sequential.test_acc, "test accuracy");
    assert_eq!(pipelined.val_acc, sequential.val_acc, "val accuracy");
    assert_eq!(pipelined.best_round, sequential.best_round, "best round");
    assert_eq!(pipelined.history, sequential.history, "evaluation history");
}

#[test]
fn a_pipelined_server_reproduces_the_cohort_sampled_tcp_run() {
    let (name, clients, n_classes) = mini_setup(5);
    // Cohort sampling exercises the sparse-candidate weight fold: only the
    // sampled senders appear in the reorder window's expected schedule.
    let run = RunConfig::mini(5)
        .with_rounds(8)
        .with_patience(40)
        .with_cohort(fedomd_federated::CohortConfig::fraction(0.67, 9));
    let same: Vec<RunConfig> = vec![run.clone(); clients.len()];

    let sequential = run_loopback(&run, &same, &name, &clients, n_classes);
    let pipelined = run_loopback(
        &run.clone().with_pipelined(true),
        &same,
        &name,
        &clients,
        n_classes,
    );

    assert_eq!(pipelined.test_acc, sequential.test_acc, "test accuracy");
    assert_eq!(pipelined.val_acc, sequential.val_acc, "val accuracy");
    assert_eq!(pipelined.best_round, sequential.best_round, "best round");
    assert_eq!(pipelined.history, sequential.history, "evaluation history");
}

#[test]
fn a_departing_client_degrades_under_a_pipelined_server() {
    let (name, clients, n_classes) = mini_setup(6);
    let rounds = 8;
    let run = RunConfig::mini(6).with_rounds(rounds).with_patience(40);
    // Client 2 leaves after 3 of the 8 rounds, so the fold loop must close
    // each later phase at the shrunken live-peer count instead of burning
    // the 20 s deadline waiting on a reorder-window slot that never fills.
    let mut client_runs: Vec<RunConfig> = vec![run.clone(); clients.len()];
    client_runs[2].train.rounds = 3;

    let sequential = run_loopback(&run, &client_runs, &name, &clients, n_classes);
    let pipelined = run_loopback(
        &run.clone().with_pipelined(true),
        &client_runs,
        &name,
        &clients,
        n_classes,
    );

    assert_eq!(
        pipelined.comms.rounds as usize, rounds,
        "the departure must degrade the federation, not wedge it"
    );
    // Which frames fold is round-deterministic (client 2 contributes
    // exactly rounds 0–2 in both runs), so even the degraded tail is
    // bit-identical across the two server modes.
    assert_eq!(pipelined.test_acc, sequential.test_acc, "test accuracy");
    assert_eq!(pipelined.val_acc, sequential.val_acc, "val accuracy");
    assert_eq!(pipelined.history, sequential.history, "evaluation history");
    assert!(pipelined.improved(), "two live parties must still learn");
}

#[test]
fn loopback_tcp_run_matches_the_in_process_run() {
    let (name, clients, n_classes) = mini_setup(0);
    let run = RunConfig::mini(0).with_rounds(12).with_patience(40);

    // The in-process reference: same dataset, same shards, same config.
    let reference = FedRun::new(&clients, n_classes).config(run.clone()).run();
    assert!(reference.improved(), "reference run must actually learn");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    // Every frame must arrive for bit-identity, so the deadline is slack.
    let net = quick_net(Duration::from_secs(20));
    let server = {
        let (run, name) = (run.clone(), name.clone());
        let opts = ServeOpts {
            net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            spawn_client(
                addr.clone(),
                id as u32,
                run.clone(),
                name.clone(),
                clients.len(),
                shard.clone(),
                n_classes,
                net,
            )
        })
        .collect();

    let result = server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for (id, worker) in workers.into_iter().enumerate() {
        let report = worker.join().expect("client thread");
        assert_eq!(report.outcome, ClientOutcome::Finished, "client {id}");
        assert_eq!(report.reconnects, 0, "client {id} must never reconnect");
    }

    // The paper numbers — accuracy at the best round and the whole
    // evaluation curve — are bit-identical across the socket boundary.
    // (Comms accounting legitimately differs: TCP ships Metrics/Control
    // frames the in-process loop replaces with shared memory.)
    assert_eq!(result.test_acc, reference.test_acc, "test accuracy");
    assert_eq!(result.val_acc, reference.val_acc, "val accuracy");
    assert_eq!(result.best_round, reference.best_round, "best round");
    assert_eq!(result.history, reference.history, "evaluation history");
}

#[test]
fn a_departing_client_degrades_to_partial_aggregation() {
    let (name, clients, n_classes) = mini_setup(1);
    let rounds = 8;
    let run = RunConfig::mini(1).with_rounds(rounds).with_patience(40);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    // Deliberately generous server deadline: a departed peer shrinks the
    // awaited cohort, so no phase should ever sit out this timeout — if
    // the live-peer accounting regresses, this test stalls for many
    // multiples of 20 s instead of finishing in seconds.
    let server_net = quick_net(Duration::from_secs(20));
    let client_net = quick_net(Duration::from_secs(20));
    let server = {
        let (run, name) = (run.clone(), name.clone());
        let opts = ServeOpts {
            net: server_net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    // Client 2 is scheduled for only 3 of the 8 rounds; the handshake
    // digest deliberately excludes the round budget, so the server admits
    // it and then sees it leave. The digest-relevant hyperparameters all
    // match.
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            let mut mine = run.clone();
            if id == 2 {
                mine.train.rounds = 3;
            }
            spawn_client(
                addr.clone(),
                id as u32,
                mine,
                name.clone(),
                clients.len(),
                shard.clone(),
                n_classes,
                client_net,
            )
        })
        .collect();

    let result = server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for (id, worker) in workers.into_iter().enumerate() {
        let report = worker.join().expect("client thread");
        assert_eq!(report.outcome, ClientOutcome::Finished, "client {id}");
        assert_eq!(report.reconnects, 0, "client {id}");
    }

    // The server drove every scheduled round: the departure degraded the
    // federation to the two live parties, it did not wedge the run.
    assert_eq!(result.comms.rounds as usize, rounds, "all rounds ran");
    assert_eq!(
        result.history.len(),
        4,
        "eval_every=2 over 8 rounds: evaluations at rounds 0, 2, 4, 6"
    );
    let last = result.history.last().expect("final evaluation");
    assert!(
        last.val_acc > 0.0 && last.val_acc <= 1.0,
        "partial-aggregation accuracy must stay a sane ratio, got {}",
        last.val_acc
    );
    assert!(
        result.improved(),
        "two live parties must still learn something"
    );
}

#[test]
fn a_killed_server_resumes_from_its_checkpoint_and_the_clients_reconnect() {
    let dir = scratch("kill-resume");
    let path = dir.join("net.ckpt.json");
    let (name, clients, n_classes) = mini_setup(2);
    let rounds = 10;
    let run = RunConfig::mini(2).with_rounds(rounds).with_patience(40);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    // The clone keeps the port bound across the "crash", exactly like an
    // OS-level restart script re-binding the same --addr: clients retry
    // the same address throughout.
    let relisten = listener.try_clone().expect("clone listener");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server_net = quick_net(Duration::from_secs(20));
    // Clients notice the missing verdict (the crash signature) after one
    // phase deadline, then reconnect with backoff.
    let client_net = quick_net(Duration::from_secs(2));

    // First server generation: checkpoint at round 4, then "crash" before
    // broadcasting the round-4 verdict.
    let first = {
        let (run, name) = (run.clone(), name.clone());
        let opts = ServeOpts {
            halt_after: Some(4),
            checkpoint: Some((path.clone(), 5)),
            net: server_net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            spawn_client(
                addr.clone(),
                id as u32,
                run.clone(),
                name.clone(),
                clients.len(),
                shard.clone(),
                n_classes,
                client_net,
            )
        })
        .collect();

    let partial = first
        .join()
        .expect("first server thread")
        .expect("halted run returns");
    assert_eq!(partial.comms.rounds, 5, "halted after round 4");
    let ckpt = RunCheckpoint::load(&path).expect("durable checkpoint");
    assert_eq!(ckpt.state.next_round, 5, "snapshot taken at the halt round");

    // Second generation on the same socket, restored from the snapshot.
    // The clients are still alive, spinning in their reconnect loops.
    let opts = ServeOpts {
        checkpoint: Some((path.clone(), 5)),
        resume: true,
        net: server_net,
        ..ServeOpts::new(clients.len())
    };
    let resumed =
        serve_on(relisten, &opts, &run, &name, &mut NullObserver).expect("resumed run completes");

    for (id, worker) in workers.into_iter().enumerate() {
        let report = worker.join().expect("client thread");
        assert_eq!(report.outcome, ClientOutcome::Finished, "client {id}");
        assert!(
            report.reconnects >= 1,
            "client {id} must have survived the crash by reconnecting"
        );
    }
    assert_eq!(
        resumed.comms.rounds as usize, rounds,
        "resumed run finishes the full budget"
    );
    assert_eq!(
        resumed.history.len(),
        5,
        "eval_every=2 over 10 rounds, history carried across the resume"
    );
    let last = resumed.history.last().expect("final evaluation");
    assert!(
        last.val_acc > 0.0 && last.val_acc <= 1.0,
        "resumed accuracy must stay a sane ratio, got {}",
        last.val_acc
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_cohort_config_is_rejected_before_any_socket_traffic() {
    let (name, clients, n_classes) = mini_setup(3);
    let run = RunConfig::mini(3).with_cohort(fedomd_federated::CohortConfig::fraction(f64::NAN, 0));

    // Server side: the listener is bound but must never be accepted on —
    // serve_on returns the typed config error up front.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let opts = ServeOpts::new(clients.len());
    let err = serve_on(listener, &opts, &run, &name, &mut NullObserver)
        .expect_err("NaN sample_frac must not start a run");
    assert!(
        matches!(
            err,
            fedomd_net::NetError::Config(
                fedomd_federated::CohortConfigError::NonFiniteSampleFrac { .. }
            )
        ),
        "got: {err}"
    );

    // Client side: rejected before the first connection attempt — there is
    // no server behind this address, yet the error is Config, not Io.
    let copts = ClientOpts {
        addr: "127.0.0.1:1".into(),
        id: 0,
        net: NetConfig::default(),
    };
    let bad = RunConfig::mini(3).with_cohort(fedomd_federated::CohortConfig {
        sample_frac: 0.5,
        min_cohort: clients.len() + 1,
        seed: 0,
    });
    let err = run_client(
        &copts,
        &bad,
        &name,
        clients.len(),
        &clients[0],
        n_classes,
        &mut NullObserver,
    )
    .expect_err("oversized min_cohort must not reach the handshake");
    assert!(
        matches!(
            err,
            fedomd_net::NetError::Config(
                fedomd_federated::CohortConfigError::MinCohortExceedsParties { .. }
            )
        ),
        "got: {err}"
    );
}
