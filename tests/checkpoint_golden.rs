//! Golden guarantees of the run checkpoint/resume subsystem (DESIGN.md
//! §11): a run killed at round `k` and resumed from its snapshot is
//! **bit-identical** — accuracy history, final parameters, optimizer
//! moments, comms accounting — to the same run left uninterrupted, on
//! both the fault-free in-process channel and the lossy simulated
//! network; and a half-written checkpoint is never loaded.

use fedomd_core::{CheckpointError, FedRun, RunCheckpoint, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{
    setup_federation, ClientData, FederationConfig, GenericOpts, ModelKind, RunResult,
};
use fedomd_telemetry::MemoryObserver;
use fedomd_transport::{FaultConfig, SimNetChannel};
use std::path::PathBuf;

fn mini_setup(seed: u64) -> (Vec<ClientData>, usize) {
    let ds = generate(&spec(DatasetName::CoraMini), seed);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, seed));
    (clients, ds.n_classes)
}

fn cfg(seed: u64, rounds: usize) -> RunConfig {
    RunConfig::mini(seed)
        .with_rounds(rounds)
        .with_patience(rounds)
}

/// A per-test scratch directory (tests run in one process, so the process
/// id alone would collide).
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fedomd-ckpt-golden-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Bit-identity across everything a RunResult reports.
fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(a.algorithm, b.algorithm);
    assert_eq!(a.test_acc, b.test_acc, "test accuracy diverged");
    assert_eq!(a.val_acc, b.val_acc, "val accuracy diverged");
    assert_eq!(a.best_round, b.best_round, "best round diverged");
    assert_eq!(a.history, b.history, "evaluation history diverged");
    assert_eq!(a.comms, b.comms, "comms accounting diverged");
}

fn lossy() -> FaultConfig {
    FaultConfig {
        seed: 7,
        drop_prob: 0.2,
        max_retries: 1,
        ..Default::default()
    }
}

#[test]
fn fedomd_kill_and_resume_is_bit_identical_inproc() {
    let dir = scratch("fedomd-inproc");
    let (clients, n_classes) = mini_setup(0);
    let (rounds, k) = (10, 5);

    // The uninterrupted reference, snapshotting on the same cadence so its
    // final checkpoint file captures the final params and Adam state.
    let full_path = dir.join("full.ckpt.json");
    let uninterrupted = FedRun::new(&clients, n_classes)
        .config(cfg(0, rounds))
        .checkpoint_every(k, &full_path)
        .run();

    // "Kill" the run at round k: cap the round budget there.
    let kill_path = dir.join("killed.ckpt.json");
    let mut mem = MemoryObserver::new();
    FedRun::new(&clients, n_classes)
        .config(cfg(0, k))
        .checkpoint_every(k, &kill_path)
        .observer(&mut mem)
        .run();
    assert_eq!(mem.count("checkpoint_saved"), 1);
    assert_eq!(mem.count("resumed"), 0);

    // Resume with the full round budget.
    let resumed_path = dir.join("resumed.ckpt.json");
    let mut mem = MemoryObserver::new();
    let resumed = FedRun::new(&clients, n_classes)
        .config(cfg(0, rounds))
        .resume_from(&kill_path)
        .expect("load snapshot")
        .checkpoint_every(k, &resumed_path)
        .observer(&mut mem)
        .run();
    assert_eq!(mem.count("resumed"), 1);
    assert_eq!(mem.count("checkpoint_saved"), 1, "only round 2k saves here");

    assert_same_run(&uninterrupted, &resumed);

    // The final snapshots of both legs capture the complete run state —
    // client parameters, Adam moments, driver history, channel counters —
    // and must agree bit-for-bit.
    let a = RunCheckpoint::load(&full_path).expect("full leg snapshot");
    let b = RunCheckpoint::load(&resumed_path).expect("resumed leg snapshot");
    assert_eq!(a, b, "final run state diverged after resume");
    assert_eq!(a.state.next_round, rounds);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fedomd_kill_and_resume_is_bit_identical_on_a_lossy_channel() {
    let dir = scratch("fedomd-lossy");
    let (clients, n_classes) = mini_setup(2);
    let (rounds, k) = (8, 4);

    let full_path = dir.join("full.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    let uninterrupted = FedRun::new(&clients, n_classes)
        .config(cfg(2, rounds))
        .channel(&mut chan)
        .checkpoint_every(k, &full_path)
        .run();
    assert!(
        uninterrupted.comms.dropped_messages > 0,
        "fault config must actually drop frames for this test to bite"
    );

    let kill_path = dir.join("killed.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    FedRun::new(&clients, n_classes)
        .config(cfg(2, k))
        .channel(&mut chan)
        .checkpoint_every(k, &kill_path)
        .run();

    // The resumed leg starts from a *fresh* channel: restoring the
    // checkpointed ChannelState realigns the per-frame fault RNG cursor,
    // so the drop pattern of rounds k.. replays exactly.
    let resumed_path = dir.join("resumed.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    let resumed = FedRun::new(&clients, n_classes)
        .config(cfg(2, rounds))
        .channel(&mut chan)
        .resume_from(&kill_path)
        .expect("load snapshot")
        .checkpoint_every(k, &resumed_path)
        .run();

    assert_same_run(&uninterrupted, &resumed);
    let a = RunCheckpoint::load(&full_path).expect("full leg snapshot");
    let b = RunCheckpoint::load(&resumed_path).expect("resumed leg snapshot");
    assert_eq!(a, b, "final run state diverged after lossy resume");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generic_engine_kill_and_resume_is_bit_identical_on_a_lossy_channel() {
    let dir = scratch("fedgcn-lossy");
    let (clients, n_classes) = mini_setup(3);
    let (rounds, k) = (8, 4);
    let opts = GenericOpts {
        name: "FedGCN",
        model: ModelKind::Gcn,
        aggregate: true,
        prox_mu: 0.0,
    };

    let full_path = dir.join("full.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    let uninterrupted = FedRun::new(&clients, n_classes)
        .config(cfg(3, rounds))
        .generic(opts)
        .channel(&mut chan)
        .checkpoint_every(k, &full_path)
        .run();

    let kill_path = dir.join("killed.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    FedRun::new(&clients, n_classes)
        .config(cfg(3, k))
        .generic(opts)
        .channel(&mut chan)
        .checkpoint_every(k, &kill_path)
        .run();

    let resumed_path = dir.join("resumed.ckpt.json");
    let mut chan = SimNetChannel::new(lossy());
    let resumed = FedRun::new(&clients, n_classes)
        .config(cfg(3, rounds))
        .generic(opts)
        .channel(&mut chan)
        .resume_from(&kill_path)
        .expect("load snapshot")
        .checkpoint_every(k, &resumed_path)
        .run();

    assert_same_run(&uninterrupted, &resumed);
    let a = RunCheckpoint::load(&full_path).expect("full leg snapshot");
    let b = RunCheckpoint::load(&resumed_path).expect("resumed leg snapshot");
    assert_eq!(a, b, "final run state diverged after resume");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resuming_an_early_stopped_run_finishes_without_extra_rounds() {
    let dir = scratch("early-stop");
    let (clients, n_classes) = mini_setup(5);
    // Tiny patience with a generous cap: the run early-stops well before
    // 60 rounds, and the per-round snapshot captures the stopped state.
    let config = RunConfig::mini(5).with_rounds(60).with_patience(2);
    let path = dir.join("run.ckpt.json");
    let stopped = FedRun::new(&clients, n_classes)
        .config(config.clone())
        .checkpoint_every(1, &path)
        .run();
    assert!(
        (stopped.comms.rounds as usize) < 60,
        "run did not early-stop; tighten the schedule"
    );

    let mut mem = MemoryObserver::new();
    let resumed = FedRun::new(&clients, n_classes)
        .config(config)
        .resume_from(&path)
        .expect("load snapshot")
        .observer(&mut mem)
        .run();
    assert_same_run(&stopped, &resumed);
    // The restored driver is already stopped: no further round may run.
    assert_eq!(mem.count("round_started"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_half_written_checkpoint_is_never_loaded() {
    let dir = scratch("atomicity");
    let (clients, n_classes) = mini_setup(1);
    let path = dir.join("run.ckpt.json");
    FedRun::new(&clients, n_classes)
        .config(cfg(1, 2))
        .checkpoint_every(2, &path)
        .run();
    let good = RunCheckpoint::load(&path).expect("valid snapshot");
    // The atomic writer leaves no tmp file behind on success.
    let tmp = dir.join("run.ckpt.json.tmp");
    assert!(!tmp.exists(), "tmp file must be renamed away");

    // Simulate a crash mid-save: a truncated tmp sibling appears. The real
    // checkpoint is untouched and still loads to the same state.
    let text = good.to_json().to_compact();
    std::fs::write(&tmp, &text[..text.len() / 3]).expect("plant tmp");
    assert_eq!(RunCheckpoint::load(&path).expect("still valid"), good);

    // Loading truncated JSON itself fails with a typed parse error, so a
    // torn file can never be half-restored.
    let err = RunCheckpoint::load(&tmp).expect_err("torn file must be rejected");
    assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    let err = FedRun::new(&clients, n_classes)
        .resume_from(&tmp)
        .err()
        .expect("builder rejects torn file");
    assert!(matches!(err, CheckpointError::Parse(_)), "{err}");

    // A missing file is a typed io error, not a panic.
    let err = RunCheckpoint::load(dir.join("absent.json")).expect_err("missing file");
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[should_panic(expected = "different seed")]
fn resuming_under_a_different_seed_is_rejected() {
    let dir = scratch("seed-mismatch");
    let (clients, n_classes) = mini_setup(4);
    let path = dir.join("run.ckpt.json");
    FedRun::new(&clients, n_classes)
        .config(cfg(4, 2))
        .checkpoint_every(2, &path)
        .run();
    let _ = FedRun::new(&clients, n_classes)
        .config(cfg(9, 4))
        .resume_from(&path)
        .expect("file loads fine; the mismatch is caught at run()")
        .run();
}

#[test]
#[should_panic(expected = "different algorithm")]
fn resuming_into_a_different_algorithm_is_rejected() {
    let dir = scratch("algo-mismatch");
    let (clients, n_classes) = mini_setup(6);
    let path = dir.join("run.ckpt.json");
    FedRun::new(&clients, n_classes)
        .config(cfg(6, 2))
        .checkpoint_every(2, &path)
        .run();
    let _ = FedRun::new(&clients, n_classes)
        .config(cfg(6, 4))
        .generic(GenericOpts {
            name: "FedMLP",
            model: ModelKind::Mlp,
            aggregate: true,
            prox_mu: 0.0,
        })
        .resume_from(&path)
        .expect("file loads fine; the mismatch is caught at run()")
        .run();
}
