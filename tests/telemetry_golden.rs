//! Golden guarantees of the telemetry layer (DESIGN.md §10): observers are
//! pure sinks — attaching any observer yields bit-identical results to the
//! zero-cost `NullObserver` — and the JSONL trace is parseable line by
//! line and covers every executed round.

use fedomd_core::{run_fedomd_observed, FedOmdConfig, FedRun, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{
    setup_federation, ClientData, FederationConfig, GenericOpts, ModelKind, RunResult, TrainConfig,
};
use fedomd_jsonio::Json;
use fedomd_telemetry::{JsonlObserver, MemoryObserver, NullObserver, ObservedChannel};
use fedomd_transport::{FaultConfig, InProcChannel, SimNetChannel};

fn mini_setup(seed: u64) -> (Vec<ClientData>, usize) {
    let ds = generate(&spec(DatasetName::CoraMini), seed);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, seed));
    (clients, ds.n_classes)
}

fn short_cfg(seed: u64, rounds: usize) -> TrainConfig {
    TrainConfig {
        rounds,
        patience: rounds,
        ..TrainConfig::mini(seed)
    }
}

/// Everything an observer must not be able to change.
fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(a.algorithm, b.algorithm);
    assert_eq!(a.test_acc, b.test_acc, "test accuracy diverged");
    assert_eq!(a.val_acc, b.val_acc, "val accuracy diverged");
    assert_eq!(a.best_round, b.best_round);
    assert_eq!(a.history, b.history, "evaluation history diverged");
    assert_eq!(a.comms, b.comms, "comms accounting diverged");
}

#[test]
fn null_observer_run_is_bit_identical_to_the_builder() {
    let (clients, n_classes) = mini_setup(0);
    let cfg = short_cfg(0, 6);
    let omd = FedOmdConfig::paper();
    let baseline = FedRun::new(&clients, n_classes)
        .train(cfg.clone())
        .omd(omd)
        .run();
    let nulled = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &omd,
        &mut InProcChannel::new(),
        &mut NullObserver,
    );
    assert_same_run(&baseline, &nulled);
}

#[test]
fn any_observer_is_a_pure_sink() {
    let (clients, n_classes) = mini_setup(1);
    let cfg = short_cfg(1, 5);
    let omd = FedOmdConfig::paper();
    let baseline = FedRun::new(&clients, n_classes)
        .train(cfg.clone())
        .omd(omd)
        .run();

    let mut mem = MemoryObserver::new();
    let observed = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &omd,
        &mut InProcChannel::new(),
        &mut mem,
    );
    assert_same_run(&baseline, &observed);
    assert!(mem.count("local_step_done") > 0);

    let mut jsonl = JsonlObserver::new(Vec::new());
    let traced = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &omd,
        &mut InProcChannel::new(),
        &mut jsonl,
    );
    assert_same_run(&baseline, &traced);
}

#[test]
fn observers_do_not_perturb_a_lossy_channel_run() {
    let (clients, n_classes) = mini_setup(2);
    let cfg = short_cfg(2, 5);
    let omd = FedOmdConfig::paper();
    let faults = FaultConfig {
        seed: 7,
        drop_prob: 0.2,
        max_retries: 1,
        ..Default::default()
    };
    let baseline = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &omd,
        &mut SimNetChannel::new(faults.clone()),
        &mut NullObserver,
    );
    let mut mem = MemoryObserver::new();
    let observed = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &omd,
        &mut SimNetChannel::new(faults),
        &mut mem,
    );
    assert_same_run(&baseline, &observed);
    // The same fault stream replays, so the trace must agree with the
    // transport's own accounting.
    assert_eq!(
        mem.count("frame_dropped") as u64,
        baseline.comms.dropped_messages,
        "FrameDropped events must match the transport drop counter"
    );
}

#[test]
fn fedrun_builder_matches_the_raw_generic_loop() {
    let (clients, n_classes) = mini_setup(3);
    let cfg = short_cfg(3, 4);
    let opts = GenericOpts {
        name: "FedGCN",
        model: ModelKind::Gcn,
        aggregate: true,
        prox_mu: 0.0,
    };
    let raw = fedomd_federated::run_generic_observed(
        &clients,
        n_classes,
        &cfg,
        &opts,
        &mut InProcChannel::new(),
        &mut NullObserver,
    );
    let built = FedRun::new(&clients, n_classes)
        .config(RunConfig::mini(3).with_train(cfg))
        .generic(opts)
        .run();
    assert_same_run(&raw, &built);
}

#[test]
fn jsonl_trace_parses_and_covers_every_round() {
    let (clients, n_classes) = mini_setup(4);
    let rounds = 6;
    let cfg = short_cfg(4, rounds);
    let mut jsonl = JsonlObserver::new(Vec::new());
    let result = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &FedOmdConfig::paper(),
        &mut InProcChannel::new(),
        &mut jsonl,
    );

    let text = String::from_utf8(jsonl.into_inner()).expect("trace is utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());

    let mut kinds = Vec::new();
    let mut rounds_started = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let json = Json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {line}"));
        let kind = json
            .get("event")
            .and_then(|k| k.as_str())
            .unwrap_or_else(|| panic!("line {i} lacks an event tag"))
            .to_string();
        let seq = json.get("seq").and_then(|s| s.as_usize());
        assert_eq!(seq, Some(i), "seq must be dense and monotone");
        if kind == "round_started" {
            rounds_started.push(json.get("round").and_then(|r| r.as_u64()).unwrap());
        }
        kinds.push(kind);
    }

    assert_eq!(kinds.first().map(String::as_str), Some("run_started"));
    assert_eq!(kinds.last().map(String::as_str), Some("run_finished"));
    let executed = result.comms.rounds;
    assert_eq!(
        rounds_started,
        (0..executed).collect::<Vec<_>>(),
        "every executed round must open with round_started"
    );
    let evals = kinds.iter().filter(|k| k.as_str() == "eval_done").count();
    assert_eq!(evals, result.history.len(), "one eval_done per evaluation");
    assert!(kinds.iter().any(|k| k == "stats_round1_done"));
    assert!(kinds.iter().any(|k| k == "stats_round2_done"));
    assert!(kinds.iter().any(|k| k == "aggregation_done"));
    assert!(kinds.iter().any(|k| k == "local_step_done"));
    assert!(kinds.iter().any(|k| k == "phase_done"));
    assert!(kinds.iter().any(|k| k == "frame_sent"));
}

#[test]
fn secure_aggregation_feeds_the_observer_through_an_observed_channel() {
    use fedomd_federated::secure_agg::secure_weighted_sum_frames;
    use fedomd_tensor::Matrix;

    let values: Vec<Matrix> = (0..3)
        .map(|i| Matrix::from_vec(2, 2, vec![i as f32, 1.0, 2.0, 3.0 + i as f32]))
        .collect();
    let weights = [1.0f32, 1.0, 1.0];

    let mut plain = InProcChannel::new();
    let (expected, _) = secure_weighted_sum_frames(&values, &weights, 42, 0, &mut plain);

    let mut inner = InProcChannel::new();
    let mut chan = ObservedChannel::new(&mut inner);
    let (sum, senders) = secure_weighted_sum_frames(&values, &weights, 42, 0, &mut chan);
    let mut mem = MemoryObserver::new();
    chan.flush_into(&mut mem);

    assert_eq!(senders.len(), 3);
    assert_eq!(sum.as_slice(), expected.as_slice(), "masks must cancel");
    // The masked uploads are ordinary WeightUpdate frames to the observer.
    assert_eq!(mem.count("frame_sent"), 3);
    assert_eq!(mem.count("frame_dropped"), 0);
}

#[test]
fn early_stop_is_reported_as_an_event() {
    let (clients, n_classes) = mini_setup(5);
    // Tiny patience with a generous round cap: validation accuracy will
    // fail to improve long before 60 rounds elapse.
    let cfg = TrainConfig {
        rounds: 60,
        patience: 2,
        eval_every: 1,
        ..TrainConfig::mini(5)
    };
    let mut mem = MemoryObserver::new();
    let result = run_fedomd_observed(
        &clients,
        n_classes,
        &cfg,
        &FedOmdConfig::paper(),
        &mut InProcChannel::new(),
        &mut mem,
    );
    if (result.comms.rounds as usize) < cfg.rounds {
        assert_eq!(mem.count("early_stopped"), 1);
    } else {
        assert_eq!(mem.count("early_stopped"), 0);
    }
    assert_eq!(mem.count("run_finished"), 1);
}
