//! Every algorithm the paper compares (seven baselines + FedOMD) runs end
//! to end on the same federation and produces sane results.

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::baselines::{run_baseline, Baseline, ALL_BASELINES};
use fedomd_federated::{setup_federation, ClientData, FederationConfig, RunResult, TrainConfig};

fn run_fedomd(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
) -> RunResult {
    FedRun::new(clients, n_classes)
        .train(cfg.clone())
        .omd(*omd)
        .run()
}

fn quick() -> (Vec<ClientData>, usize, TrainConfig) {
    let ds = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    let cfg = TrainConfig {
        rounds: 12,
        patience: 12,
        eval_every: 2,
        ..TrainConfig::mini(0)
    };
    (clients, ds.n_classes, cfg)
}

#[test]
fn all_eight_algorithms_run_and_report_sane_metrics() {
    let (clients, k, cfg) = quick();
    let mut results = Vec::new();
    for b in ALL_BASELINES {
        results.push(run_baseline(b, &clients, k, &cfg));
    }
    results.push(run_fedomd(&clients, k, &cfg, &FedOmdConfig::paper()));

    assert_eq!(results.len(), 8);
    for r in &results {
        assert!(
            r.test_acc.is_finite(),
            "{}: non-finite accuracy",
            r.algorithm
        );
        assert!(
            (0.0..=1.0).contains(&r.test_acc),
            "{}: accuracy out of range",
            r.algorithm
        );
        assert!(!r.history.is_empty(), "{}: empty history", r.algorithm);
        for h in &r.history {
            assert!(h.train_loss.is_finite(), "{}: non-finite loss", r.algorithm);
        }
    }
    // Names are distinct and match the table labels.
    let names: std::collections::HashSet<_> =
        results.iter().map(|r| r.algorithm.as_str()).collect();
    assert_eq!(names.len(), 8);
    assert!(names.contains("FedOMD"));
    assert!(names.contains("FedSage+"));
}

#[test]
fn traffic_profile_matches_algorithm_class() {
    let (clients, k, cfg) = quick();
    // LocGCN is isolated: zero traffic.
    let loc = run_baseline(Baseline::LocGcn, &clients, k, &cfg);
    assert_eq!(loc.comms.total_bytes(), 0, "LocGCN must not communicate");

    // SCAFFOLD ships weights + control variates: about twice FedMLP.
    let mlp = run_baseline(Baseline::FedMlp, &clients, k, &cfg);
    let sca = run_baseline(Baseline::Scaffold, &clients, k, &cfg);
    let per_round_mlp = mlp.comms.uplink_bytes as f64 / mlp.comms.rounds as f64;
    let per_round_sca = sca.comms.uplink_bytes as f64 / sca.comms.rounds as f64;
    let ratio = per_round_sca / per_round_mlp;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "SCAFFOLD/FedMLP uplink ratio {ratio}"
    );

    // FedOMD ships weights + statistics; statistics must be a small slice.
    let omd = run_fedomd(&clients, k, &cfg, &FedOmdConfig::paper());
    assert!(omd.comms.stats_uplink_bytes > 0);
    assert!(
        omd.comms.stats_fraction() < 0.2,
        "stats fraction {}",
        omd.comms.stats_fraction()
    );
}

#[test]
fn graph_models_beat_the_mlp_family_on_homophilous_data() {
    // The paper's qualitative expectation: structure-aware models dominate
    // the structure-blind MLP family on homophilous graphs. Compared at the
    // best-of-both to keep the assertion robust at mini scale.
    let ds = generate(&spec(DatasetName::PhotoMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    let cfg = TrainConfig {
        rounds: 60,
        patience: 40,
        ..TrainConfig::mini(0)
    };
    let gcn = run_baseline(Baseline::FedGcn, &clients, ds.n_classes, &cfg).test_acc;
    let loc = run_baseline(Baseline::LocGcn, &clients, ds.n_classes, &cfg).test_acc;
    let mlp = run_baseline(Baseline::FedMlp, &clients, ds.n_classes, &cfg).test_acc;
    assert!(
        gcn.max(loc) > mlp - 0.05,
        "graph models ({gcn:.3}/{loc:.3}) collapsed below MLP ({mlp:.3})"
    );
}
