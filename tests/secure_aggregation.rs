//! Secure aggregation composed with real model parameters: masked uploads
//! must aggregate to exactly the plaintext FedAvg result, while each
//! individual upload reveals nothing — the property the paper's
//! "upload their model parameters with encryption" (§1) requires.

use fedomd_federated::helpers::fedavg;
use fedomd_federated::secure_agg::{secure_weighted_sum, MaskingContext};
use fedomd_nn::{Gcn, Model};
use fedomd_tensor::rng::seeded;
use fedomd_tensor::Matrix;

#[test]
fn secure_fedavg_matches_plaintext_fedavg_on_model_params() {
    let m = 4;
    let models: Vec<Gcn> = (0..m)
        .map(|i| Gcn::new(12, 8, 3, &mut seeded(i as u64)))
        .collect();
    let sets: Vec<Vec<Matrix>> = models.iter().map(|mo| mo.params()).collect();

    let plain = fedavg(&sets, &vec![1.0; m]);

    // Securely aggregate parameter-by-parameter.
    for (p_idx, plain_p) in plain.iter().enumerate() {
        let values: Vec<Matrix> = sets.iter().map(|s| s[p_idx].clone()).collect();
        let weights = vec![1.0 / m as f32; m];
        let secure = secure_weighted_sum(&values, &weights, 0xFEED, 3);
        secure.assert_close(plain_p, 1e-4);
    }
}

#[test]
fn masked_weight_upload_hides_the_local_model() {
    let model = Gcn::new(12, 8, 3, &mut seeded(42));
    let w = model.params().remove(0);
    let mut masked = w.clone();
    MaskingContext {
        client: 1,
        n_parties: 5,
        session_seed: 7,
        round: 0,
    }
    .mask(&mut masked);

    // The masked upload must be dominated by mask energy, not signal: the
    // relative perturbation is large.
    let diff = fedomd_tensor::ops::sub(&masked, &w);
    assert!(
        diff.frobenius_norm() > 2.0 * w.frobenius_norm(),
        "mask too weak: |mask| {} vs |w| {}",
        diff.frobenius_norm(),
        w.frobenius_norm()
    );
}

#[test]
fn dropped_client_breaks_cancellation_detectably() {
    // If one client's masked upload goes missing, the sum is garbage —
    // the well-known limitation the full Bonawitz protocol patches with
    // secret-shared mask recovery (out of scope here, but the failure mode
    // should be *loud*, not silent).
    let values: Vec<Matrix> = (0..3)
        .map(|i| {
            let mut rng = seeded(i as u64);
            fedomd_tensor::init::standard_normal(4, 4, &mut rng)
        })
        .collect();
    let n = values.len();
    let masked: Vec<Matrix> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut m = fedomd_tensor::ops::scale(v, 1.0 / n as f32);
            MaskingContext {
                client: i,
                n_parties: n,
                session_seed: 5,
                round: 0,
            }
            .mask(&mut m);
            m
        })
        .collect();

    // Full sum equals plaintext mean.
    let full = fedomd_federated::secure_agg::aggregate_masked(&masked, &vec![1.0; n]);
    let mut mean = Matrix::zeros(4, 4);
    for v in &values {
        fedomd_tensor::ops::axpy(&mut mean, 1.0 / n as f32, v);
    }
    full.assert_close(&mean, 1e-4);

    // Partial sum (client 2 dropped) is far from the partial plaintext mean.
    let partial = fedomd_federated::secure_agg::aggregate_masked(&masked[..2], &[1.0; 2]);
    let mut partial_mean = Matrix::zeros(4, 4);
    for v in &values[..2] {
        fedomd_tensor::ops::axpy(&mut partial_mean, 1.0 / n as f32, v);
    }
    let err = fedomd_tensor::ops::sub(&partial, &partial_mean).frobenius_norm();
    assert!(err > 1.0, "dropout corruption should be loud, got {err}");
}
