//! End-to-end integration: dataset generation → Louvain federation →
//! FedOMD training → evaluation, across crate boundaries.

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, DatasetName, SynthParams};
use fedomd_federated::{
    setup_federation, setup_federation_planted, ClientData, CohortConfig, FederationConfig,
    RunResult, TrainConfig,
};

fn cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        rounds: 60,
        patience: 40,
        ..TrainConfig::mini(seed)
    }
}

fn run_fedomd(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
) -> RunResult {
    FedRun::new(clients, n_classes)
        .train(cfg.clone())
        .omd(*omd)
        .run()
}

#[test]
fn fedomd_full_pipeline_learns() {
    let ds = generate(&spec(DatasetName::CoraMini), 0);
    ds.validate().expect("dataset valid");
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    let r = run_fedomd(&clients, ds.n_classes, &cfg(0), &FedOmdConfig::paper());
    assert!(r.test_acc.is_finite());
    assert!(
        r.test_acc > 1.2 / ds.n_classes as f64,
        "accuracy {} not above chance",
        r.test_acc
    );
    assert!(r.improved(), "validation accuracy never improved over init");
    assert!(!r.history.is_empty());
    assert!(r.comms.rounds > 0);
}

#[test]
fn cmd_constraint_helps_on_average() {
    // The headline of the paper's Table 6: the CMD term improves over the
    // bare federated Ortho-GCN. Averaged over seeds to dampen the small-
    // scale noise; asserted with a margin that tolerates one bad seed.
    let seeds = [0u64, 1, 2];
    let mut with_cmd = 0.0;
    let mut without = 0.0;
    for &seed in &seeds {
        let ds = generate(&spec(DatasetName::CoraMini), seed);
        let clients = setup_federation(&ds, &FederationConfig::mini(5, seed));
        with_cmd += run_fedomd(&clients, ds.n_classes, &cfg(seed), &FedOmdConfig::paper()).test_acc;
        let none = FedOmdConfig {
            use_ortho: false,
            use_cmd: false,
            ..FedOmdConfig::paper()
        };
        without += run_fedomd(&clients, ds.n_classes, &cfg(seed), &none).test_acc;
    }
    assert!(
        with_cmd > without - 0.02 * seeds.len() as f64,
        "CMD made things materially worse: {:.3} vs {:.3}",
        with_cmd / seeds.len() as f64,
        without / seeds.len() as f64
    );
}

#[test]
fn party_count_scales_without_crashing() {
    // Table 5's regime: many parties on the coauthor graph.
    let ds = generate(&spec(DatasetName::CoauthorCsMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(20, 0));
    assert_eq!(clients.len(), 20);
    let mut fast = cfg(0);
    fast.rounds = 10;
    let r = run_fedomd(&clients, ds.n_classes, &fast, &FedOmdConfig::paper());
    assert!(r.test_acc.is_finite());
}

#[test]
fn sampled_cohorts_learn_on_a_planted_federation() {
    // A quick always-on slice of the massive-cohort path: 60 planted
    // parties, 25 % sampled per round, streaming aggregation throughout.
    let ds = generate(&SynthParams::many_party(60), 0);
    let clients = setup_federation_planted(&ds, &FederationConfig::mini(60, 0));
    assert_eq!(clients.len(), 60);
    let cfg = TrainConfig {
        rounds: 8,
        patience: 8,
        eval_every: 4,
        cohort: CohortConfig::fraction(0.25, 11),
        ..TrainConfig::mini(0)
    };
    let r = run_fedomd(&clients, ds.n_classes, &cfg, &FedOmdConfig::paper());
    assert!(r.test_acc.is_finite());
    assert!(r.comms.rounds == 8);
}

#[test]
#[ignore = "2000-client scale smoke: run explicitly (cargo test -- --ignored)"]
fn two_thousand_client_round_completes() {
    // The ISSUE acceptance bar: a 2000-party federation runs a sampled
    // round in-process with O(model) aggregation memory (the streaming
    // accumulator folds each envelope as it arrives).
    let parties = 2000;
    let ds = generate(&SynthParams::many_party(parties), 0);
    let clients = setup_federation_planted(&ds, &FederationConfig::mini(parties, 0));
    assert_eq!(clients.len(), parties);
    let cfg = TrainConfig {
        rounds: 2,
        patience: 2,
        eval_every: 2,
        cohort: CohortConfig::fraction(0.1, 5), // 200 clients/round
        ..TrainConfig::mini(0)
    };
    let r = run_fedomd(&clients, ds.n_classes, &cfg, &FedOmdConfig::paper());
    assert!(r.test_acc.is_finite());
    assert_eq!(r.comms.rounds, 2);
}

#[test]
fn resolution_changes_the_cut() {
    // Fig. 7's lever: resolution controls subgraph fragmentation, which
    // shows up as fewer surviving local edges at higher resolution.
    let ds = generate(&spec(DatasetName::CoraMini), 1);
    let edges_at = |res: f64| -> usize {
        let fed = FederationConfig {
            resolution: res,
            ..FederationConfig::mini(3, 1)
        };
        setup_federation(&ds, &fed)
            .iter()
            .map(|c| c.edges.len())
            .sum()
    };
    assert!(edges_at(20.0) <= edges_at(0.5));
}
