//! Offline stand-in for the `criterion` crate.
//!
//! Provides `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and `black_box`, so
//! the workspace's benches compile and run offline. Measurement is a
//! plain wall-clock loop (short warm-up, then a fixed time budget) and
//! reports mean/min/median per iteration — adequate for relative
//! comparisons, with none of criterion's statistics. On noisy shared
//! boxes the median is the number to compare: a single preempted
//! iteration skews the mean by ±30% but moves the median not at all.
//! Env `CRITERION_BUDGET_MS` adjusts the per-benchmark budget (default
//! 300 ms). When `CRITERION_JSON` names a file, one JSON object per
//! benchmark (`{"label":…,"mean_ns":…,"min_ns":…,"median_ns":…,
//! "iters":…}`) is appended to it, which is what `scripts/bench.sh`
//! aggregates into `BENCH_kernels.json`.

use std::fmt::Display;
use std::hint;
use std::io::Write;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value wrapper.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs timing loops for one benchmark.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the measured closure.
    mean_ns: f64,
    /// Fastest observed iteration.
    min_ns: f64,
    /// Median iteration — robust to scheduler-noise outliers.
    median_ns: f64,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly: 3 warm-up calls, then as many calls as fit
    /// the time budget (at least 9, so the reported median rests on a
    /// real sample even for slow benches).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = budget();
        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        while samples.len() < 9 || (started.elapsed() < budget && samples.len() < 1_000_000) {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        self.mean_ns = started.elapsed().as_nanos() as f64 / samples.len() as f64;
        self.iters = samples.len() as u64;
        samples.sort_unstable_by(f64::total_cmp);
        self.min_ns = samples[0];
        let mid = samples.len() / 2;
        self.median_ns = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            0.5 * (samples[mid - 1] + samples[mid])
        };
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(label: &str, suffix: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean_ns: 0.0,
        min_ns: 0.0,
        median_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let printed = format!("{label}{suffix}");
    println!(
        "{printed:<52} mean {:>12}   median {:>12}   min {:>12}   ({} iters)",
        human(b.mean_ns),
        human(b.median_ns),
        human(b.min_ns),
        b.iters
    );
    record_json(label, &b);
}

/// Appends one JSON line per benchmark to `$CRITERION_JSON`, if set. The
/// label is JSON-escaped via `{:?}` (bench labels are plain ASCII).
fn record_json(label: &str, b: &Bencher) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"median_ns\":{:.1},\"iters\":{}}}\n",
        b.mean_ns, b.min_ns, b.median_ns, b.iters
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion stub: cannot append to {path}: {e}");
    }
}

/// Identifies one parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Declared throughput of one benchmark (printed, not analysed).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, "", &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &self.throughput_suffix(), &mut |b| f(b, input));
        self
    }

    /// Runs one benchmark without input.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &self.throughput_suffix(), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn throughput_suffix(&self) -> String {
        match &self.throughput {
            Some(Throughput::Bytes(n)) => format!("  [{n} B/iter]"),
            Some(Throughput::Elements(n)) => format!("  [{n} elem/iter]"),
            None => String::new(),
        }
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn json_emission_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion_json_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default();
        c.bench_function("json_probe", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        // Other tests may run concurrently while CRITERION_JSON is set, so
        // only assert on this test's own label.
        let mine: Vec<_> = text
            .lines()
            .filter(|l| l.starts_with("{\"label\":\"json_probe\",\"mean_ns\":"))
            .collect();
        assert_eq!(mine.len(), 1);
        assert!(mine[0].contains("\"median_ns\":"));
        assert!(mine[0].contains("\"iters\":"));
    }
}
