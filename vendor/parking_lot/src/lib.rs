//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's semantics of never
//! poisoning).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
