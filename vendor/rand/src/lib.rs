//! Offline stand-in for the `rand` crate.
//!
//! The build registry for this workspace is offline, so the external
//! `rand` crate cannot be fetched; this vendored crate implements the
//! exact API subset the workspace uses (`RngCore`, `SeedableRng`, `Rng`
//! with `gen`/`gen_range`/`gen_bool`, `seq::SliceRandom`) with clean,
//! documented algorithms. It is *not* the upstream implementation:
//! streams differ from crates.io `rand`, but every generator here is
//! deterministic per seed, which is the property the reproduction
//! actually relies on.

/// The core of every generator: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Next uniform 64-bit word (two 32-bit draws, low word first).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (the same scheme
    /// `rand_core` documents: successive finalised outputs fill the seed
    /// four bytes at a time, little-endian).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution: what `rng.gen()` samples from.

    use crate::RngCore;

    /// Uniform over a type's natural "standard" domain (`[0, 1)` for
    /// floats, the full range for integers).
    pub struct Standard;

    /// Types samplable from a distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 mantissa bits -> uniform multiples of 2^-24 in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 mantissa bits -> uniform multiples of 2^-53 in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! int_standard {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    int_standard!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  u64 => next_u64, usize => next_u64,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  i64 => next_u64, isize => next_u64);
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit widening multiply
/// (Lemire's method, with the rejection step for exactness).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width 64-bit range: any word is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty => $unit:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = {
                    use crate::distributions::{Distribution, Standard};
                    Standard.sample(rng)
                };
                let v = self.start + (self.end - self.start) * unit;
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = {
                    use crate::distributions::{Distribution, Standard};
                    Standard.sample(rng)
                };
                let v = lo + (hi - lo) * unit;
                // Rounding may land exactly on `hi`; that is in range here.
                if v > hi { hi } else { v }
            }
        }
    )*};
}
float_range!(f32 => f32, f64 => f64);

/// Convenience methods every `RngCore` gets for free.
pub trait Rng: RngCore {
    /// Samples a value from its `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::{Distribution, Standard};
        Standard.sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        use distributions::{Distribution, Standard};
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Random sequence operations (`shuffle`, `choose`).

    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            // A weak but adequate mixing step for unit tests only.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = Counter(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
