//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s MPMC unbounded/bounded channels with
//! clonable `Sender`/`Receiver` halves and disconnect detection, backed by
//! a `Mutex<VecDeque>` + `Condvar` instead of the lock-free queue. The
//! transport layer's in-process channel sits on this; throughput is far
//! below real crossbeam but semantics (FIFO per channel, disconnect
//! errors) match.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; clonable.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with the channel still empty.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates a "bounded" channel. The capacity is advisory in this
    /// stand-in (sends never block); in-process federated rounds enqueue
    /// a handful of frames, far below any realistic bound.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.0.queue.lock().expect("channel lock").push_back(msg);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).expect("channel lock");
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel lock");
                q = guard;
            }
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }
    }
}
