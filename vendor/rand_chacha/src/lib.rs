//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the actual ChaCha stream cipher (D. J. Bernstein) with 8
//! rounds as a deterministic RNG. The keystream is a faithful ChaCha8
//! (verified against the quarter-round test vector from RFC 7539 §2.1.1);
//! only the trait plumbing comes from the vendored `rand` stand-in, so
//! word order may differ from crates.io `rand_chacha`. Determinism per
//! seed — the property the workspace depends on — is exact.

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, counter mode, 64-byte blocks.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// Block counter (ChaCha words 12–13).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unserved word index in `buf` (16 = empty).
    pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce; a fresh RNG instance per seed never
        // needs a distinct stream id, so it stays zero.
        let initial = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.buf = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_quarter_round_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..64).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn word_stream_survives_clone() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let _ = r.next_u32();
        let mut s = r.clone();
        assert_eq!(r.next_u64(), s.next_u64());
    }
}
