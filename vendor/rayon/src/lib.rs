//! Offline stand-in for the `rayon` crate.
//!
//! The registry is offline, so the real work-stealing runtime cannot be
//! fetched. This shim provides the `par_iter` / `par_iter_mut` /
//! `par_chunks_mut` entry points the workspace uses, returning ordinary
//! sequential iterators. Everything downstream (`zip`, `map`, `collect`,
//! `sum`, `enumerate`, ...) is then the standard `Iterator` machinery, so
//! call sites compile unchanged and produce identical results — they just
//! run on one thread. Swapping the real rayon back in is a one-line
//! `Cargo.toml` change; no call site needs to move.

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<T> {
    /// Sequential stand-in for rayon's borrowing parallel iterator.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `.par_iter_mut()` on slices and anything that derefs to one.
pub trait IntoParallelRefMutIterator<T> {
    /// Sequential stand-in for rayon's mutably-borrowing parallel iterator.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for rayon's parallel mutable chunks.
    ///
    /// # Panics
    /// Panics when `chunk_size` is zero (same contract as `chunks_mut`).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `.par_chunks()` on slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for rayon's parallel chunks.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `.into_par_iter()` on owned iterables (ranges, vectors).
pub trait IntoParallelIterator {
    /// The sequential iterator standing in for the parallel one.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Sequential stand-in for rayon's consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<Idx> IntoParallelIterator for std::ops::Range<Idx>
where
    std::ops::Range<Idx>: Iterator<Item = Idx>,
{
    type Iter = std::ops::Range<Idx>;
    type Item = Idx;

    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Stand-in for `rayon::current_num_threads`: the sequential shim is a
/// one-thread pool. Kernels that tune task granularity to the pool size
/// read this so they skip partitioning work entirely when it cannot pay
/// off — and pick up real fan-out automatically if the genuine rayon is
/// ever swapped back in.
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! The import surface call sites use (`use rayon::prelude::*`).
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_iter_mut_zip() {
        let mut a = vec![1, 2, 3];
        let b = [10, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, y)| *x += *y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn par_chunks_mut_covers_all() {
        let mut v = vec![0u32; 10];
        for (i, chunk) in v.par_chunks_mut(3).enumerate() {
            for x in chunk {
                *x = i as u32;
            }
        }
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
