//! Offline stand-in for the `proptest` crate.
//!
//! Implements the DSL subset this workspace's property tests use:
//!
//! * the `proptest! { #[test] fn name(x in strategy, ...) { ... } }` macro,
//! * `prop_assert!` / `prop_assert_eq!`,
//! * range strategies (`0usize..12`, `-2.0f32..2.0`, ...), tuple
//!   strategies, `proptest::collection::vec`, `Just`,
//! * `Strategy::prop_map` / `Strategy::prop_flat_map`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! generated inputs and the case's seed. Generation is deterministic —
//! seeded per test from the test's name — so a failure reproduces exactly
//! on re-run. Case count defaults to 64, overridable with the
//! `PROPTEST_CASES` environment variable.

use std::fmt;

/// Deterministic generator handed to strategies (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recoverable test-case failure (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy: Sized {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the result (dependent generation).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`] (built from a `Range<usize>`).
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Derives the per-test base seed from its name (FNV-1a).
pub fn seed_of(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Runs `body` for [`case_count`] deterministic cases, panicking on the
/// first failure with the case index (generated inputs are formatted by
/// the `proptest!` expansion into the error message).
pub fn run_cases(test_name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let base = seed_of(test_name);
    for case in 0..case_count() {
        let mut rng = TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = body(&mut rng) {
            panic!("property {test_name} failed at case {case}: {e}");
        }
    }
}

/// The `proptest!` test-harness macro (subset: `pattern in strategy`
/// arguments, bodies that may `return Ok(())` early).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])+
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                __result.map_err(|e| $crate::TestCaseError::fail(
                    format!("{e}\n    inputs: {}", __inputs)
                ))
            });
        }
    )+};
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

pub mod prelude {
    //! The import surface call sites use (`use proptest::prelude::*`).
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n..(n + 1)))
                            .prop_map(|v| v.len())
        ) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn early_return_is_allowed(x in 0u32..10) {
            if x > 100 { return Ok(()); }
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.clone().generate(&mut a), s.clone().generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        crate::run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
