//! Classification accuracy over masked node sets.

/// Index of the maximum element of a row (first on ties).
///
/// # Panics
/// Panics on an empty row or non-finite values.
pub fn argmax_row(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax_row: empty row");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        assert!(v.is_finite(), "argmax_row: non-finite logit {v}");
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Fraction of `mask` rows whose argmax prediction matches `labels`.
/// `logits_rows` yields one logits slice per node (in node order).
///
/// Returns 0 for an empty mask.
pub fn accuracy<'a>(logits: impl Fn(usize) -> &'a [f32], labels: &[usize], mask: &[usize]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    let correct = mask
        .iter()
        .filter(|&&r| argmax_row(logits(r)) == labels[r])
        .count();
    correct as f64 / mask.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax_row(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax_row(&[1.0, 1.0]), 0); // first wins ties
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn argmax_rejects_nan() {
        let _ = argmax_row(&[0.0, f32::NAN]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = [vec![1.0f32, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let labels = [0usize, 1, 1];
        let acc = accuracy(|r| logits[r].as_slice(), &labels, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_respects_mask() {
        let logits = [vec![1.0f32, 0.0], vec![1.0, 0.0]];
        let labels = [0usize, 1];
        assert_eq!(accuracy(|r| logits[r].as_slice(), &labels, &[0]), 1.0);
        assert_eq!(accuracy(|r| logits[r].as_slice(), &labels, &[1]), 0.0);
    }

    #[test]
    fn empty_mask_is_zero() {
        let logits = [vec![1.0f32]];
        assert_eq!(accuracy(|r| logits[r].as_slice(), &[0], &[]), 0.0);
    }
}
