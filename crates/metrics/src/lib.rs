//! Metrics, statistics, timing, and result rendering for the experiment
//! harness. Every bench binary reports "accuracy ± std over seeds" the way
//! the paper's tables do, and serialises machine-readable records for
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod f1;
pub mod record;
pub mod stats;
pub mod table;
pub mod timer;

pub use accuracy::{accuracy, argmax_row};
pub use f1::{macro_f1, F1Report};
pub use record::{CellRecord, ExperimentRecord};
pub use stats::{mean_std, Summary};
pub use table::Table;
pub use timer::{Stopwatch, Timer};
