//! Seed statistics: the "accuracy ± std" cells of the paper's tables.

/// Mean and sample standard deviation of a run set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub n: usize,
}

impl Summary {
    /// Formats as the paper does: `54.35 (±5.86)` given values in percent.
    pub fn paper_cell(&self) -> String {
        format!("{:.2} (±{:.2})", self.mean, self.std)
    }
}

/// Computes mean and *sample* std (`n − 1` denominator; std 0 when `n < 2`).
///
/// # Panics
/// Panics on an empty slice.
pub fn mean_std(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "mean_std: empty input");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    Summary { mean, std, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_value_has_zero_std() {
        let s = mean_std(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn paper_cell_format() {
        let s = Summary {
            mean: 54.349,
            std: 5.856,
            n: 5,
        };
        assert_eq!(s.paper_cell(), "54.35 (±5.86)");
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_rejected() {
        let _ = mean_std(&[]);
    }
}
