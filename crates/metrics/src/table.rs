//! Plain-text table rendering for the bench binaries (markdown pipe style,
//! so EXPERIMENTS.md can embed the output verbatim).

/// A simple column-aligned markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "Table::row: expected {} cells, got {}",
            self.header.len(),
            cells.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a markdown pipe table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = width[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["Model", "M=3"]);
        t.row(vec!["FedOMD".into(), "54.35 (±5.86)".into()]);
        t.row(vec!["FedGCN".into(), "47.12".into()]);
        let s = t.render();
        assert!(s.contains("| Model  | M=3"));
        assert!(s.lines().count() == 4);
        assert!(s.lines().nth(1).expect("separator").starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["only"]);
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
