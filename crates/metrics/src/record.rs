//! Machine-readable experiment records: each bench binary serialises one
//! of these per regenerated table/figure so EXPERIMENTS.md numbers can be
//! traced to a JSON artifact.

use serde::{Deserialize, Serialize};

/// One cell of a results table (a model × setting accuracy).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CellRecord {
    /// Row label, e.g. model name.
    pub row: String,
    /// Column label, e.g. `"cora/M=3"`.
    pub col: String,
    /// Mean value (accuracy in percent, time in ms, ...).
    pub mean: f64,
    /// Standard deviation across seeds.
    pub std: f64,
}

/// A full regenerated experiment (one paper table or figure).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. `"table4"`, `"fig5"`.
    pub experiment: String,
    /// `"mini"` or `"paper"`.
    pub scale: String,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// All cells.
    pub cells: Vec<CellRecord>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(experiment: &str, scale: &str, seeds: &[u64]) -> Self {
        Self {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            seeds: seeds.to_vec(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, row: &str, col: &str, mean: f64, std: f64) {
        self.cells.push(CellRecord { row: row.into(), col: col.into(), mean, std });
    }

    /// Looks up a cell mean by row/col labels.
    pub fn mean_of(&self, row: &str, col: &str) -> Option<f64> {
        self.cells.iter().find(|c| c.row == row && c.col == col).map(|c| c.mean)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ExperimentRecord serialises")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut r = ExperimentRecord::new("table4", "mini", &[0, 1, 2]);
        r.push("FedOMD", "cora/M=3", 54.35, 5.86);
        let back = ExperimentRecord::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn mean_lookup() {
        let mut r = ExperimentRecord::new("table4", "mini", &[0]);
        r.push("FedOMD", "cora/M=3", 54.35, 5.86);
        r.push("FedGCN", "cora/M=3", 47.12, 7.07);
        assert_eq!(r.mean_of("FedOMD", "cora/M=3"), Some(54.35));
        assert_eq!(r.mean_of("FedOMD", "cora/M=5"), None);
    }
}
