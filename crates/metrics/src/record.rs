//! Machine-readable experiment records: each bench binary serialises one
//! of these per regenerated table/figure so EXPERIMENTS.md numbers can be
//! traced to a JSON artifact.

use fedomd_jsonio::{obj, Json};

/// One cell of a results table (a model × setting accuracy).
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Row label, e.g. model name.
    pub row: String,
    /// Column label, e.g. `"cora/M=3"`.
    pub col: String,
    /// Mean value (accuracy in percent, time in ms, ...).
    pub mean: f64,
    /// Standard deviation across seeds.
    pub std: f64,
}

/// A full regenerated experiment (one paper table or figure).
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. `"table4"`, `"fig5"`.
    pub experiment: String,
    /// `"mini"` or `"paper"`.
    pub scale: String,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// All cells.
    pub cells: Vec<CellRecord>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(experiment: &str, scale: &str, seeds: &[u64]) -> Self {
        Self {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            seeds: seeds.to_vec(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, row: &str, col: &str, mean: f64, std: f64) {
        self.cells.push(CellRecord {
            row: row.into(),
            col: col.into(),
            mean,
            std,
        });
    }

    /// Looks up a cell mean by row/col labels.
    pub fn mean_of(&self, row: &str, col: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.row == row && c.col == col)
            .map(|c| c.mean)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj([
                    ("row", Json::from(c.row.as_str())),
                    ("col", Json::from(c.col.as_str())),
                    ("mean", Json::from(c.mean)),
                    ("std", Json::from(c.std)),
                ])
            })
            .collect();
        obj([
            ("experiment", Json::from(self.experiment.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            (
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::from(s)).collect()),
            ),
            ("cells", Json::Arr(cells)),
        ])
        .to_pretty()
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let doc = Json::parse(s)?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| format!("experiment record: missing field `{key}`"))
        };
        let experiment = field("experiment")?
            .as_str()
            .ok_or("experiment record: `experiment` must be a string")?
            .to_string();
        let scale = field("scale")?
            .as_str()
            .ok_or("experiment record: `scale` must be a string")?
            .to_string();
        let seeds = field("seeds")?
            .as_array()
            .ok_or("experiment record: `seeds` must be an array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or("experiment record: seeds must be non-negative integers")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut cells = Vec::new();
        for cell in field("cells")?
            .as_array()
            .ok_or("experiment record: `cells` must be an array")?
        {
            let get_str = |key: &str| {
                cell.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("experiment record: cell missing string `{key}`"))
            };
            let get_num = |key: &str| {
                cell.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("experiment record: cell missing number `{key}`"))
            };
            cells.push(CellRecord {
                row: get_str("row")?,
                col: get_str("col")?,
                mean: get_num("mean")?,
                std: get_num("std")?,
            });
        }
        Ok(Self {
            experiment,
            scale,
            seeds,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut r = ExperimentRecord::new("table4", "mini", &[0, 1, 2]);
        r.push("FedOMD", "cora/M=3", 54.35, 5.86);
        let back = ExperimentRecord::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn mean_lookup() {
        let mut r = ExperimentRecord::new("table4", "mini", &[0]);
        r.push("FedOMD", "cora/M=3", 54.35, 5.86);
        r.push("FedGCN", "cora/M=3", 47.12, 7.07);
        assert_eq!(r.mean_of("FedOMD", "cora/M=3"), Some(54.35));
        assert_eq!(r.mean_of("FedOMD", "cora/M=5"), None);
    }
}
