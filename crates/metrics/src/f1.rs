//! Macro-F1 (extension metric): under the heavily skewed per-party label
//! distributions of the Louvain cut, accuracy rewards majority-class
//! prediction; macro-F1 exposes that failure mode.

/// Per-class precision/recall/F1 and the macro average.
#[derive(Clone, Debug, PartialEq)]
pub struct F1Report {
    /// Per-class F1 (0 when the class never appears in labels or
    /// predictions).
    pub per_class: Vec<f64>,
    /// Unweighted mean over classes that appear in the ground truth.
    pub macro_f1: f64,
}

/// Computes macro-F1 over `(prediction, label)` pairs restricted to `mask`.
///
/// # Panics
/// Panics when a prediction or label is `>= n_classes`.
pub fn macro_f1(
    predictions: &[usize],
    labels: &[usize],
    mask: &[usize],
    n_classes: usize,
) -> F1Report {
    assert_eq!(predictions.len(), labels.len(), "macro_f1: length mismatch");
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fneg = vec![0usize; n_classes];
    for &i in mask {
        let (p, y) = (predictions[i], labels[i]);
        assert!(
            p < n_classes && y < n_classes,
            "macro_f1: class out of range"
        );
        if p == y {
            tp[y] += 1;
        } else {
            fp[p] += 1;
            fneg[y] += 1;
        }
    }
    let per_class: Vec<f64> = (0..n_classes)
        .map(|c| {
            let denom = 2 * tp[c] + fp[c] + fneg[c];
            if denom == 0 {
                0.0
            } else {
                2.0 * tp[c] as f64 / denom as f64
            }
        })
        .collect();
    let present: Vec<usize> = (0..n_classes)
        .filter(|&c| mask.iter().any(|&i| labels[i] == c))
        .collect();
    let macro_f1 = if present.is_empty() {
        0.0
    } else {
        present.iter().map(|&c| per_class[c]).sum::<f64>() / present.len() as f64
    };
    F1Report {
        per_class,
        macro_f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_unit_f1() {
        let labels = vec![0, 1, 2, 0, 1];
        let mask: Vec<usize> = (0..5).collect();
        let r = macro_f1(&labels, &labels, &mask, 3);
        assert!((r.macro_f1 - 1.0).abs() < 1e-12);
        assert!(r.per_class.iter().all(|&f| (f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn majority_class_trick_scores_low_macro_f1() {
        // 8 of class 0, 2 of class 1; predicting all-0 gives 80% accuracy
        // but macro-F1 well below it.
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let preds = vec![0; 10];
        let mask: Vec<usize> = (0..10).collect();
        let r = macro_f1(&preds, &labels, &mask, 2);
        // class 0: F1 = 2*8/(16+2) = 0.888..; class 1: 0. macro = 0.444..
        assert!((r.macro_f1 - 0.4444).abs() < 1e-3, "macro {}", r.macro_f1);
    }

    #[test]
    fn known_confusion_values() {
        // labels: [0,0,1,1], preds: [0,1,1,0].
        let labels = vec![0, 0, 1, 1];
        let preds = vec![0, 1, 1, 0];
        let r = macro_f1(&preds, &labels, &[0, 1, 2, 3], 2);
        // Both classes: tp=1, fp=1, fn=1 -> F1 = 2/(2+1+1) = 0.5.
        assert!((r.per_class[0] - 0.5).abs() < 1e-12);
        assert!((r.per_class[1] - 0.5).abs() < 1e-12);
        assert!((r.macro_f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_do_not_dilute_macro() {
        let labels = vec![0, 0];
        let preds = vec![0, 0];
        let r = macro_f1(&preds, &labels, &[0, 1], 5);
        assert!((r.macro_f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mask_yields_zero() {
        let r = macro_f1(&[0], &[0], &[], 2);
        assert_eq!(r.macro_f1, 0.0);
    }
}
