//! Wall-clock timing with named phases — the instrument behind the
//! measured Table 3 (client / server / inference time per model).

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
///
/// This is the only sanctioned way for round-loop code to read the clock:
/// `fedomd-metrics` is one of the three crates the workspace linter
/// (`fedomd-lint`, wall-clock rule) allows `Instant::now` in, so training
/// and protocol crates measure phases with a `Stopwatch` and charge the
/// result to a [`Timer`] bucket instead of touching `std::time` directly.
/// Use it for split measurements where [`Timer::time`]'s closure shape
/// does not fit (e.g. a phase whose start and end straddle borrows).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Accumulates wall-clock time into named buckets.
#[derive(Clone, Debug, Default)]
pub struct Timer {
    buckets: Vec<(String, Duration)>,
}

impl Timer {
    /// An empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, charging the elapsed time to `bucket`, and returns `f`'s
    /// result.
    pub fn time<T>(&mut self, bucket: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(bucket, start.elapsed());
        out
    }

    /// Adds a pre-measured duration to `bucket`.
    pub fn add(&mut self, bucket: &str, d: Duration) {
        if let Some(entry) = self.buckets.iter_mut().find(|(name, _)| name == bucket) {
            entry.1 += d;
        } else {
            self.buckets.push((bucket.to_string(), d));
        }
    }

    /// Total accumulated time in `bucket` (zero if absent).
    pub fn get(&self, bucket: &str) -> Duration {
        self.buckets
            .iter()
            .find(|(name, _)| name == bucket)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// All buckets in first-touch order.
    pub fn buckets(&self) -> &[(String, Duration)] {
        &self.buckets
    }

    /// Merges another timer's buckets into this one.
    pub fn merge(&mut self, other: &Timer) {
        for (name, d) in &other.buckets {
            self.add(name, *d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_into_named_buckets() {
        let mut t = Timer::new();
        t.add("client", Duration::from_millis(5));
        t.add("client", Duration::from_millis(7));
        t.add("server", Duration::from_millis(1));
        assert_eq!(t.get("client"), Duration::from_millis(12));
        assert_eq!(t.get("server"), Duration::from_millis(1));
        assert_eq!(t.get("absent"), Duration::ZERO);
    }

    #[test]
    fn time_returns_closure_result() {
        let mut t = Timer::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("work") > Duration::ZERO || t.get("work") == Duration::ZERO);
        assert_eq!(t.buckets().len(), 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = Timer::new();
        a.add("x", Duration::from_millis(1));
        let mut b = Timer::new();
        b.add("x", Duration::from_millis(2));
        b.add("y", Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(3));
        assert_eq!(a.get("y"), Duration::from_millis(3));
    }
}
