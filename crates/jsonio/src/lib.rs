//! Zero-dependency JSON for the FedOMD workspace.
//!
//! Checkpoints ([`fedomd-nn`]), experiment records ([`fedomd-metrics`]),
//! and matrix payloads ([`fedomd-tensor`]) all (de)serialise through this
//! small document model instead of an external serde stack, so the
//! workspace builds with no network access. The printer emits numbers via
//! Rust's shortest-roundtrip float formatting, so every `f64` (and hence
//! every `f32` widened to `f64`) survives a print → parse cycle exactly.

#![forbid(unsafe_code)]

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also produced when printing a non-finite number).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; integers are kept exactly up to 2^53.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs. Order is
    /// preserved from the source / insertion; duplicate keys resolve to
    /// the first match on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, requiring it to span the whole
    /// input (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The number as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact serialisation (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builds an object from `(key, value)` pairs in order.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Writes `text` to `path` atomically: the bytes go to a `.tmp` sibling,
/// are synced to disk, and only then renamed over `path`. A crash at any
/// point leaves either the previous file or the complete new one — never a
/// truncated hybrid. Returns the number of bytes written.
pub fn write_atomic(path: impl AsRef<std::path::Path>, text: &str) -> std::io::Result<u64> {
    use std::io::Write;

    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);

    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    // The data must be durable before the rename publishes it; otherwise a
    // power cut could leave a fully-renamed but empty file.
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(text.len() as u64)
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without the ".0" suffix.
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{:?}` is the shortest representation that reparses to this f64.
        out.push_str(&format!("{v:?}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character {:?}", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        // U+1F600 as a surrogate pair.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn printing_roundtrips_structures() {
        let v = obj([
            ("name", Json::from("fedomd")),
            ("vals", Json::from(vec![1.5f64, -0.25, 3.0])),
            ("flag", Json::from(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::from(3.0f64).to_compact(), "3");
        assert_eq!(Json::from(-7.0f64).to_compact(), "-7");
        assert_eq!(Json::from(0.5f64).to_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn string_escaping_roundtrips() {
        let s = "quote\" back\\slash \n tab\t ctrl\u{01} unicode☃";
        let printed = Json::from(s).to_compact();
        assert_eq!(Json::parse(&printed).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn duplicate_keys_resolve_to_first() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("fedomd-jsonio-atomic-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("doc.json");
        let tmp = dir.join("doc.json.tmp");

        let n = write_atomic(&path, "{\"v\":1}").expect("first write");
        assert_eq!(n, 7);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        assert!(!tmp.exists(), "tmp file must be renamed away");

        // Overwrite: the new content fully replaces the old.
        write_atomic(&path, "{\"v\":2}").expect("second write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!tmp.exists());

        let _ = std::fs::remove_file(&path);
    }

    proptest! {
        #[test]
        fn f32_values_roundtrip_exactly(bits in 0u32..u32::MAX) {
            let x = f32::from_bits(bits);
            if x.is_finite() {
                let printed = Json::from(x).to_compact();
                let back = Json::parse(&printed).unwrap().as_f64().unwrap() as f32;
                prop_assert_eq!(back.to_bits(), x.to_bits());
            }
        }

        #[test]
        fn f64_values_roundtrip_exactly(mantissa in 0u64..=u64::MAX) {
            let x = f64::from_bits(mantissa);
            if x.is_finite() {
                let printed = Json::from(x).to_compact();
                let back = Json::parse(&printed).unwrap().as_f64().unwrap();
                prop_assert_eq!(back.to_bits(), x.to_bits());
            }
        }

        #[test]
        fn arbitrary_strings_roundtrip(s in proptest::collection::vec(0u8..=255, 0..64)) {
            let text = String::from_utf8_lossy(&s).into_owned();
            let printed = Json::from(text.clone()).to_compact();
            prop_assert_eq!(Json::parse(&printed).unwrap(), Json::Str(text));
        }
    }
}
