//! The core dense matrix type: row-major, `f32`, heap-backed.

use fedomd_jsonio::{obj, Json};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
///
/// The invariant `data.len() == rows * cols` always holds; element `(r, c)`
/// lives at `data[r * cols + c]`. Most numerical kernels live in the sibling
/// modules ([`crate::gemm`], [`crate::ops`], [`crate::stats`]) and operate on
/// this type; the methods here are structural (construction, shape, views).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column {} out of bounds for {} cols",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// A new matrix containing the rows selected by `indices` (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Frobenius norm, `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum absolute element, 0 for the empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|v| *v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements; 0 for the empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// True when all elements are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Asserts element-wise closeness against `other` within `tol`.
    ///
    /// Intended for tests; panics with a located message on mismatch.
    pub fn assert_close(&self, other: &Matrix, tol: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in assert_close"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                let a = self[(r, c)];
                let b = other[(r, c)];
                assert!(
                    (a - b).abs() <= tol + tol * a.abs().max(b.abs()),
                    "mismatch at ({r},{c}): {a} vs {b} (tol {tol})"
                );
            }
        }
    }
}

impl Matrix {
    /// The JSON wire format: `{"rows":R,"cols":C,"data":[...]}`.
    ///
    /// Elements are widened to `f64` for printing, which is exact, so a
    /// [`Matrix::from_json`] roundtrip reproduces every `f32` bit-for-bit
    /// (sign of zero excepted).
    pub fn to_json(&self) -> Json {
        obj([
            ("rows", Json::from(self.rows)),
            ("cols", Json::from(self.cols)),
            (
                "data",
                Json::Arr(self.data.iter().map(|&v| Json::from(v)).collect()),
            ),
        ])
    }

    /// Parses the wire format, validating the length invariant.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let rows = v
            .get("rows")
            .and_then(Json::as_usize)
            .ok_or("matrix json: missing or invalid field `rows`")?;
        let cols = v
            .get("cols")
            .and_then(Json::as_usize)
            .ok_or("matrix json: missing or invalid field `cols`")?;
        let items = v
            .get("data")
            .and_then(Json::as_array)
            .ok_or("matrix json: missing or invalid field `data`")?;
        let mut data = Vec::with_capacity(items.len());
        for item in items {
            let x = item
                .as_f64()
                .ok_or("matrix json: non-numeric element in `data`")?;
            data.push(x as f32);
        }
        if data.len() != rows * cols {
            return Err(format!(
                "matrix payload length {} does not match shape {rows}x{cols}",
                data.len(),
            ));
        }
        Ok(Self { rows, cols, data })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_roundtrips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_and_reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.sum(), 20.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn col_extraction() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = Matrix::from_vec(2, 3, vec![1.5, -0.25, 3.0, 1.0e-7, -2.5e6, 0.1]);
        let back = Matrix::from_json(&m.to_json()).expect("parses");
        assert_eq!(back.shape(), m.shape());
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn json_length_invariant_is_validated() {
        let doc = fedomd_jsonio::Json::parse(r#"{"rows":2,"cols":2,"data":[1,2,3]}"#).unwrap();
        let err = Matrix::from_json(&doc).expect_err("must fail");
        assert!(err.contains("does not match shape"), "{err}");
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }
}
