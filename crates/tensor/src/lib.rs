//! Dense `f32` linear algebra for the FedOMD reproduction.
//!
//! This crate stands in for the dense-tensor half of the deep-learning
//! framework the paper runs on (PyTorch): a row-major [`Matrix`] type with
//! rayon-parallel GEMM kernels, element-wise operations, reductions,
//! activation functions, weight initialisers, and the column-statistics
//! routines (means and higher-order central moments) that the CMD loss of
//! the paper is built from.
//!
//! Everything is deterministic given a seed: all randomness flows through
//! [`rng::seeded`], a ChaCha8 generator whose stream is stable across
//! platforms and releases.

pub mod activation;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use activation::{relu, relu_backward, sigmoid, softmax_rows};
pub use init::{he_normal, xavier_uniform};
pub use matrix::Matrix;
pub use rng::seeded;
pub use stats::{central_moments, column_means};
