//! Column statistics: means and higher-order central moments.
//!
//! These are the primitives of Algorithm 1 in the paper — each client
//! computes per-column (i.e. per-hidden-unit) means of its layer activations
//! (line 4) and central moments of orders 2..=5 about a given centre
//! (lines 5-7 and 12-13). Both the "centre = local mean" and
//! "centre = global mean" variants reduce to [`central_moments`] with a
//! different `center` argument.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Per-column means, `E(Z)` in the paper (a length-`cols` vector).
pub fn column_means(z: &Matrix) -> Vec<f32> {
    let (rows, cols) = z.shape();
    if rows == 0 {
        return vec![0.0; cols];
    }
    let mut acc = vec![0.0f64; cols];
    for row in z.as_slice().chunks(cols) {
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v as f64;
        }
    }
    acc.into_iter().map(|a| (a / rows as f64) as f32).collect()
}

/// Per-column `j`-th central moment about `center`:
/// `(1/n) Σ_m (Z(m) − center)^j`, one value per column.
///
/// # Panics
/// Panics when `center.len() != z.cols()` or `order == 0`.
pub fn central_moments(z: &Matrix, center: &[f32], order: u32) -> Vec<f32> {
    assert_eq!(
        center.len(),
        z.cols(),
        "central_moments: center length mismatch"
    );
    assert!(order >= 1, "central_moments: order must be >= 1");
    let (rows, cols) = z.shape();
    if rows == 0 {
        return vec![0.0; cols];
    }
    let mut acc = vec![0.0f64; cols];
    for row in z.as_slice().chunks(cols) {
        for ((a, &v), &c) in acc.iter_mut().zip(row).zip(center) {
            *a += powi_f64((v - c) as f64, order);
        }
    }
    acc.into_iter().map(|a| (a / rows as f64) as f32).collect()
}

/// Column-block width of the fused moment sweep. 64 f32 columns = 4
/// cache lines of data per row touch, and the per-order accumulator
/// arrays (`[f64; COL_BLOCK]` each) stay comfortably in L1.
const COL_BLOCK: usize = 64;

/// One fused sweep over `rows × width` elements of a column block,
/// accumulating all `ORDERS` central-moment powers at once: per element
/// `d = (v − c) as f64`, then the left-associated power chain
/// `d², d³, …` feeds one f64 accumulator per order. Rows are visited in
/// ascending order, so for any single order the per-element operation
/// sequence is exactly the per-order reference kernel's
/// (`central_moments`' `powi_f64` chain) — bit-identical by
/// construction, pinned by `prop_fused_sweep_is_bit_identical_*`.
///
/// `ORDERS` is a compile-time constant so the inner loop fully unrolls;
/// `out` receives `ORDERS` runs of `width` f64 sums (not yet divided by
/// `rows`).
#[inline(always)]
fn moment_sweep_body<const ORDERS: usize>(
    data: &[f32],
    rows: usize,
    cols: usize,
    center: &[f32],
    c0: usize,
    width: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; COL_BLOCK]; ORDERS];
    for r in 0..rows {
        let row = &data[r * cols + c0..r * cols + c0 + width];
        let ctr = &center[c0..c0 + width];
        for i in 0..width {
            let d = (row[i] - ctr[i]) as f64;
            let mut p = d * d;
            acc[0][i] += p;
            for acc_ord in acc.iter_mut().skip(1) {
                p *= d;
                acc_ord[i] += p;
            }
        }
    }
    for (ord, acc_row) in acc.iter().enumerate() {
        out[ord * width..(ord + 1) * width].copy_from_slice(&acc_row[..width]);
    }
}

/// Baseline-ISA instantiation of the fused sweep.
fn moment_sweep_generic<const ORDERS: usize>(
    data: &[f32],
    rows: usize,
    cols: usize,
    center: &[f32],
    c0: usize,
    width: usize,
    out: &mut [f64],
) {
    moment_sweep_body::<ORDERS>(data, rows, cols, center, c0, width, out);
}

/// AVX2 instantiation: identical Rust code, wider auto-vectorisation.
/// The chain is plain lane-wise IEEE mul/add without contraction, so it
/// stays bit-identical to [`moment_sweep_generic`].
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`
// — executing AVX2 instructions on a CPU without them is UB. The only
// call site (`run_moment_sweep`) is gated on `is_x86_feature_detected!`
// evaluated once in `central_moments_upto`. All memory access goes
// through the shared safe `moment_sweep_body`: `data`/`center`/`out` are
// ordinary slices with every index bounds-checked — no raw pointers, no
// alignment assumptions beyond `&[f32]`/`&mut [f64]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn moment_sweep_avx2<const ORDERS: usize>(
    data: &[f32],
    rows: usize,
    cols: usize,
    center: &[f32],
    c0: usize,
    width: usize,
    out: &mut [f64],
) {
    moment_sweep_body::<ORDERS>(data, rows, cols, center, c0, width, out);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_moment_sweep<const ORDERS: usize>(
    avx2: bool,
    data: &[f32],
    rows: usize,
    cols: usize,
    center: &[f32],
    c0: usize,
    width: usize,
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support in `central_moments_upto`.
        unsafe { moment_sweep_avx2::<ORDERS>(data, rows, cols, center, c0, width, out) };
        return;
    }
    let _ = avx2;
    moment_sweep_generic::<ORDERS>(data, rows, cols, center, c0, width, out);
}

/// Dispatches the runtime order count to a monomorphised sweep (1..=5
/// covers the paper's `max_order ∈ 2..=6`); higher counts fall back to a
/// dynamically-sized accumulator with the identical per-element chain.
#[allow(clippy::too_many_arguments)]
fn moment_sweep_dyn(
    avx2: bool,
    orders: usize,
    data: &[f32],
    rows: usize,
    cols: usize,
    center: &[f32],
    c0: usize,
    width: usize,
    out: &mut [f64],
) {
    match orders {
        1 => run_moment_sweep::<1>(avx2, data, rows, cols, center, c0, width, out),
        2 => run_moment_sweep::<2>(avx2, data, rows, cols, center, c0, width, out),
        3 => run_moment_sweep::<3>(avx2, data, rows, cols, center, c0, width, out),
        4 => run_moment_sweep::<4>(avx2, data, rows, cols, center, c0, width, out),
        5 => run_moment_sweep::<5>(avx2, data, rows, cols, center, c0, width, out),
        _ => {
            // Unbounded-order fallback: same chain, heap accumulators.
            let mut acc = vec![vec![0.0f64; width]; orders];
            for r in 0..rows {
                let row = &data[r * cols + c0..r * cols + c0 + width];
                for (i, (&v, &c)) in row.iter().zip(&center[c0..c0 + width]).enumerate() {
                    let d = (v - c) as f64;
                    let mut p = d * d;
                    acc[0][i] += p;
                    for slot in acc.iter_mut().skip(1) {
                        p *= d;
                        slot[i] += p;
                    }
                }
            }
            for (ord, vals) in acc.into_iter().enumerate() {
                out[ord * width..(ord + 1) * width].copy_from_slice(&vals);
            }
        }
    }
}

/// All central moments of orders `2..=max_order` about `center`, computed in
/// a single fused pass over the data. Returns `moments[j-2]` = order-`j`
/// vector (empty when `max_order == 1`).
///
/// This is the hot path of the FedOMD round (orders 2..=5 for every hidden
/// layer), so the pass is parallelised over column blocks and dispatched to
/// an AVX2 instantiation when the CPU supports it (bit-identical — see
/// [`moment_sweep_avx2`]).
pub fn central_moments_upto(z: &Matrix, center: &[f32], max_order: u32) -> Vec<Vec<f32>> {
    assert!(
        max_order >= 1,
        "central_moments_upto: max_order must be >= 1"
    );
    assert_eq!(
        center.len(),
        z.cols(),
        "central_moments_upto: center length mismatch"
    );
    let (rows, cols) = z.shape();
    let orders = (max_order - 1) as usize;
    if orders == 0 {
        return Vec::new();
    }
    if rows == 0 {
        return vec![vec![0.0; cols]; orders];
    }
    let data = z.as_slice();
    let n_blocks = cols.div_ceil(COL_BLOCK);
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;

    let per_block: Vec<Vec<f64>> = (0..n_blocks)
        .into_par_iter()
        .map(|blk| {
            let c0 = blk * COL_BLOCK;
            let width = (c0 + COL_BLOCK).min(cols) - c0;
            let mut sums = vec![0.0f64; orders * width];
            moment_sweep_dyn(avx2, orders, data, rows, cols, center, c0, width, &mut sums);
            sums
        })
        .collect();

    let mut out = vec![vec![0.0f32; cols]; orders];
    for (blk, sums) in per_block.into_iter().enumerate() {
        let c0 = blk * COL_BLOCK;
        let width = (c0 + COL_BLOCK).min(cols) - c0;
        for (ord, vals) in sums.chunks(width).enumerate() {
            for (i, &v) in vals.iter().enumerate() {
                out[ord][c0 + i] = (v / rows as f64) as f32;
            }
        }
    }
    out
}

/// Per-column variance (the order-2 central moment about the column mean).
pub fn column_variances(z: &Matrix) -> Vec<f32> {
    let means = column_means(z);
    central_moments(z, &means, 2)
}

/// Euclidean norm of the difference between two equal-length vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

#[inline]
fn powi_f64(base: f64, exp: u32) -> f64 {
    let mut out = 1.0;
    for _ in 0..exp {
        out *= base;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn means_of_constant_matrix() {
        let z = Matrix::full(5, 3, 2.5);
        assert_eq!(column_means(&z), vec![2.5, 2.5, 2.5]);
    }

    #[test]
    fn means_match_hand_computation() {
        let z = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]);
        assert_eq!(column_means(&z), vec![2.0, 15.0]);
    }

    #[test]
    fn first_central_moment_about_mean_is_zero() {
        let z = Matrix::from_vec(4, 2, vec![1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 4.0, 8.0]);
        let means = column_means(&z);
        let m1 = central_moments(&z, &means, 1);
        assert!(m1.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn variance_of_known_data() {
        // Column [1,2,3,4]: mean 2.5, population variance 1.25.
        let z = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let var = column_variances(&z);
        assert!((var[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn odd_moments_of_symmetric_data_vanish() {
        let z = Matrix::from_vec(4, 1, vec![-2.0, -1.0, 1.0, 2.0]);
        let m3 = central_moments(&z, &[0.0], 3);
        let m5 = central_moments(&z, &[0.0], 5);
        assert!(m3[0].abs() < 1e-6);
        assert!(m5[0].abs() < 1e-6);
    }

    #[test]
    fn upto_matches_individual_orders() {
        let z = Matrix::from_fn(37, 130, |r, c| ((r * 7 + c * 13) % 11) as f32 / 11.0 - 0.5);
        let means = column_means(&z);
        let all = central_moments_upto(&z, &means, 5);
        for (idx, order) in (2u32..=5).enumerate() {
            let single = central_moments(&z, &means, order);
            for (a, b) in all[idx].iter().zip(&single) {
                assert!((a - b).abs() < 1e-5, "order {order}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_matrix_yields_zeros() {
        let z = Matrix::zeros(0, 3);
        assert_eq!(column_means(&z), vec![0.0; 3]);
        assert_eq!(central_moments(&z, &[0.0; 3], 2), vec![0.0; 3]);
    }

    #[test]
    fn upto_of_empty_matrix_yields_zero_vectors_per_order() {
        let z = Matrix::zeros(0, 3);
        let all = central_moments_upto(&z, &[0.0; 3], 5);
        assert_eq!(all, vec![vec![0.0; 3]; 4]);
    }

    #[test]
    fn l2_distance_basic() {
        assert_eq!(l2_distance(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_weighted_mean_decomposition(
            rows_a in 1usize..20, rows_b in 1usize..20, cols in 1usize..8, seed in 0u64..500
        ) {
            // Pooled mean == weighted combination of group means — the exact
            // identity Eq. 10 of the paper relies on.
            let gen = |rows: usize, salt: u64| {
                Matrix::from_fn(rows, cols, |r, c| {
                    let h = (r as u64 + 31 * c as u64 + 1009 * (seed + salt)) % 997;
                    h as f32 / 997.0 - 0.5
                })
            };
            let a = gen(rows_a, 0);
            let b = gen(rows_b, 1);
            let mut pooled = Vec::with_capacity((rows_a + rows_b) * cols);
            pooled.extend_from_slice(a.as_slice());
            pooled.extend_from_slice(b.as_slice());
            let pooled = Matrix::from_vec(rows_a + rows_b, cols, pooled);

            let ma = column_means(&a);
            let mb = column_means(&b);
            let mp = column_means(&pooled);
            let (na, nb) = (rows_a as f32, rows_b as f32);
            for c in 0..cols {
                let weighted = (na * ma[c] + nb * mb[c]) / (na + nb);
                prop_assert!((weighted - mp[c]).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_upto_is_bit_identical_to_individual_orders(
            rows in 0usize..40, cols in 1usize..200, max_order in 1u32..=6, seed in 0u64..500
        ) {
            // The fused single-pass kernel (monomorphised + AVX2-dispatched)
            // and the order-by-order reference share the same accumulation
            // structure (rows in ascending order, f64 accumulators,
            // left-associated power chains), so they must agree
            // *bit-for-bit* — including `max_order == 1` (no moments),
            // `rows == 0`, and a ragged final column block (cols up to 200
            // crosses the 64-column blocking with a partial tail).
            // `max_order ∈ 1..=6` exercises every monomorphised ORDERS arm.
            let z = Matrix::from_fn(rows, cols, |r, c| {
                let h = (r as u64 * 131 + c as u64 * 31 + seed * 1009) % 1997;
                h as f32 / 1997.0 - 0.5
            });
            let center: Vec<f32> = (0..cols)
                .map(|c| ((c as u64 * 53 + seed) % 101) as f32 / 101.0 - 0.5)
                .collect();
            let all = central_moments_upto(&z, &center, max_order);
            prop_assert_eq!(all.len(), (max_order - 1) as usize);
            for (idx, order) in (2..=max_order).enumerate() {
                let single = central_moments(&z, &center, order);
                prop_assert_eq!(&all[idx], &single, "order {}", order);
            }
        }

        #[test]
        fn prop_upto_dynamic_fallback_is_bit_identical(
            rows in 0usize..30, cols in 1usize..80, max_order in 7u32..10, seed in 0u64..200
        ) {
            // Order counts past the monomorphised 1..=5 arms take the
            // heap-accumulator fallback; pin it to the reference too.
            let z = Matrix::from_fn(rows, cols, |r, c| {
                let h = (r as u64 * 67 + c as u64 * 29 + seed * 811) % 1499;
                h as f32 / 1499.0 - 0.5
            });
            let center: Vec<f32> = (0..cols)
                .map(|c| ((c as u64 * 41 + seed) % 89) as f32 / 89.0 - 0.5)
                .collect();
            let all = central_moments_upto(&z, &center, max_order);
            for (idx, order) in (2..=max_order).enumerate() {
                let single = central_moments(&z, &center, order);
                prop_assert_eq!(&all[idx], &single, "order {}", order);
            }
        }

        #[test]
        fn prop_moments_shift_with_center(rows in 2usize..30, seed in 0u64..500) {
            // Second moment about c equals variance + (mean - c)^2.
            let z = Matrix::from_fn(rows, 1, |r, _| ((r as u64 * 37 + seed) % 23) as f32 / 23.0);
            let mean = column_means(&z)[0];
            let var = central_moments(&z, &[mean], 2)[0];
            let c = 0.123f32;
            let m2 = central_moments(&z, &[c], 2)[0];
            prop_assert!((m2 - (var + (mean - c) * (mean - c))).abs() < 1e-5);
        }
    }
}
