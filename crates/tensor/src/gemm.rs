//! Parallel dense matrix multiplication kernels.
//!
//! Three product shapes cover everything the forward and backward passes
//! need without ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_tn`]   — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`]   — `C = A · Bᵀ` (input gradients)
//!
//! All kernels parallelise over row blocks of the output with rayon and use
//! an `i-k-j` loop order so the innermost loop is a contiguous
//! multiply-accumulate the compiler can vectorise.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Row-block size for parallel splitting. Small enough to load-balance,
/// large enough that per-task overhead is negligible.
const BLOCK: usize = 32;

/// `C = A · B` where `A` is `m x k` and `B` is `k x n`.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions disagree ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // The `aik == 0` fast path silently turns `0·NaN` / `0·∞` into `0`.
    // IEEE semantics only permit the skip when B is free of non-finite
    // values; one O(kn) scan keeps the fast path for the (overwhelmingly
    // common) finite case.
    let b_finite = b_data.iter().all(|v| v.is_finite());

    c.as_mut_slice()
        .par_chunks_mut(BLOCK * n.max(1))
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let row0 = blk * BLOCK;
            let rows_here = c_chunk.len() / n.max(1);
            for i in 0..rows_here {
                let a_row = &a_data[(row0 + i) * k..(row0 + i + 1) * k];
                let c_row = &mut c_chunk[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 && b_finite {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
    c
}

/// `C = Aᵀ · B` where `A` is `m x k` and `B` is `m x n`; the result is `k x n`.
///
/// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`).
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: row counts disagree ({}x{} vs {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // Same IEEE gate as `matmul`: skipping `av == 0` would hide NaN/∞ in B.
    let b_finite = b_data.iter().all(|v| v.is_finite());

    // Each task owns a block of output rows (i.e. a block of A's columns).
    let mut c = Matrix::zeros(k, n);
    c.as_mut_slice()
        .par_chunks_mut(BLOCK * n.max(1))
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let col0 = blk * BLOCK;
            let cols_here = c_chunk.len() / n.max(1);
            for row in 0..m {
                let a_row = &a_data[row * k..(row + 1) * k];
                let b_row = &b_data[row * n..(row + 1) * n];
                for j in 0..cols_here {
                    let av = a_row[col0 + j];
                    if av == 0.0 && b_finite {
                        continue;
                    }
                    let c_row = &mut c_chunk[j * n..(j + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        });
    c
}

/// `C = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`; the result is `m x n`.
///
/// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`). The inner loop is a dot
/// product over contiguous rows of both operands.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: column counts disagree ({}x{} vs {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let mut c = Matrix::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(BLOCK * n.max(1))
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let row0 = blk * BLOCK;
            let rows_here = c_chunk.len() / n.max(1);
            for i in 0..rows_here {
                let a_row = &a_data[(row0 + i) * k..(row0 + i + 1) * k];
                let c_row = &mut c_chunk[i * n..(i + 1) * n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        });
    c
}

/// Reference scalar implementation used by tests and property checks.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a[(i, kk)] as f64 * b[(kk, j)] as f64;
            }
            c[(i, j)] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 2000) as f32 - 1000.0) / 500.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = mat(17, 23, 1);
        let b = mat(23, 9, 2);
        matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = mat(8, 8, 3);
        matmul(&a, &Matrix::identity(8)).assert_close(&a, 1e-6);
        matmul(&Matrix::identity(8), &a).assert_close(&a, 1e-6);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_mul() {
        let a = mat(19, 7, 4);
        let b = mat(19, 11, 5);
        matmul_tn(&a, &b).assert_close(&matmul_naive(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn matmul_nt_equals_mul_with_transpose() {
        let a = mat(13, 21, 6);
        let b = mat(10, 21, 7);
        matmul_nt(&a, &b).assert_close(&matmul_naive(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn large_block_boundary_shapes() {
        // Cross the BLOCK=32 boundary on every dimension.
        let a = mat(65, 33, 8);
        let b = mat(33, 34, 9);
        matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_times_nonfinite_is_nan_not_zero() {
        // Regression: the `aik == 0` fast path used to skip the product
        // entirely, reporting 0 where IEEE arithmetic says 0·NaN = NaN.
        let zero = Matrix::from_fn(1, 1, |_, _| 0.0);
        let nan = Matrix::from_fn(1, 1, |_, _| f32::NAN);
        let inf = Matrix::from_fn(1, 1, |_, _| f32::INFINITY);
        assert!(matmul(&zero, &nan)[(0, 0)].is_nan());
        assert!(matmul(&zero, &inf)[(0, 0)].is_nan());
        assert!(matmul_tn(&zero, &nan)[(0, 0)].is_nan());
        assert!(matmul_tn(&zero, &inf)[(0, 0)].is_nan());
        assert!(matmul_nt(&zero, &nan)[(0, 0)].is_nan());
    }

    #[test]
    fn finite_b_keeps_the_zero_skip_exact() {
        // With a finite B the skip must stay active (and exact): a fully
        // zero A row yields an exactly zero C row, never -0.0 noise.
        let mut a = mat(4, 6, 11);
        for j in 0..6 {
            a[(2, j)] = 0.0;
        }
        let b = mat(6, 5, 12);
        let c = matmul(&a, &b);
        for j in 0..5 {
            assert_eq!(c[(2, j)], 0.0);
        }
    }

    /// Elementwise comparison that treats non-finite values by class:
    /// NaN matches NaN, ±∞ matches the same signed ∞, finite values match
    /// approximately. Both kernels and the naive reference accumulate over
    /// `kk` in ascending order, so the non-finite class of every output
    /// element is deterministic.
    fn assert_same_class(c: &Matrix, r: &Matrix, tol: f32) {
        assert_eq!(c.shape(), r.shape());
        for (i, (&cv, &rv)) in c.as_slice().iter().zip(r.as_slice()).enumerate() {
            if rv.is_nan() {
                assert!(cv.is_nan(), "element {i}: expected NaN, got {cv}");
            } else if rv.is_infinite() {
                assert_eq!(cv, rv, "element {i}: expected {rv}, got {cv}");
            } else {
                assert!((cv - rv).abs() <= tol, "element {i}: {cv} vs {rv}");
            }
        }
    }

    /// Plants NaN / +∞ / -∞ at seed-derived positions.
    fn inject_nonfinite(m: &mut Matrix, seed: u64, count: usize) {
        let (rows, cols) = m.shape();
        if rows * cols == 0 {
            return;
        }
        let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        for _ in 0..count {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x as usize) % (rows * cols);
            m.as_mut_slice()[idx] = match x % 3 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => f32::NEG_INFINITY,
            };
        }
    }

    proptest! {
        #[test]
        fn prop_kernels_match_naive_on_nonfinite_inputs(
            m in 1usize..12, k in 1usize..12, n in 1usize..12,
            seed in 0u64..500, inj_a in 0usize..4, inj_b in 0usize..4,
        ) {
            let mut a = mat(m, k, seed);
            let mut b = mat(k, n, seed.wrapping_add(1));
            inject_nonfinite(&mut a, seed.wrapping_add(2), inj_a);
            inject_nonfinite(&mut b, seed.wrapping_add(3), inj_b);
            assert_same_class(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-2);

            // Aᵀ·B via matmul_tn on (m x k, m x n) operands.
            let mut a_tn = mat(m, k, seed.wrapping_add(4));
            let mut b_tn = mat(m, n, seed.wrapping_add(5));
            inject_nonfinite(&mut a_tn, seed.wrapping_add(6), inj_a);
            inject_nonfinite(&mut b_tn, seed.wrapping_add(7), inj_b);
            assert_same_class(
                &matmul_tn(&a_tn, &b_tn),
                &matmul_naive(&a_tn.transpose(), &b_tn),
                1e-2,
            );

            // A·Bᵀ via matmul_nt on (m x k, n x k) operands.
            let mut b_nt = mat(n, k, seed.wrapping_add(8));
            inject_nonfinite(&mut b_nt, seed.wrapping_add(9), inj_b);
            assert_same_class(
                &matmul_nt(&a, &b_nt),
                &matmul_naive(&a, &b_nt.transpose()),
                1e-2,
            );
        }

        #[test]
        fn prop_matmul_matches_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(1));
            matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-3);
        }

        #[test]
        fn prop_tn_nt_consistency(m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(m, n, seed.wrapping_add(2));
            let tn = matmul_tn(&a, &b);
            // Aᵀ B = Aᵀ (Bᵀ)ᵀ, computed the nt way on explicit transposes.
            let nt = matmul_nt(&a.transpose(), &b.transpose());
            prop_assert_eq!(tn.shape(), (k, n));
            tn.assert_close(&nt, 1e-3);
        }

        #[test]
        fn prop_distributivity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..500) {
            // A(B + C) == AB + AC
            let a = mat(m, k, seed);
            let b = mat(k, n, seed + 10);
            let c = mat(k, n, seed + 20);
            let mut bc = b.clone();
            for (x, y) in bc.as_mut_slice().iter_mut().zip(c.as_slice()) { *x += *y; }
            let lhs = matmul(&a, &bc);
            let ab = matmul(&a, &b);
            let ac = matmul(&a, &c);
            let mut rhs = ab.clone();
            for (x, y) in rhs.as_mut_slice().iter_mut().zip(ac.as_slice()) { *x += *y; }
            lhs.assert_close(&rhs, 1e-2);
        }
    }
}
