//! Cache-blocked, panel-packed dense matrix multiplication kernels.
//!
//! Three product shapes cover everything the forward and backward passes
//! need without ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_tn`]   — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`]   — `C = A · Bᵀ` (input gradients)
//!
//! # Kernel architecture
//!
//! All three shapes funnel into one BLIS-style blocked driver
//! ([`gemm_packed`]): the output is split into `MC`-row blocks
//! (parallelised with rayon), the summation dimension into `KC`-deep
//! panels, and the columns into `NC`-wide panels. Each task packs the
//! operands into thread-local scratch buffers — `A` micro-panels
//! interleaved `MR` rows at a time, `B` micro-panels `NR` columns at a
//! time — so the register-tiled microkernel reads both operands
//! contiguously regardless of the logical transpose. The packing buffers
//! live in `thread_local` storage and are reused across calls: steady
//! state does no allocation.
//!
//! The `MR × NR` microkernel keeps the whole output tile in registers
//! across a full `KC` sweep, eliminating the per-`k` store/reload of the
//! previous i-k-j kernels. When the CPU supports AVX2 a
//! runtime-dispatched copy of the *same* Rust code is compiled with
//! `#[target_feature(enable = "avx2")]`, doubling SIMD width over the
//! baseline x86-64 codegen.
//!
//! # Bit-for-bit determinism
//!
//! Checkpoint/golden tests pin training output at the bit level, so these
//! kernels must reproduce the previous implementation exactly:
//!
//! * Every output element is accumulated **k-sequentially in ascending
//!   order** — blocking over `KC` only partitions the sum, each partial
//!   continues on the stored running value, and edge tiles load the
//!   existing output into the register tile before accumulating.
//! * No `f32::mul_add`: rustc never contracts `a * b + c` into an FMA, and
//!   auto-vectorisation is lane-wise IEEE, so scalar, SSE2 and AVX2 paths
//!   all round identically.
//! * The old kernels skipped `a == 0` terms when `B` was entirely finite
//!   (guarded by an `O(kn)` scan). The packed kernels drop both the
//!   skip and the scan: with finite `B` each skipped term is `±0.0`, and a
//!   running sum that starts at `+0.0` can never become `-0.0` (IEEE
//!   round-to-nearest returns `+0.0` for `x + (-x)` and `+0.0 + -0.0`), so
//!   adding the term is bitwise invisible. With non-finite `B` the old
//!   kernels never skipped. Both cases therefore produce identical bits,
//!   NaN propagation included — and the pre-scan disappears from the
//!   dense hot path entirely.
//!
//! # Zero-heavy left operands
//!
//! The skip-invisibility argument cuts both ways: because skipping a
//! `0 · finite` term never changes a single output bit, the dispatcher is
//! free to pick whichever kernel is *faster* for the operands at hand.
//! Raw bag-of-words feature matrices (a few percent non-zero) are the one
//! case where the old skip was a genuine algorithmic win — the naive
//! kernel degrades to `O(nnz · n)` while the packed kernel grinds through
//! every zero at full SIMD width. [`matmul`] and [`matmul_tn`] therefore
//! count `A`'s zeros (a parallel `O(mk)` scan, amortised by `n ≥ 1`
//! columns of downstream work) and route products whose left operand is
//! less than [`SPARSE_MAX_DENSITY`] non-zero to the pre-PR4 row-parallel
//! skip kernels, retained verbatim as [`gemm_nn_skip_par`] /
//! [`gemm_tn_skip_par`]. `matmul_nt` keeps no such path: its dot-product
//! inner loop never had a skip to lose.
//!
//! The pre-PR4 kernels are additionally retained serially as
//! [`matmul_ref`] / [`matmul_tn_ref`] / [`matmul_nt_ref`]: they serve as
//! the oracle for the bit-identity proptests below and as the dispatch
//! target for tiny products where packing overhead dominates.

use crate::matrix::Matrix;
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel register-tile height (output rows held in registers).
const MR: usize = 4;
/// Microkernel register-tile width (output columns held in registers).
/// `MR × NR` accumulators fill 8 YMM registers under AVX2.
const NR: usize = 16;
/// Output rows per parallel task / packed `A` block (multiple of `MR`).
const MC: usize = 128;
/// Summation depth per packed panel; `KC × MR` and `KC × NR` micro-panels
/// stay L1-resident.
const KC: usize = 256;
/// Output columns per packed `B` panel (multiple of `NR`).
const NC: usize = 512;
/// Products with `m·k·n` at or below this run on the serial reference
/// kernels: packing setup would cost more than it saves.
const SMALL_FLOPS: usize = 32 * 32 * 32;
/// Non-zero fraction of the left operand below which `nn`/`tn` products
/// dispatch to the zero-skip kernels instead of the packed one. The packed
/// kernel is ~3× faster per MAC, so the skip (which eliminates MACs
/// outright) wins once fewer than roughly a third of the terms survive;
/// ¼ keeps a safety margin for the skip kernel's poorer vectorisation.
const SPARSE_MAX_DENSITY: f64 = 0.25;
/// Row-block size of the zero-skip kernels' parallel splitting (the
/// pre-PR4 kernels' blocking, kept verbatim).
const BLOCK: usize = 32;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// A strided read-only view of an operand, so one packing routine serves
/// plain, transposed-left and transposed-right products.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

/// Packs `mc` rows × `kc` cols of `a` (from `(i0, p0)`) into MR-interleaved
/// micro-panels: element `(ir·MR + r, kk)` lands at `ir·kc·MR + kk·MR + r`.
/// Rows past `mc` are zero-padded so the microkernel never branches.
///
/// The two loop orders below read the source contiguously for row-major
/// (`cs == 1`) and transposed (`rs == 1`) views respectively; they fill
/// identical bytes, only the memory access order differs.
fn pack_a(a: View<'_>, i0: usize, mc: usize, p0: usize, kc: usize, buf: &mut Vec<f32>) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    if a.cs == 1 {
        for ir in 0..panels {
            let rows = MR.min(mc - ir * MR);
            let base = ir * kc * MR;
            for r in 0..rows {
                let src = &a.data[(i0 + ir * MR + r) * a.rs + p0..];
                for kk in 0..kc {
                    buf[base + kk * MR + r] = src[kk];
                }
            }
        }
    } else {
        // Transposed source: each logical column (p0 + kk) is a contiguous
        // run of the underlying row-major data, so sweep it once and
        // scatter into the (L2-resident) panel buffer.
        for kk in 0..kc {
            let src = &a.data[(p0 + kk) * a.cs + i0..];
            for ir in 0..panels {
                let rows = MR.min(mc - ir * MR);
                let base = ir * kc * MR + kk * MR;
                for r in 0..rows {
                    buf[base + r] = src[ir * MR + r];
                }
            }
        }
    }
}

/// Packs `kc` rows × `nc` cols of `b` (from `(p0, j0)`) into NR-interleaved
/// micro-panels: element `(kk, jr·NR + j)` lands at `jr·kc·NR + kk·NR + j`.
/// Columns past `nc` are zero-padded. Loop orders mirror [`pack_a`].
fn pack_b(b: View<'_>, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
    let panels = nc.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    if b.cs == 1 {
        for jr in 0..panels {
            let cols = NR.min(nc - jr * NR);
            let base = jr * kc * NR;
            for kk in 0..kc {
                let src = &b.data[(p0 + kk) * b.rs + j0 + jr * NR..];
                for j in 0..cols {
                    buf[base + kk * NR + j] = src[j];
                }
            }
        }
    } else {
        // Transposed source: logical column (j0 + …) is contiguous.
        for jr in 0..panels {
            let cols = NR.min(nc - jr * NR);
            let base = jr * kc * NR;
            for j in 0..cols {
                let src = &b.data[(j0 + jr * NR + j) * b.cs + p0..];
                for kk in 0..kc {
                    buf[base + kk * NR + j] = src[kk];
                }
            }
        }
    }
}

/// The register-tiled inner kernel: loads the `MR × NR` output tile,
/// accumulates `kc` rank-1 updates in ascending `k` order, stores it back.
/// Plain `mul` + `add` only — see the module docs on determinism.
#[inline(always)]
fn microkernel_body(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        acc_row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for kk in 0..kc {
        let av = &a[kk * MR..kk * MR + MR];
        let bv = &b[kk * NR..kk * NR + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (j, accv) in acc_row.iter_mut().enumerate() {
                *accv += ar * bv[j];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(acc_row);
    }
}

/// Baseline-ISA instantiation of the microkernel.
fn microkernel_generic(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body(kc, a, b, c, ldc);
}

/// AVX2 instantiation: identical Rust code, wider auto-vectorisation.
/// Lane-wise IEEE arithmetic without contraction keeps it bit-identical
/// to [`microkernel_generic`].
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`
// — executing AVX2 instructions on a CPU without them is UB. The only
// call site (`run_microkernel`) is gated on `is_x86_feature_detected!`
// evaluated once in `gemm_packed`. All memory access goes through the
// shared safe `microkernel_body`: slices `a`/`b` are packed panels of
// exactly `kc·MR` / `kc·NR` elements and every index is bounds-checked,
// so there is no pointer arithmetic and no alignment requirement beyond
// what `&[f32]` already guarantees.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body(kc, a, b, c, ldc);
}

#[inline(always)]
fn run_microkernel(avx2: bool, kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support in `gemm_packed`.
        unsafe { microkernel_avx2(kc, a, b, c, ldc) };
        return;
    }
    let _ = avx2;
    microkernel_generic(kc, a, b, c, ldc);
}

/// Direct-A microkernel: reads `MRE` rows of a row-major `A` straight from
/// the source (`a[r·lda..]` contiguous in `k`) instead of a packed panel.
/// Used when the `B` panel is a single micro-panel wide, where a packed
/// `A` panel would be written and read exactly once — pure overhead.
/// The accumulation sequence per output element is identical to
/// [`microkernel_body`].
#[inline(always)]
fn microkernel_direct_body<const MRE: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MRE];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        acc_row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for kk in 0..kc {
        let bv = &b[kk * NR..kk * NR + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = a[r * lda + kk];
            for (j, accv) in acc_row.iter_mut().enumerate() {
                *accv += ar * bv[j];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(acc_row);
    }
}

/// AVX2 instantiation of the direct-A microkernel (see
/// [`microkernel_avx2`] for the bit-identity argument).
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`;
// the only call site (`run_microkernel_direct`) is gated on
// `is_x86_feature_detected!` from `gemm_packed`. The body is the safe
// `microkernel_direct_body`: `a[r·lda + kk]` stays in bounds because the
// caller slices `a` to start at the tile's first row with `lda` the
// source row stride and `r < MRE ≤ MR` rows remaining, and every access
// is bounds-checked — no raw pointers, no alignment assumptions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_direct_avx2<const MRE: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    microkernel_direct_body::<MRE>(kc, a, lda, b, c, ldc);
}

#[inline(always)]
fn run_microkernel_direct<const MRE: usize>(
    avx2: bool,
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support in `gemm_packed`.
        unsafe { microkernel_direct_avx2::<MRE>(kc, a, lda, b, c, ldc) };
        return;
    }
    let _ = avx2;
    microkernel_direct_body::<MRE>(kc, a, lda, b, c, ldc);
}

/// Direct-A tile runner: dispatches `mr_eff` to a monomorphised
/// microkernel (the match arms must cover `1..=MR`) and stages through a
/// scratch tile when the column edge is ragged.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn run_tile_direct(
    avx2: bool,
    kc: usize,
    a: &[f32],
    lda: usize,
    mr_eff: usize,
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    nr_eff: usize,
) {
    let dispatch = |c: &mut [f32], ldc: usize| match mr_eff {
        4 => run_microkernel_direct::<4>(avx2, kc, a, lda, b_panel, c, ldc),
        3 => run_microkernel_direct::<3>(avx2, kc, a, lda, b_panel, c, ldc),
        2 => run_microkernel_direct::<2>(avx2, kc, a, lda, b_panel, c, ldc),
        1 => run_microkernel_direct::<1>(avx2, kc, a, lda, b_panel, c, ldc),
        // LINT: allow(panic) mr_eff = min(MR - i, MR) with MR = 4: the
        // dispatch above is exhaustive for every reachable value.
        _ => unreachable!("mr_eff bounded by MR"),
    };
    if nr_eff == NR {
        dispatch(c, ldc);
    } else {
        let mut tile = [0.0f32; MR * NR];
        for r in 0..mr_eff {
            for j in 0..nr_eff {
                tile[r * NR + j] = c[r * ldc + j];
            }
        }
        dispatch(&mut tile, NR);
        for r in 0..mr_eff {
            for j in 0..nr_eff {
                c[r * ldc + j] = tile[r * NR + j];
            }
        }
    }
}

/// Runs one `mr_eff × nr_eff` output tile. Full tiles accumulate straight
/// into `c`; edge tiles stage through an on-stack scratch tile that is
/// *loaded from* `c` first, so partial sums keep accumulating in place and
/// the addition sequence per element is unchanged.
#[inline(always)]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn run_tile(
    avx2: bool,
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    if mr_eff == MR && nr_eff == NR {
        run_microkernel(avx2, kc, a_panel, b_panel, c, ldc);
    } else {
        let mut tile = [0.0f32; MR * NR];
        for r in 0..mr_eff {
            for j in 0..nr_eff {
                tile[r * NR + j] = c[r * ldc + j];
            }
        }
        run_microkernel(avx2, kc, a_panel, b_panel, &mut tile, NR);
        for r in 0..mr_eff {
            for j in 0..nr_eff {
                c[r * ldc + j] = tile[r * NR + j];
            }
        }
    }
}

/// Blocked, packed driver: `c += a · b` on an `m × n` output with
/// summation depth `kdim`, where `c` starts zeroed (or holds a partial
/// result with the same accumulation history as the reference kernels).
fn gemm_packed(m: usize, n: usize, kdim: usize, a: View<'_>, b: View<'_>, c: &mut [f32]) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;

    // With at most one B micro-panel per KC block, a packed A panel would
    // be written and read exactly once; read A in place instead (only
    // possible when its rows are contiguous).
    let direct_a = a.cs == 1 && n <= NR;

    c.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let i0 = blk * MC;
            let mc = c_chunk.len() / n;
            PACK_A.with(|pa_cell| {
                PACK_B.with(|pb_cell| {
                    let pa = &mut *pa_cell.borrow_mut();
                    let pb = &mut *pb_cell.borrow_mut();
                    for p0 in (0..kdim).step_by(KC) {
                        let kc = KC.min(kdim - p0);
                        if !direct_a {
                            pack_a(a, i0, mc, p0, kc, pa);
                        }
                        for j0 in (0..n).step_by(NC) {
                            let nc = NC.min(n - j0);
                            pack_b(b, p0, kc, j0, nc, pb);
                            for jr in 0..nc.div_ceil(NR) {
                                let nr_eff = NR.min(nc - jr * NR);
                                let b_panel = &pb[jr * kc * NR..(jr + 1) * kc * NR];
                                for ir in 0..mc.div_ceil(MR) {
                                    let mr_eff = MR.min(mc - ir * MR);
                                    let c_off = ir * MR * n + j0 + jr * NR;
                                    if direct_a {
                                        let a_sub = &a.data[(i0 + ir * MR) * a.rs + p0..];
                                        run_tile_direct(
                                            avx2,
                                            kc,
                                            a_sub,
                                            a.rs,
                                            mr_eff,
                                            b_panel,
                                            &mut c_chunk[c_off..],
                                            n,
                                            nr_eff,
                                        );
                                    } else {
                                        let a_panel = &pa[ir * kc * MR..(ir + 1) * kc * MR];
                                        run_tile(
                                            avx2,
                                            kc,
                                            a_panel,
                                            b_panel,
                                            &mut c_chunk[c_off..],
                                            n,
                                            mr_eff,
                                            nr_eff,
                                        );
                                    }
                                }
                            }
                        }
                    }
                })
            });
        });
}

// `run_tile_direct`'s monomorphised dispatch enumerates 1..=MR.
const _: () = assert!(MR == 4, "update run_tile_direct's dispatch arms with MR");

/// Output rows (= `A` columns) per task of the tall-skinny tn path. At
/// 128 a stripe reads 512 contiguous bytes per `A` storage row — whole
/// cache lines, unlike an MR-wide tile whose 16-byte strided reads waste
/// 3/4 of every line fetched — and its `NR`-padded accumulator block is
/// 8 KiB, small enough to live in L1 for the whole sweep.
const TN_STRIPE: usize = 128;

/// Inner kernel of the tall-skinny `C = Aᵀ·B` path (`n ≤ NR`): one
/// stripe of `we ≤ TN_STRIPE` output rows (= `A` columns `i0..i0+we`)
/// accumulated over all `m` summation rows in ascending order against a
/// single NR-padded packed `B` panel. The per-element sequence is the
/// always-add variant of [`gemm_tn_ref`]'s — identical bits by the
/// skip-invisibility argument in the module docs. Padded columns
/// (`j ≥ n`) accumulate into lanes that are never stored.
#[inline(always)]
fn tn_stripe_body(
    a_data: &[f32],
    k: usize,
    m: usize,
    i0: usize,
    bp: &[f32],
    n: usize,
    tile: &mut [f32],
) {
    let we = tile.len() / n;
    let mut acc = [[0.0f32; NR]; TN_STRIPE];
    for l in 0..m {
        let av = &a_data[l * k + i0..l * k + i0 + we];
        let bv = &bp[l * NR..(l + 1) * NR];
        for (acc_row, &ar) in acc[..we].iter_mut().zip(av) {
            for (accv, &b) in acc_row.iter_mut().zip(bv) {
                *accv += ar * b;
            }
        }
    }
    for (r, acc_row) in acc[..we].iter().enumerate() {
        tile[r * n..(r + 1) * n].copy_from_slice(&acc_row[..n]);
    }
}

/// Baseline-ISA instantiation of the tall-skinny tn kernel.
fn tn_stripe_generic(
    a_data: &[f32],
    k: usize,
    m: usize,
    i0: usize,
    bp: &[f32],
    n: usize,
    tile: &mut [f32],
) {
    tn_stripe_body(a_data, k, m, i0, bp, n, tile);
}

/// AVX2 instantiation: identical Rust code, wider auto-vectorisation.
/// Lane-wise IEEE arithmetic without contraction keeps it bit-identical
/// to [`tn_stripe_generic`].
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`
// — executing AVX2 instructions on a CPU without them is UB. The only
// call site (`run_tn_stripe`) is gated on `is_x86_feature_detected!`
// evaluated once in `gemm_tn_direct`. The body is the safe
// `tn_stripe_body`: `a_data[l·k + i0 .. +we]` stays in bounds because
// the stripe partition derives `we ≤ k − i0`, `bp` is the packed panel
// of exactly `m·NR` elements, and every access is bounds-checked — no
// raw pointers, no alignment assumptions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tn_stripe_avx2(
    a_data: &[f32],
    k: usize,
    m: usize,
    i0: usize,
    bp: &[f32],
    n: usize,
    tile: &mut [f32],
) {
    tn_stripe_body(a_data, k, m, i0, bp, n, tile);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_tn_stripe(
    avx2: bool,
    a_data: &[f32],
    k: usize,
    m: usize,
    i0: usize,
    bp: &[f32],
    n: usize,
    tile: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support in `gemm_tn_direct`.
        unsafe { tn_stripe_avx2(a_data, k, m, i0, bp, n, tile) };
        return;
    }
    let _ = avx2;
    tn_stripe_generic(a_data, k, m, i0, bp, n, tile);
}

/// Tall-skinny `C = Aᵀ·B` driver for `n ≤ NR` (e.g. the
/// `2708×1433 · 2708×16` weight gradient of a 16-unit hidden layer).
///
/// The packed path is a bad fit here twice over: with at most one `B`
/// micro-panel, every packed `A` panel is written and read exactly once
/// (pure packing overhead), and the tn `View` has strided logical rows
/// (`cs = k`) so `gemm_packed`'s direct-A shortcut can never fire.
/// Instead `B` is packed once into a single `m × NR` zero-padded panel
/// and `A`'s storage is streamed in place, one `TN_STRIPE`-column stripe
/// at a time — each stripe reads its columns contiguously from every
/// row, sequentially down the matrix, so `A` is fetched exactly once in
/// whole cache lines. `c` must be zeroed on entry; results are
/// bit-identical to [`gemm_tn_ref`] (pinned by
/// `prop_tn_direct_bitwise_matches_ref`).
fn gemm_tn_direct(a_data: &[f32], b_data: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    debug_assert!(n <= NR && n > 0);
    debug_assert_eq!(c.len(), k * n);
    if m == 0 || k == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;

    // Pack B once: storage row l lands at bp[l·NR..l·NR+n], the padded
    // columns stay zero (their accumulator lanes are never stored).
    let mut bp = vec![0.0f32; m * NR];
    for (l, row) in b_data.chunks(n).enumerate() {
        bp[l * NR..l * NR + n].copy_from_slice(row);
    }

    c.par_chunks_mut(TN_STRIPE * n)
        .enumerate()
        .for_each(|(blk, tile)| {
            let i0 = blk * TN_STRIPE;
            run_tn_stripe(avx2, a_data, k, m, i0, &bp, n, tile);
        });
}

/// True when fewer than [`SPARSE_MAX_DENSITY`] of `a`'s entries are
/// non-zero. Exact parallel count — integer summation, so the answer (and
/// therefore the dispatch) is deterministic regardless of thread count.
fn is_zero_heavy(a: &[f32]) -> bool {
    let nnz: usize = a
        .par_chunks(1 << 14)
        .map(|chunk| chunk.iter().filter(|&&v| v != 0.0).count())
        .sum();
    (nnz as f64) < SPARSE_MAX_DENSITY * a.len() as f64
}

/// The pre-PR4 parallel `C = A · B` kernel, verbatim: row-blocked over the
/// output, `i-k-j` loop order, `aik == 0` terms skipped when `B` is
/// entirely finite. Each output element is accumulated k-sequentially
/// within a single task, so the result is bit-identical to
/// [`gemm_nn_ref`] (and, by the skip-invisibility argument in the module
/// docs, to the packed kernel). `c` must be zeroed on entry.
fn gemm_nn_skip_par(a_data: &[f32], b_data: &[f32], n: usize, k: usize, c: &mut [f32]) {
    let b_finite = b_data
        .par_chunks(1 << 14)
        .all(|ch| ch.iter().all(|v| v.is_finite()));
    c.par_chunks_mut(BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let row0 = blk * BLOCK;
            let rows_here = c_chunk.len() / n;
            for i in 0..rows_here {
                let a_row = &a_data[(row0 + i) * k..(row0 + i + 1) * k];
                let c_row = &mut c_chunk[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 && b_finite {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
}

/// The pre-PR4 parallel `C = Aᵀ · B` kernel, verbatim: each task owns a
/// block of output rows (a block of `A`'s columns) and sweeps all `m`
/// summation rows in ascending order, skipping `av == 0` terms when `B`
/// is finite. Bit-identical to [`gemm_tn_ref`]. `c` must be zeroed.
fn gemm_tn_skip_par(a_data: &[f32], b_data: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    let b_finite = b_data
        .par_chunks(1 << 14)
        .all(|ch| ch.iter().all(|v| v.is_finite()));
    c.par_chunks_mut(BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let col0 = blk * BLOCK;
            let cols_here = c_chunk.len() / n;
            for row in 0..m {
                let a_row = &a_data[row * k..(row + 1) * k];
                let b_row = &b_data[row * n..(row + 1) * n];
                for j in 0..cols_here {
                    let av = a_row[col0 + j];
                    if av == 0.0 && b_finite {
                        continue;
                    }
                    let c_row = &mut c_chunk[j * n..(j + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        });
}

/// `C = A · B` where `A` is `m x k` and `B` is `k x n`.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_body(a, b, &mut c);
    c
}

/// [`matmul`] into a caller-provided output (overwritten, any prior
/// contents ignored). Lets the autograd workspace recycle buffers.
///
/// # Panics
/// Panics when the inner dimensions or the output shape disagree.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    c.as_mut_slice().fill(0.0);
    matmul_body(a, b, c);
}

/// Accumulating driver shared by [`matmul`] / [`matmul_into`]; `c` must be
/// zeroed on entry.
fn matmul_body(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions disagree ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(c.shape(), (m, n), "matmul_into: output shape mismatch");
    if m * k * n <= SMALL_FLOPS {
        gemm_nn_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    } else if is_zero_heavy(a.as_slice()) {
        gemm_nn_skip_par(a.as_slice(), b.as_slice(), n, k, c.as_mut_slice());
    } else {
        let av = View {
            data: a.as_slice(),
            rs: k,
            cs: 1,
        };
        let bv = View {
            data: b.as_slice(),
            rs: n,
            cs: 1,
        };
        gemm_packed(m, n, k, av, bv, c.as_mut_slice());
    }
}

/// `C = Aᵀ · B` where `A` is `m x k` and `B` is `m x n`; the result is `k x n`.
///
/// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`).
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_body(a, b, &mut c);
    c
}

/// [`matmul_tn`] into a caller-provided output (overwritten).
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    c.as_mut_slice().fill(0.0);
    matmul_tn_body(a, b, c);
}

fn matmul_tn_body(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: row counts disagree ({}x{} vs {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(c.shape(), (k, n), "matmul_tn_into: output shape mismatch");
    if m * k * n <= SMALL_FLOPS {
        gemm_tn_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    } else if is_zero_heavy(a.as_slice()) {
        gemm_tn_skip_par(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    } else if n <= NR {
        // Tall-skinny outputs (narrow B) skip the packing machinery
        // entirely — see `gemm_tn_direct`.
        gemm_tn_direct(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    } else {
        // Logical left operand is Aᵀ (`k × m`): element (i, l) = A[l, i].
        let av = View {
            data: a.as_slice(),
            rs: 1,
            cs: k,
        };
        let bv = View {
            data: b.as_slice(),
            rs: n,
            cs: 1,
        };
        gemm_packed(k, n, m, av, bv, c.as_mut_slice());
    }
}

/// `C = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`; the result is `m x n`.
///
/// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`).
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_body(a, b, &mut c);
    c
}

/// [`matmul_nt`] into a caller-provided output (overwritten).
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    c.as_mut_slice().fill(0.0);
    matmul_nt_body(a, b, c);
}

fn matmul_nt_body(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: column counts disagree ({}x{} vs {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(c.shape(), (m, n), "matmul_nt_into: output shape mismatch");
    if m * k * n <= SMALL_FLOPS {
        gemm_nt_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    } else {
        let av = View {
            data: a.as_slice(),
            rs: k,
            cs: 1,
        };
        // Logical right operand is Bᵀ (`k × n`): element (l, j) = B[j, l].
        let bv = View {
            data: b.as_slice(),
            rs: 1,
            cs: k,
        };
        gemm_packed(m, n, k, av, bv, c.as_mut_slice());
    }
}

// ---------------------------------------------------------------------------
// Reference kernels: the pre-PR4 implementations, kept serial and verbatim.
// They are the bit-level oracle for the packed kernels and the dispatch
// target for tiny shapes.
// ---------------------------------------------------------------------------

fn gemm_nn_ref(a_data: &[f32], b_data: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    // The `aik == 0` fast path silently turns `0·NaN` / `0·∞` into `0`.
    // IEEE semantics only permit the skip when B is free of non-finite
    // values, hence the scan.
    let b_finite = b_data.iter().all(|v| v.is_finite());
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 && b_finite {
                continue;
            }
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

fn gemm_tn_ref(a_data: &[f32], b_data: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    let b_finite = b_data.iter().all(|v| v.is_finite());
    for row in 0..m {
        let a_row = &a_data[row * k..(row + 1) * k];
        let b_row = &b_data[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 && b_finite {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

fn gemm_nt_ref(a_data: &[f32], b_data: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// Serial reference `C = A · B` with the original zero-skip/`b_finite`
/// semantics. Oracle for bit-identity tests.
pub fn matmul_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_ref: inner dimensions disagree");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    gemm_nn_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    c
}

/// Serial reference `C = Aᵀ · B`. Oracle for bit-identity tests.
pub fn matmul_tn_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn_ref: row counts disagree");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(k, n);
    gemm_tn_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    c
}

/// Serial reference `C = A · Bᵀ`. Oracle for bit-identity tests.
pub fn matmul_nt_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_ref: column counts disagree");
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    gemm_nt_ref(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
    c
}

/// Reference scalar implementation used by tests and property checks.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a[(i, kk)] as f64 * b[(kk, j)] as f64;
            }
            c[(i, j)] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 2000) as f32 - 1000.0) / 500.0
        })
    }

    /// Forces the packed path regardless of the small-shape cutoff.
    fn packed_nn(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        let av = View {
            data: a.as_slice(),
            rs: k,
            cs: 1,
        };
        let bv = View {
            data: b.as_slice(),
            rs: n,
            cs: 1,
        };
        gemm_packed(m, n, k, av, bv, c.as_mut_slice());
        c
    }

    fn packed_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(k, n);
        let av = View {
            data: a.as_slice(),
            rs: 1,
            cs: k,
        };
        let bv = View {
            data: b.as_slice(),
            rs: n,
            cs: 1,
        };
        gemm_packed(k, n, m, av, bv, c.as_mut_slice());
        c
    }

    fn packed_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.rows();
        let mut c = Matrix::zeros(m, n);
        let av = View {
            data: a.as_slice(),
            rs: k,
            cs: 1,
        };
        let bv = View {
            data: b.as_slice(),
            rs: 1,
            cs: k,
        };
        gemm_packed(m, n, k, av, bv, c.as_mut_slice());
        c
    }

    /// Exact bitwise equality, NaN patterns included.
    fn assert_bits_eq(c: &Matrix, r: &Matrix) {
        assert_eq!(c.shape(), r.shape());
        for (i, (&cv, &rv)) in c.as_slice().iter().zip(r.as_slice()).enumerate() {
            assert_eq!(cv.to_bits(), rv.to_bits(), "element {i}: {cv:?} vs {rv:?}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = mat(17, 23, 1);
        let b = mat(23, 9, 2);
        matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = mat(8, 8, 3);
        matmul(&a, &Matrix::identity(8)).assert_close(&a, 1e-6);
        matmul(&Matrix::identity(8), &a).assert_close(&a, 1e-6);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_mul() {
        let a = mat(19, 7, 4);
        let b = mat(19, 11, 5);
        matmul_tn(&a, &b).assert_close(&matmul_naive(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn matmul_tn_tall_skinny_dispatch_is_bit_identical() {
        // Large enough to clear SMALL_FLOPS and dense enough to skip the
        // zero-heavy path, with n ≤ NR: dispatches to `gemm_tn_direct`
        // through the public entry point (the 2708×1433×16 bench shape in
        // miniature, crossing the MR tile edge with k = 521).
        let a = mat(300, 521, 40);
        let b = mat(300, 16, 41);
        assert_bits_eq(&matmul_tn(&a, &b), &matmul_tn_ref(&a, &b));
        // Ragged n below NR too.
        let b7 = mat(300, 7, 42);
        assert_bits_eq(&matmul_tn(&a, &b7), &matmul_tn_ref(&a, &b7));
    }

    #[test]
    fn matmul_nt_equals_mul_with_transpose() {
        let a = mat(13, 21, 6);
        let b = mat(10, 21, 7);
        matmul_nt(&a, &b).assert_close(&matmul_naive(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn large_block_boundary_shapes() {
        // Cross the MR/NR/MC boundaries on every dimension.
        let a = mat(65, 33, 8);
        let b = mat(33, 34, 9);
        matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_times_nonfinite_is_nan_not_zero() {
        // Regression: the `aik == 0` fast path used to skip the product
        // entirely, reporting 0 where IEEE arithmetic says 0·NaN = NaN.
        let zero = Matrix::from_fn(1, 1, |_, _| 0.0);
        let nan = Matrix::from_fn(1, 1, |_, _| f32::NAN);
        let inf = Matrix::from_fn(1, 1, |_, _| f32::INFINITY);
        assert!(matmul(&zero, &nan)[(0, 0)].is_nan());
        assert!(matmul(&zero, &inf)[(0, 0)].is_nan());
        assert!(matmul_tn(&zero, &nan)[(0, 0)].is_nan());
        assert!(matmul_tn(&zero, &inf)[(0, 0)].is_nan());
        assert!(matmul_nt(&zero, &nan)[(0, 0)].is_nan());
    }

    #[test]
    fn finite_b_keeps_the_zero_skip_exact() {
        // A fully zero A row yields an exactly zero C row, never -0.0
        // noise — on both the reference and the packed path.
        let mut a = mat(4, 6, 11);
        for j in 0..6 {
            a[(2, j)] = 0.0;
        }
        let b = mat(6, 5, 12);
        for c in [matmul(&a, &b), packed_nn(&a, &b)] {
            for j in 0..5 {
                assert_eq!(c[(2, j)].to_bits(), 0.0f32.to_bits());
            }
        }
    }

    #[test]
    fn packed_bitwise_matches_ref_on_ragged_large_shapes() {
        // Cross every blocking boundary: MR=4, NR=16, MC=128, KC=256.
        for &(m, k, n) in &[
            (129usize, 300usize, 17usize),
            (257, 70, 33),
            (130, 260, 15),
            (4, 513, 16),
            (541, 97, 3),
        ] {
            let a = mat(m, k, m as u64 * 31 + n as u64);
            let b = mat(k, n, k as u64 * 17 + 5);
            assert_bits_eq(&packed_nn(&a, &b), &matmul_ref(&a, &b));

            let a_tn = mat(m, k, 77);
            let b_tn = mat(m, n, 78);
            assert_bits_eq(&packed_tn(&a_tn, &b_tn), &matmul_tn_ref(&a_tn, &b_tn));

            let b_nt = mat(n, k, 79);
            assert_bits_eq(&packed_nt(&a, &b_nt), &matmul_nt_ref(&a, &b_nt));
        }
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let a = mat(37, 41, 21);
        let b = mat(41, 19, 22);
        let mut c = Matrix::from_fn(37, 19, |_, _| f32::NAN);
        matmul_into(&a, &b, &mut c);
        assert_bits_eq(&c, &matmul(&a, &b));

        let g = mat(37, 19, 23);
        let mut dw = Matrix::from_fn(41, 19, |_, _| 123.0);
        matmul_tn_into(&a, &g, &mut dw);
        assert_bits_eq(&dw, &matmul_tn(&a, &g));

        let mut dx = Matrix::from_fn(37, 41, |_, _| -7.5);
        matmul_nt_into(&g, &b, &mut dx);
        assert_bits_eq(&dx, &matmul_nt(&g, &b));
    }

    /// Zeroes all but `keep` of every `span` entries, pushing the matrix
    /// under the sparse-dispatch density cutoff.
    fn sparsify(m: &mut Matrix, keep: usize, span: usize) {
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            if i % span >= keep {
                *v = 0.0;
            }
        }
    }

    #[test]
    fn sparse_dispatch_bitwise_matches_ref() {
        // Large enough to clear SMALL_FLOPS, left operand ~6 % non-zero:
        // the zero-heavy dispatch kicks in and must not change a bit.
        let mut a = mat(130, 70, 51);
        sparsify(&mut a, 1, 16);
        let b = mat(70, 40, 52);
        assert_bits_eq(&matmul(&a, &b), &matmul_ref(&a, &b));

        let b_tn = mat(130, 40, 53);
        assert_bits_eq(&matmul_tn(&a, &b_tn), &matmul_tn_ref(&a, &b_tn));
    }

    #[test]
    fn sparse_dispatch_keeps_nonfinite_b_semantics() {
        // With NaN/∞ in B the skip must stay disabled: 0·NaN = NaN.
        let mut a = mat(130, 70, 54);
        sparsify(&mut a, 1, 16);
        let mut b = mat(70, 40, 55);
        inject_nonfinite(&mut b, 56, 3);
        assert_bits_eq(&matmul(&a, &b), &matmul_ref(&a, &b));

        let mut b_tn = mat(130, 40, 57);
        inject_nonfinite(&mut b_tn, 58, 3);
        assert_bits_eq(&matmul_tn(&a, &b_tn), &matmul_tn_ref(&a, &b_tn));
    }

    #[test]
    fn packed_paper_scale_shape_matches_ref() {
        // A scaled-down version of the paper-scale 2708×1433×16 product
        // that still spans multiple MC and KC blocks.
        let a = mat(300, 520, 41);
        let b = mat(520, 16, 42);
        assert_bits_eq(&packed_nn(&a, &b), &matmul_ref(&a, &b));
    }

    /// Elementwise comparison that treats non-finite values by class:
    /// NaN matches NaN, ±∞ matches the same signed ∞, finite values match
    /// approximately. Both kernels and the naive reference accumulate over
    /// `kk` in ascending order, so the non-finite class of every output
    /// element is deterministic.
    fn assert_same_class(c: &Matrix, r: &Matrix, tol: f32) {
        assert_eq!(c.shape(), r.shape());
        for (i, (&cv, &rv)) in c.as_slice().iter().zip(r.as_slice()).enumerate() {
            if rv.is_nan() {
                assert!(cv.is_nan(), "element {i}: expected NaN, got {cv}");
            } else if rv.is_infinite() {
                assert_eq!(cv, rv, "element {i}: expected {rv}, got {cv}");
            } else {
                assert!((cv - rv).abs() <= tol, "element {i}: {cv} vs {rv}");
            }
        }
    }

    /// Plants NaN / +∞ / -∞ at seed-derived positions.
    fn inject_nonfinite(m: &mut Matrix, seed: u64, count: usize) {
        let (rows, cols) = m.shape();
        if rows * cols == 0 {
            return;
        }
        let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        for _ in 0..count {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x as usize) % (rows * cols);
            m.as_mut_slice()[idx] = match x % 3 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => f32::NEG_INFINITY,
            };
        }
    }

    /// Zeroes out seed-derived rows entirely (exercises the reference
    /// kernels' zero-skip against the packed kernels' always-add).
    fn zero_rows(m: &mut Matrix, seed: u64, count: usize) {
        let rows = m.rows();
        if rows == 0 {
            return;
        }
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..count {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let r = (x as usize) % rows;
            for v in m.row_mut(r) {
                *v = 0.0;
            }
        }
    }

    proptest! {
        /// The tentpole invariant: the packed kernels reproduce the
        /// reference kernels bit-for-bit across ragged shapes, zeroed
        /// rows, and non-finite contamination of either operand.
        #[test]
        fn prop_packed_bitwise_matches_ref(
            m in 1usize..40, k in 1usize..40, n in 1usize..40,
            seed in 0u64..1000,
            inj_a in 0usize..3, inj_b in 0usize..3, zr in 0usize..3,
        ) {
            let mut a = mat(m, k, seed);
            let mut b = mat(k, n, seed.wrapping_add(1));
            inject_nonfinite(&mut a, seed.wrapping_add(2), inj_a);
            inject_nonfinite(&mut b, seed.wrapping_add(3), inj_b);
            zero_rows(&mut a, seed.wrapping_add(4), zr);
            assert_bits_eq(&packed_nn(&a, &b), &matmul_ref(&a, &b));

            let mut a_tn = mat(m, k, seed.wrapping_add(5));
            let mut b_tn = mat(m, n, seed.wrapping_add(6));
            inject_nonfinite(&mut a_tn, seed.wrapping_add(7), inj_a);
            inject_nonfinite(&mut b_tn, seed.wrapping_add(8), inj_b);
            assert_bits_eq(&packed_tn(&a_tn, &b_tn), &matmul_tn_ref(&a_tn, &b_tn));

            let mut b_nt = mat(n, k, seed.wrapping_add(9));
            inject_nonfinite(&mut b_nt, seed.wrapping_add(10), inj_b);
            assert_bits_eq(&packed_nt(&a, &b_nt), &matmul_nt_ref(&a, &b_nt));
        }

        /// The tall-skinny direct-tn kernel (forced, bypassing dispatch)
        /// reproduces the reference bit-for-bit over its whole `n ≤ NR`
        /// domain, with zeroed rows and non-finite contamination of
        /// either operand.
        #[test]
        fn prop_tn_direct_bitwise_matches_ref(
            m in 1usize..40, k in 1usize..40, n in 1usize..=NR,
            seed in 0u64..1000,
            inj_a in 0usize..3, inj_b in 0usize..3, zr in 0usize..3,
        ) {
            let mut a = mat(m, k, seed);
            let mut b = mat(m, n, seed.wrapping_add(1));
            inject_nonfinite(&mut a, seed.wrapping_add(2), inj_a);
            inject_nonfinite(&mut b, seed.wrapping_add(3), inj_b);
            zero_rows(&mut a, seed.wrapping_add(4), zr);
            let mut c = Matrix::zeros(k, n);
            gemm_tn_direct(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
            assert_bits_eq(&c, &matmul_tn_ref(&a, &b));
        }

        /// The public entry points (which dispatch small shapes to the
        /// reference kernels) agree with the refs bitwise too.
        #[test]
        fn prop_public_matches_ref_bitwise(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..500,
        ) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(1));
            assert_bits_eq(&matmul(&a, &b), &matmul_ref(&a, &b));
        }

        #[test]
        fn prop_kernels_match_naive_on_nonfinite_inputs(
            m in 1usize..12, k in 1usize..12, n in 1usize..12,
            seed in 0u64..500, inj_a in 0usize..4, inj_b in 0usize..4,
        ) {
            let mut a = mat(m, k, seed);
            let mut b = mat(k, n, seed.wrapping_add(1));
            inject_nonfinite(&mut a, seed.wrapping_add(2), inj_a);
            inject_nonfinite(&mut b, seed.wrapping_add(3), inj_b);
            assert_same_class(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-2);

            // Aᵀ·B via matmul_tn on (m x k, m x n) operands.
            let mut a_tn = mat(m, k, seed.wrapping_add(4));
            let mut b_tn = mat(m, n, seed.wrapping_add(5));
            inject_nonfinite(&mut a_tn, seed.wrapping_add(6), inj_a);
            inject_nonfinite(&mut b_tn, seed.wrapping_add(7), inj_b);
            assert_same_class(
                &matmul_tn(&a_tn, &b_tn),
                &matmul_naive(&a_tn.transpose(), &b_tn),
                1e-2,
            );

            // A·Bᵀ via matmul_nt on (m x k, n x k) operands.
            let mut b_nt = mat(n, k, seed.wrapping_add(8));
            inject_nonfinite(&mut b_nt, seed.wrapping_add(9), inj_b);
            assert_same_class(
                &matmul_nt(&a, &b_nt),
                &matmul_naive(&a, &b_nt.transpose()),
                1e-2,
            );
        }

        #[test]
        fn prop_matmul_matches_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(1));
            matmul(&a, &b).assert_close(&matmul_naive(&a, &b), 1e-3);
        }

        #[test]
        fn prop_tn_nt_consistency(m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(m, n, seed.wrapping_add(2));
            let tn = matmul_tn(&a, &b);
            // Aᵀ B = Aᵀ (Bᵀ)ᵀ, computed the nt way on explicit transposes.
            let nt = matmul_nt(&a.transpose(), &b.transpose());
            prop_assert_eq!(tn.shape(), (k, n));
            tn.assert_close(&nt, 1e-3);
        }

        #[test]
        fn prop_distributivity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..500) {
            // A(B + C) == AB + AC
            let a = mat(m, k, seed);
            let b = mat(k, n, seed + 10);
            let c = mat(k, n, seed + 20);
            let mut bc = b.clone();
            for (x, y) in bc.as_mut_slice().iter_mut().zip(c.as_slice()) { *x += *y; }
            let lhs = matmul(&a, &bc);
            let ab = matmul(&a, &b);
            let ac = matmul(&a, &c);
            let mut rhs = ab.clone();
            for (x, y) in rhs.as_mut_slice().iter_mut().zip(ac.as_slice()) { *x += *y; }
            lhs.assert_close(&rhs, 1e-2);
        }
    }
}
