//! Weight initialisers.
//!
//! §4.3 of the paper leans on the fact that "the weights of neural networks
//! are generally initial\[ised\] with Gaussian distribution, e.g., Xavier and
//! He initialization", which via the CLT makes layer-wise features
//! approximately Gaussian — the premise of the whole CMD construction. Both
//! initialisers referenced there are provided.

use crate::matrix::Matrix;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-a..=a);
    }
    m
}

/// He normal initialisation: `N(0, 2 / fan_in)`, suited to ReLU networks.
pub fn he_normal(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = gaussian(rng) * std;
    }
    m
}

/// Standard normal matrix (Box–Muller).
pub fn standard_normal(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = gaussian(rng);
    }
    m
}

/// One standard-normal sample via Box–Muller.
pub fn gaussian(rng: &mut ChaCha8Rng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded(0);
        let m = xavier_uniform(100, 50, &mut rng);
        let a = (6.0 / 150.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn xavier_is_roughly_zero_mean() {
        let mut rng = seeded(1);
        let m = xavier_uniform(200, 200, &mut rng);
        assert!(m.mean().abs() < 0.01);
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = seeded(2);
        let m = he_normal(400, 100, &mut rng);
        let var: f32 = m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.len() as f32;
        let expected = 2.0 / 400.0;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "variance {var} far from expected {expected}"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(3);
        let m = standard_normal(500, 100, &mut rng);
        assert!(m.mean().abs() < 0.02);
        let var: f32 = m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.len() as f32;
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut seeded(9));
        let b = xavier_uniform(4, 4, &mut seeded(9));
        assert_eq!(a, b);
    }
}
