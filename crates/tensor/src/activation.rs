//! Activation functions and their backward rules.

use crate::matrix::Matrix;

/// Rectified linear unit, `max(0, x)`, element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Backward pass of ReLU: passes `grad` where the *forward input* was
/// positive, zero elsewhere.
pub fn relu_backward(input: &Matrix, grad: &Matrix) -> Matrix {
    let mut out = grad.clone();
    relu_backward_inplace(input, &mut out);
    out
}

/// [`relu_backward`] writing into a gradient buffer in place: zeroes the
/// entries of `grad` where the forward input was non-positive.
pub fn relu_backward_inplace(input: &Matrix, grad: &mut Matrix) {
    assert_eq!(input.shape(), grad.shape(), "relu_backward: shape mismatch");
    for (g, &x) in grad.as_mut_slice().iter_mut().zip(input.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Logistic sigmoid, element-wise.
pub fn sigmoid(x: &Matrix) -> Matrix {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Hyperbolic tangent, element-wise.
pub fn tanh(x: &Matrix) -> Matrix {
    x.map(|v| v.tanh())
}

/// Row-wise softmax with the max-subtraction trick for numerical stability.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// [`softmax_rows`] overwriting the logits in place.
pub fn softmax_rows_inplace(out: &mut Matrix) {
    let cols = out.cols();
    for row in out.as_mut_slice().chunks_mut(cols) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Row-wise log-softmax (stable).
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    let cols = out.cols();
    for row in out.as_mut_slice().chunks_mut(cols) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.1, 0.0, 3.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks_by_forward_input() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let g = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
        // Largest logit gets the largest probability.
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let y = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        softmax_rows(&x).assert_close(&softmax_rows(&y), 1e-6);
    }

    #[test]
    fn softmax_survives_large_logits() {
        let x = Matrix::from_vec(1, 2, vec![1000.0, 0.0]);
        let s = softmax_rows(&x);
        assert!(s.all_finite());
        assert!((s[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Matrix::from_vec(1, 4, vec![0.3, -1.2, 2.0, 0.0]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for c in 0..4 {
            assert!((ls[(0, c)] - s[(0, c)].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let x = Matrix::from_vec(1, 3, vec![-100.0, 0.0, 100.0]);
        let s = sigmoid(&x);
        assert!(s[(0, 0)] < 1e-6);
        assert!((s[(0, 1)] - 0.5).abs() < 1e-6);
        assert!(s[(0, 2)] > 1.0 - 1e-6);
    }
}
