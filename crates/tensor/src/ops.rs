//! Element-wise operations and broadcast helpers.

use crate::matrix::Matrix;

/// `out = a + b`, element-wise.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b`, element-wise.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += *y;
    }
}

/// `a += alpha * b` (axpy), element-wise.
pub fn axpy(a: &mut Matrix, alpha: f32, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "axpy: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * *y;
    }
}

/// `out = a - b`, element-wise.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= *y;
    }
    out
}

/// `out = a ⊙ b` (Hadamard product).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= *y;
    }
    out
}

/// `out = alpha * a`.
pub fn scale(a: &Matrix, alpha: f32) -> Matrix {
    a.map(|v| v * alpha)
}

/// Adds a length-`cols` row vector to every row of `a` (bias broadcast).
pub fn add_row_broadcast(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(
        a.cols(),
        bias.len(),
        "add_row_broadcast: bias length mismatch"
    );
    let cols = a.cols();
    for row in a.as_mut_slice().chunks_mut(cols) {
        for (x, b) in row.iter_mut().zip(bias) {
            *x += *b;
        }
    }
}

/// Squared Frobenius distance `‖a − b‖_F²`.
pub fn sq_distance(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "sq_distance: shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>() as f32
}

/// Dot product of the flattened matrices.
pub fn dot(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "dot: shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (*x as f64) * (*y as f64))
        .sum::<f64>() as f32
}

/// Clamps every element into `[lo, hi]` in place.
pub fn clamp_inplace(a: &mut Matrix, lo: f32, hi: f32) {
    a.map_inplace(|v| v.clamp(lo, hi));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f32>) -> Matrix {
        Matrix::from_vec(2, 2, v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0]);
        let b = m(vec![0.5, -1.0, 2.0, 0.0]);
        let s = add(&a, &b);
        assert_eq!(sub(&s, &b), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(vec![1.0, 1.0, 1.0, 1.0]);
        let b = m(vec![1.0, 2.0, 3.0, 4.0]);
        axpy(&mut a, 0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0]);
        let b = m(vec![2.0, 0.5, -1.0, 0.0]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[2.0, 1.0, -3.0, 0.0]);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let mut a = Matrix::zeros(3, 2);
        add_row_broadcast(&mut a, &[1.0, -2.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -2.0]);
        }
    }

    #[test]
    fn distance_and_dot() {
        let a = m(vec![1.0, 0.0, 0.0, 0.0]);
        let b = m(vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(sq_distance(&a, &b), 2.0);
        assert_eq!(dot(&a, &b), 0.0);
        assert_eq!(dot(&a, &a), 1.0);
    }

    #[test]
    fn clamp_limits_range() {
        let mut a = m(vec![-5.0, 0.5, 7.0, 1.0]);
        clamp_inplace(&mut a, 0.0, 1.0);
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = add(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3));
    }
}
