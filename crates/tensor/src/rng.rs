//! Deterministic, seedable randomness.
//!
//! Every stochastic component of the reproduction (weight init, dataset
//! generation, dropout, Louvain tie-breaking, client scheduling) draws from
//! a ChaCha8 stream created here, so a single `u64` seed reproduces an
//! entire experiment bit-for-bit.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG for the given seed.
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to hand independent streams to parallel workers (clients, layers)
/// without sharing mutable RNG state across threads: the splitmix64 finaliser
/// decorrelates nearby labels.
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..8).map(|_| seeded(42).gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| seeded(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seeded(1);
        let mut r2 = seeded(2);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_decorrelates_neighbouring_streams() {
        let s = 7u64;
        let a = derive(s, 0);
        let b = derive(s, 1);
        assert_ne!(a, b);
        // The Hamming distance should be substantial, not a single bit flip.
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn derive_is_pure() {
        assert_eq!(derive(123, 45), derive(123, 45));
    }
}
