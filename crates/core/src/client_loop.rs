//! The client half of a multi-process FedOMD deployment.
//!
//! [`run_fedomd_client_rounds`] is one party's side of Algorithm 1: per
//! round it records its forward pass, takes part in the 2-round statistics
//! exchange, optimises `CE + α·L_ortho + β·d_CMD`, uploads its weights,
//! installs the aggregated global model, and ships the round's loss and
//! eval counts as a `Metrics` frame. The math is line-for-line the
//! in-process loop's (`crate::trainer`) — the loss terms are built by the
//! same shared helpers — so over a faithful transport a multi-process run
//! reproduces the in-process numbers exactly.
//!
//! The loop is *resumable by construction*: it takes an explicit
//! `start_round` and a caller-owned [`ClientSession`], so the `fedomd-net`
//! reconnect logic can re-enter it after a server loss, optionally after
//! installing a fresher global model into the session.

use fedomd_autograd::{CmdTargets, Tape, Var, Workspace};
use fedomd_federated::helpers::{count_correct, predict};
use fedomd_federated::{ClientData, TrainConfig};
use fedomd_nn::{Adam, Model, Optimizer};
use fedomd_telemetry::{ObservedChannel, Phase, PhaseStopwatch, RoundEvent, RoundObserver};
use fedomd_tensor::Matrix;
use fedomd_transport::{from_tensors, to_tensors, Channel, Control, Envelope, Payload};

use crate::config::FedOmdConfig;
use crate::deploy::build_fedomd_model;
use crate::protocol::{build_targets, client_means, client_moments_about, GlobalStats};
use crate::trainer::{sum_cmd, sum_terms};

/// One client's training state, owned by the caller so it survives
/// transport reconnects.
pub struct ClientSession {
    /// The local Ortho-GCN.
    pub model: Box<dyn Model>,
    /// The local optimiser (per-client state, never shipped).
    pub opt: Adam,
    /// Reusable autograd buffer pool.
    pub ws: Workspace,
}

impl ClientSession {
    /// A fresh session with the federation's common init (the same
    /// `build_fedomd_model` every process calls).
    pub fn new(cfg: &TrainConfig, omd: &FedOmdConfig, in_dim: usize, n_classes: usize) -> Self {
        Self {
            model: build_fedomd_model(cfg, omd, in_dim, n_classes),
            opt: Adam::new(cfg.lr, cfg.weight_decay),
            ws: Workspace::new(),
        }
    }
}

/// Why [`run_fedomd_client_rounds`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The configured round budget completed.
    Finished,
    /// The server's verdict said the run early-stopped.
    Stopped,
    /// No verdict arrived within the channel's deadline: the server is
    /// gone (crashed, or this client was cut off). `round` is the next
    /// round this client would have entered; the authoritative resume
    /// point comes from the server's handshake after reconnecting.
    ServerLost {
        /// First round not entered locally.
        round: usize,
    },
}

/// Runs one client's rounds `start_round..cfg.rounds` over `chan`.
///
/// Fault semantics mirror the in-process loop under a lossy channel: a
/// missing global-statistics frame means training without the CMD term
/// this round, a missing global model means keeping the local weights —
/// each phase simply times out at the channel's deadline. Only a missing
/// *verdict* ends the loop (with [`ClientOutcome::ServerLost`]), because
/// without it the client cannot know whether the run early-stopped.
#[allow(clippy::too_many_arguments)]
pub fn run_fedomd_client_rounds(
    id: u32,
    client: &ClientData,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    session: &mut ClientSession,
    start_round: usize,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
) -> ClientOutcome {
    let mut chan = ObservedChannel::new(chan);
    let mut stash: Vec<Envelope> = Vec::new();

    for round in start_round..cfg.rounds {
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        let r = round as u64;

        // --- Phase 1: forward pass ---
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let mut tape = Tape::with_workspace(std::mem::take(&mut session.ws));
        let out = session.model.forward(&mut tape, &client.input);
        sw.finish(obs);

        // --- Phase 2: the 2-round statistics exchange ---
        let targets: Option<Vec<CmdTargets>> = if omd.use_cmd {
            let sw = PhaseStopwatch::start(Phase::Comms);
            let hidden: Vec<&Matrix> = out.hidden.iter().map(|&h| tape.value(h)).collect();
            chan.upload(Envelope {
                round: r,
                sender: id,
                payload: Payload::StatsRound1 {
                    means: client_means(&hidden),
                    n_samples: hidden.first().map_or(0, |z| z.rows()) as u64,
                },
            });
            // First GlobalStats down: the means. A slow client may find the
            // full statistics already queued behind them — both shapes are
            // accepted here, keyed on whether the moment list is empty.
            let mut gmeans: Option<Vec<Vec<f32>>> = None;
            let mut full: Option<GlobalStats> = None;
            if let Some(env) = collect_matching(&mut chan, id, r, &mut stash, |p| {
                matches!(p, Payload::GlobalStats { .. })
            }) {
                if let Payload::GlobalStats { means, moments } = env.payload {
                    if moments.is_empty() {
                        gmeans = Some(means);
                    } else {
                        full = Some(GlobalStats { means, moments });
                    }
                }
            }
            if full.is_none() {
                if let Some(means) = &gmeans {
                    chan.upload(Envelope {
                        round: r,
                        sender: id,
                        payload: Payload::StatsRound2 {
                            moments: client_moments_about(&hidden, means, omd.max_moment),
                        },
                    });
                    if let Some(env) = collect_matching(
                        &mut chan,
                        id,
                        r,
                        &mut stash,
                        |p| matches!(p, Payload::GlobalStats { moments, .. } if !moments.is_empty()),
                    ) {
                        if let Payload::GlobalStats { means, moments } = env.payload {
                            full = Some(GlobalStats { means, moments });
                        }
                    }
                }
            }
            chan.flush_into(obs);
            sw.finish(obs);
            full.map(|gs| build_targets(&gs))
        } else {
            None
        };

        // --- Phase 3: loss, backward, local step (trainer math, verbatim
        // via the shared helpers) ---
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let ce = tape.softmax_cross_entropy(out.logits, &client.labels, &client.splits.train);
        let mut loss = ce;
        let mut ortho_term: Option<Var> = None;
        if omd.use_ortho {
            if let Some(pen) = sum_terms(&mut tape, out.ortho_weight_vars.to_vec(), |t, w| {
                t.ortho_penalty(w)
            }) {
                let scaled = tape.scale(pen, omd.alpha);
                ortho_term = Some(scaled);
                loss = tape.add(loss, scaled);
            }
        }
        let mut cmd_term: Option<Var> = None;
        if let Some(targets) = &targets {
            let n_constrained = if omd.cmd_first_layer_only {
                1
            } else {
                out.hidden.len()
            };
            if let Some(cmd) = sum_cmd(
                &mut tape,
                &out.hidden[..n_constrained],
                &targets[..n_constrained],
                omd.width,
                omd.cmd_mean_scale,
            ) {
                let scaled = tape.scale(cmd, omd.beta);
                cmd_term = Some(scaled);
                loss = tape.add(loss, scaled);
            }
        }
        tape.backward(loss);
        let grads: Vec<Matrix> = out
            .param_vars
            .iter()
            .map(|&v| tape.grad_or_zeros(v))
            .collect();
        let mut params = session.model.params();
        session.opt.step(&mut params, &grads);
        session.model.set_params(&params);
        session.model.post_step();
        for g in grads {
            tape.recycle_matrix(g);
        }
        for p in params {
            tape.recycle_matrix(p);
        }
        let total_loss = tape.scalar(loss);
        obs.on_event(&RoundEvent::LocalStepDone {
            client: id,
            epoch: 0,
            loss: total_loss as f64,
            ce: tape.scalar(ce) as f64,
            ortho: ortho_term.map_or(0.0, |v| tape.scalar(v)) as f64,
            cmd: cmd_term.map_or(0.0, |v| tape.scalar(v)) as f64,
        });
        session.ws = tape.recycle();
        sw.finish(obs);

        // --- Phase 4: weights up, aggregated global model down ---
        let sw = PhaseStopwatch::start(Phase::Comms);
        chan.upload(Envelope {
            round: r,
            sender: id,
            payload: Payload::WeightUpdate {
                params: to_tensors(&session.model.params()),
            },
        });
        if let Some(env) = collect_matching(&mut chan, id, r, &mut stash, |p| {
            matches!(p, Payload::GlobalModel { .. })
        }) {
            if let Payload::GlobalModel { params } = env.payload {
                session.model.set_params(&from_tensors(params));
            }
        }
        chan.flush_into(obs);
        sw.finish(obs);

        // --- Round outcome: local eval on the post-aggregation model, the
        // counts shipped for the server's pooled accuracy. ---
        let counts = if round.is_multiple_of(cfg.eval_every) {
            let sw = PhaseStopwatch::start(Phase::Eval);
            let logits = predict(session.model.as_ref(), client);
            let (vc, vt) = count_correct(&logits, &client.labels, &client.splits.val);
            let (tc, tt) = count_correct(&logits, &client.labels, &client.splits.test);
            sw.finish(obs);
            (vc as u64, vt as u64, tc as u64, tt as u64)
        } else {
            (0, 0, 0, 0)
        };
        chan.upload(Envelope {
            round: r,
            sender: id,
            payload: Payload::Metrics {
                train_loss: total_loss,
                val_correct: counts.0,
                val_total: counts.1,
                test_correct: counts.2,
                test_total: counts.3,
            },
        });
        chan.flush_into(obs);

        // --- Verdict: continue, stop, or conclude the server is gone. On
        // its last scheduled round the client leaves without waiting. ---
        if round + 1 >= cfg.rounds {
            continue;
        }
        match collect_matching(&mut chan, id, r, &mut stash, |p| {
            matches!(p, Payload::Control(_))
        }) {
            Some(env) => {
                if let Payload::Control(Control::EndRound) = env.payload {
                    chan.flush_into(obs);
                    return ClientOutcome::Stopped;
                }
                chan.flush_into(obs);
            }
            None => {
                chan.flush_into(obs);
                return ClientOutcome::ServerLost { round: round + 1 };
            }
        }
    }
    ClientOutcome::Finished
}

/// Takes the first round-`round` frame matching `want` — from the stash
/// first, then from the channel until it reports nothing new (deadline).
/// Non-matching current-or-future frames are stashed for later phases;
/// frames of closed rounds are discarded.
fn collect_matching(
    chan: &mut ObservedChannel<'_>,
    id: u32,
    round: u64,
    stash: &mut Vec<Envelope>,
    want: impl Fn(&Payload) -> bool,
) -> Option<Envelope> {
    if let Some(pos) = stash
        .iter()
        .position(|e| e.round == round && want(&e.payload))
    {
        return Some(stash.remove(pos));
    }
    stash.retain(|e| e.round >= round);
    loop {
        let batch = chan.client_collect(id, round);
        if batch.is_empty() {
            return None;
        }
        let mut found = None;
        for env in batch {
            if found.is_none() && env.round == round && want(&env.payload) {
                found = Some(env);
            } else if env.round >= round {
                stash.push(env);
            }
        }
        if found.is_some() {
            return found;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_federated::{client_shard, FederationConfig};
    use fedomd_telemetry::NullObserver;
    use fedomd_transport::{InProcChannel, SERVER_SENDER};

    fn one_shard() -> (ClientData, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        let shard = client_shard(&ds, &FederationConfig::mini(2, 0), 0).expect("shard 0");
        (shard, ds.n_classes)
    }

    fn quick_cfg(rounds: usize) -> TrainConfig {
        TrainConfig {
            rounds,
            patience: 100,
            ..TrainConfig::mini(0)
        }
    }

    #[test]
    fn lone_client_degrades_and_reports_server_lost() {
        // No server behind the channel: every downlink phase times out,
        // the client still takes its local step, and the missing verdict
        // after round 0 ends the loop.
        let (shard, k) = one_shard();
        let cfg = quick_cfg(3);
        let omd = FedOmdConfig::paper();
        let mut session = ClientSession::new(&cfg, &omd, shard.input.n_features(), k);
        let before = session.model.params();
        let mut chan = InProcChannel::new();
        let out = run_fedomd_client_rounds(
            0,
            &shard,
            &cfg,
            &omd,
            &mut session,
            0,
            &mut chan,
            &mut NullObserver,
        );
        assert_eq!(out, ClientOutcome::ServerLost { round: 1 });
        let after = session.model.params();
        assert!(
            before
                .iter()
                .zip(&after)
                .any(|(a, b)| a.as_slice() != b.as_slice()),
            "the local Adam step must have moved the weights"
        );
        // The round's uplink made it out: stats round 1, weights, metrics
        // (stats round 2 needs the global means, which never came).
        let kinds: Vec<&str> = chan
            .server_collect(0)
            .iter()
            .map(|e| e.payload.kind())
            .collect();
        assert_eq!(kinds, ["StatsRound1", "WeightUpdate", "Metrics"]);
    }

    #[test]
    fn installs_the_global_model_and_ships_eval_counts() {
        let (shard, k) = one_shard();
        let cfg = quick_cfg(1);
        let omd = FedOmdConfig::ortho_only(); // no CMD: no stats exchange
        let mut session = ClientSession::new(&cfg, &omd, shard.input.n_features(), k);
        // A "global model" the server would broadcast: recognisably not
        // what the local step produces.
        let global: Vec<Matrix> = session
            .model
            .params()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let mut chan = InProcChannel::new();
        chan.download(
            0,
            Envelope {
                round: 0,
                sender: SERVER_SENDER,
                payload: Payload::GlobalModel {
                    params: to_tensors(&global),
                },
            },
        );
        let out = run_fedomd_client_rounds(
            0,
            &shard,
            &cfg,
            &omd,
            &mut session,
            0,
            &mut chan,
            &mut NullObserver,
        );
        // Single-round budget: the client finishes without a verdict.
        assert_eq!(out, ClientOutcome::Finished);
        for (p, g) in session.model.params().iter().zip(&global) {
            assert_eq!(p.as_slice(), g.as_slice(), "global model not installed");
        }
        // Round 0 is on the eval schedule: the metrics frame must carry the
        // zero-model's actual pooled counts over this shard.
        let logits = predict(session.model.as_ref(), &shard);
        let (vc, vt) = count_correct(&logits, &shard.labels, &shard.splits.val);
        let (tc, tt) = count_correct(&logits, &shard.labels, &shard.splits.test);
        let uplink = chan.server_collect(0);
        let metrics = uplink
            .iter()
            .find(|e| matches!(e.payload, Payload::Metrics { .. }))
            .expect("metrics frame");
        match &metrics.payload {
            Payload::Metrics {
                train_loss,
                val_correct,
                val_total,
                test_correct,
                test_total,
            } => {
                assert!(train_loss.is_finite() && *train_loss > 0.0);
                assert_eq!(
                    (*val_correct, *val_total, *test_correct, *test_total),
                    (vc as u64, vt as u64, tc as u64, tt as u64)
                );
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn end_round_verdict_stops_the_loop_via_the_stash() {
        // The verdict is queued before the client even starts: it surfaces
        // during the (unmatched) global-model collect, parks in the stash,
        // and is consumed by the verdict phase.
        let (shard, k) = one_shard();
        let cfg = quick_cfg(5);
        let omd = FedOmdConfig::ortho_only();
        let mut session = ClientSession::new(&cfg, &omd, shard.input.n_features(), k);
        let mut chan = InProcChannel::new();
        chan.download(
            0,
            Envelope {
                round: 0,
                sender: SERVER_SENDER,
                payload: Payload::Control(Control::EndRound),
            },
        );
        let out = run_fedomd_client_rounds(
            0,
            &shard,
            &cfg,
            &omd,
            &mut session,
            0,
            &mut chan,
            &mut NullObserver,
        );
        assert_eq!(out, ClientOutcome::Stopped);
    }
}
