//! The unified run entry point: one builder for every algorithm, channel,
//! and telemetry sink.
//!
//! Historically each loop grew a `run_*` / `run_*_with` / `run_*_observed`
//! triple; [`FedRun`] folds those axes into one builder so call sites
//! compose exactly the pieces they need:
//!
//! ```no_run
//! use fedomd_core::{FedRun, RunConfig};
//! use fedomd_data::{generate, spec, DatasetName};
//! use fedomd_federated::{setup_federation, FederationConfig};
//! use fedomd_telemetry::ConsoleObserver;
//!
//! let ds = generate(&spec(DatasetName::CoraMini), 0);
//! let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
//! let mut console = ConsoleObserver::stderr();
//! let result = FedRun::new(&clients, ds.n_classes)
//!     .config(RunConfig::mini(0))
//!     .observer(&mut console)
//!     .run();
//! println!("test accuracy: {:.2}%", 100.0 * result.test_acc);
//! ```
//!
//! Omitted pieces default to the fault-free [`InProcChannel`] and the
//! zero-cost [`fedomd_telemetry::NullObserver`]; observers are pure sinks,
//! so attaching one never changes the numbers (golden-tested in
//! `tests/telemetry_golden.rs`).
//!
//! Runs can additionally be made crash-safe: [`FedRun::checkpoint_every`]
//! snapshots the full run state every `n` rounds (atomically, via
//! [`FileCheckpointer`]), and [`FedRun::resume_from`] picks a killed run
//! back up from its latest snapshot — bit-identical to the uninterrupted
//! run (golden-tested in `tests/checkpoint_golden.rs`).

use std::path::{Path, PathBuf};

use fedomd_federated::{
    ClientData, CohortConfig, GenericOpts, Persistence, PipelineConfig, RunResult, TrainConfig,
};
use fedomd_nn::CheckpointError;
use fedomd_telemetry::{NullObserver, RoundObserver};
use fedomd_transport::{Channel, InProcChannel};

use crate::config::FedOmdConfig;
use crate::run_checkpoint::{FileCheckpointer, RunCheckpoint};
use crate::trainer::run_fedomd_resumable;

/// The complete configuration of one federated run: the training schedule
/// shared by every algorithm plus FedOMD's objective hyper-parameters.
///
/// The split mirrors the crate boundary — [`TrainConfig`] lives in
/// `fedomd-federated` because baselines share it, [`FedOmdConfig`] lives
/// here because only FedOMD reads it — but call sites should not have to
/// care, so this type carries both and forwards the common presets.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Rounds, learning rate, patience, hidden width, seed (all
    /// algorithms).
    pub train: TrainConfig,
    /// α/β weights, moment order, ablation switches (FedOMD only; ignored
    /// by baselines).
    pub omd: FedOmdConfig,
}

impl RunConfig {
    /// Paper-faithful settings (1000 rounds, patience 200, calibrated
    /// FedOMD objective).
    pub fn paper(seed: u64) -> Self {
        Self {
            train: TrainConfig::paper(seed),
            omd: FedOmdConfig::paper(),
        }
    }

    /// Fast settings for the mini datasets.
    pub fn mini(seed: u64) -> Self {
        Self {
            train: TrainConfig::mini(seed),
            omd: FedOmdConfig::paper(),
        }
    }

    /// Replaces the training schedule.
    pub fn with_train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Replaces the FedOMD objective parameters.
    pub fn with_omd(mut self, omd: FedOmdConfig) -> Self {
        self.omd = omd;
        self
    }

    /// Caps the number of communication rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.train.rounds = rounds;
        self
    }

    /// Sets the early-stopping patience in rounds.
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.train.patience = patience;
        self
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.train.seed = seed;
        self
    }

    /// Sets the per-round client sampling policy (default: full
    /// participation).
    pub fn with_cohort(mut self, cohort: CohortConfig) -> Self {
        self.train.cohort = cohort;
        self
    }

    /// Overlaps client training with server-side streaming folds
    /// (default off). Bit-identical to the sequential path — only
    /// wall-clock and server memory change.
    pub fn with_pipelined(mut self, enabled: bool) -> Self {
        self.train.pipeline = PipelineConfig { enabled };
        self
    }
}

/// What a [`FedRun`] actually executes.
enum RunKind {
    /// FedOMD (Algorithm 1) — the default.
    FedOmd,
    /// The generic FedAvg-family loop with the given options (FedMLP,
    /// FedProx, LocGCN, FedGCN).
    Generic(GenericOpts),
}

impl RunKind {
    /// The algorithm name stamped into checkpoints and validated on
    /// resume.
    fn algorithm(&self) -> &str {
        match self {
            RunKind::FedOmd => "FedOMD",
            RunKind::Generic(opts) => opts.name,
        }
    }
}

/// Builder for one federated run.
///
/// Composes the four independent axes — algorithm, configuration,
/// transport channel, telemetry observer — that earlier `run_*` /
/// `run_*_with` entry points hard-wired into separate functions.
/// Construct with [`FedRun::new`], chain setters, finish with
/// [`FedRun::run`].
pub struct FedRun<'a> {
    clients: &'a [ClientData],
    n_classes: usize,
    config: RunConfig,
    kind: RunKind,
    channel: Option<&'a mut dyn Channel>,
    observer: Option<&'a mut dyn RoundObserver>,
    ckpt_every: usize,
    ckpt_path: Option<PathBuf>,
    resume: Option<RunCheckpoint>,
}

impl<'a> FedRun<'a> {
    /// Starts a FedOMD run over `clients` with [`RunConfig::paper`]
    /// defaults (seed 0), the in-process channel, and no telemetry.
    pub fn new(clients: &'a [ClientData], n_classes: usize) -> Self {
        Self {
            clients,
            n_classes,
            config: RunConfig::paper(0),
            kind: RunKind::FedOmd,
            channel: None,
            observer: None,
            ckpt_every: 0,
            ckpt_path: None,
            resume: None,
        }
    }

    /// Replaces the full configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces only the training schedule.
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.config.train = train;
        self
    }

    /// Replaces only the FedOMD objective parameters.
    pub fn omd(mut self, omd: FedOmdConfig) -> Self {
        self.config.omd = omd;
        self
    }

    /// Runs the generic FedAvg-family loop instead of FedOMD.
    pub fn generic(mut self, opts: GenericOpts) -> Self {
        self.kind = RunKind::Generic(opts);
        self
    }

    /// Routes all exchanges over `chan` (default: fault-free
    /// [`InProcChannel`]).
    pub fn channel(mut self, chan: &'a mut dyn Channel) -> Self {
        self.channel = Some(chan);
        self
    }

    /// Reports every round milestone to `obs` (default: the zero-cost
    /// [`NullObserver`]).
    pub fn observer(mut self, obs: &'a mut dyn RoundObserver) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Snapshots the full run state to `path` every `every` rounds
    /// (atomic overwrite of the same file). `every == 0` disables
    /// checkpointing.
    pub fn checkpoint_every(mut self, every: usize, path: impl Into<PathBuf>) -> Self {
        self.ckpt_every = every;
        self.ckpt_path = Some(path.into());
        self
    }

    /// Resumes from the snapshot at `path`. A missing file is
    /// [`CheckpointError::Io`]; a truncated or corrupt one is
    /// [`CheckpointError::Parse`] — a half-written checkpoint is never
    /// silently restored.
    pub fn resume_from(self, path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Ok(self.resume(RunCheckpoint::load(path)?))
    }

    /// Resumes from an already-loaded checkpoint.
    pub fn resume(mut self, ckpt: RunCheckpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    /// Executes the run to completion.
    ///
    /// # Panics
    /// Panics when a resume checkpoint's algorithm or seed does not match
    /// this run's configuration — restoring foreign state would produce
    /// silently wrong results.
    pub fn run(self) -> RunResult {
        let mut default_chan = InProcChannel::new();
        let mut default_obs = NullObserver;
        let chan: &mut dyn Channel = self.channel.unwrap_or(&mut default_chan);
        let obs: &mut dyn RoundObserver = self.observer.unwrap_or(&mut default_obs);
        let algorithm = self.kind.algorithm();
        let resume = self.resume.map(|ckpt| {
            assert_eq!(
                ckpt.algorithm, algorithm,
                "resume: checkpoint was taken by a different algorithm"
            );
            assert_eq!(
                ckpt.seed, self.config.train.seed,
                "resume: checkpoint was taken under a different seed"
            );
            ckpt.state
        });
        let mut sink = self.ckpt_path.filter(|_| self.ckpt_every > 0).map(|path| {
            FileCheckpointer::new(path, self.ckpt_every, algorithm, self.config.train.seed)
        });
        let persist = Persistence {
            resume,
            sink: sink.as_mut().map(|s| s as _),
        };
        match self.kind {
            RunKind::FedOmd => run_fedomd_resumable(
                self.clients,
                self.n_classes,
                &self.config.train,
                &self.config.omd,
                chan,
                obs,
                persist,
            ),
            RunKind::Generic(opts) => fedomd_federated::run_generic_resumable(
                self.clients,
                self.n_classes,
                &self.config.train,
                &opts,
                chan,
                obs,
                persist,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::run_fedomd_observed;
    use fedomd_federated::engine::ModelKind;
    use fedomd_federated::{setup_federation, FederationConfig};
    use fedomd_telemetry::MemoryObserver;

    use fedomd_data::{generate, spec, DatasetName};

    fn mini_setup() -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 7);
        let clients = setup_federation(&ds, &FederationConfig::mini(2, 7));
        (clients, ds.n_classes)
    }

    #[test]
    fn builder_matches_the_raw_loop() {
        let (clients, n_classes) = mini_setup();
        let cfg = RunConfig::mini(7).with_rounds(6);
        let a = FedRun::new(&clients, n_classes).config(cfg.clone()).run();
        let b = run_fedomd_observed(
            &clients,
            n_classes,
            &cfg.train,
            &cfg.omd,
            &mut InProcChannel::new(),
            &mut NullObserver,
        );
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.val_acc, b.val_acc);
        assert_eq!(a.comms.uplink_bytes, b.comms.uplink_bytes);
        assert_eq!(a.comms.downlink_bytes, b.comms.downlink_bytes);
    }

    #[test]
    fn builder_runs_generic_with_observer() {
        let (clients, n_classes) = mini_setup();
        let mut mem = MemoryObserver::new();
        let r = FedRun::new(&clients, n_classes)
            .config(RunConfig::mini(7).with_rounds(4))
            .generic(GenericOpts {
                name: "FedMLP",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.0,
            })
            .observer(&mut mem)
            .run();
        assert_eq!(r.algorithm, "FedMLP");
        assert_eq!(mem.count("run_started"), 1);
        assert_eq!(mem.count("round_started"), 4);
        assert_eq!(mem.count("run_finished"), 1);
    }

    #[test]
    fn run_config_setters_compose() {
        let c = RunConfig::mini(3)
            .with_rounds(9)
            .with_patience(5)
            .with_seed(11)
            .with_cohort(CohortConfig::fraction(0.2, 4))
            .with_pipelined(true)
            .with_omd(FedOmdConfig::cmd_only());
        assert_eq!(c.train.rounds, 9);
        assert_eq!(c.train.patience, 5);
        assert_eq!(c.train.seed, 11);
        assert_eq!(c.train.cohort.sample_frac, 0.2);
        assert_eq!(c.train.cohort.seed, 4);
        assert!(c.train.pipeline.enabled);
        assert!(!c.omd.use_ortho);
    }
}
