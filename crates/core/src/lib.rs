//! **FedOMD** — the paper's contribution: graph federated learning with
//! center moment constraints (ICPP Workshops '24).
//!
//! Each client trains an orthogonal GCN ([`fedomd_nn::OrthoGcn`], the
//! paper's Table 1) whose objective (Eq. 12) combines
//!
//! * the local cross-entropy,
//! * `α ·` the orthogonality penalty `Σ_k ‖W_k W_kᵀ − I‖_F` (Eq. 6), and
//! * `β ·` the CMD distance (Eq. 11) between the client's hidden feature
//!   distribution and the global i.i.d. distribution the server assembles,
//!
//! where the global distribution is obtained *implicitly* through the
//! 2-round statistics exchange of Algorithm 1 ([`protocol`]): round one
//! ships per-layer activation means, round two ships central moments of
//! orders 2..=5 computed about the returned global mean. Weights are then
//! aggregated with FedAvg.
//!
//! ```no_run
//! use fedomd_core::{FedRun, RunConfig};
//! use fedomd_data::{generate, spec, DatasetName};
//! use fedomd_federated::{setup_federation, FederationConfig};
//!
//! let ds = generate(&spec(DatasetName::CoraMini), 0);
//! let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
//! let result = FedRun::new(&clients, ds.n_classes)
//!     .config(RunConfig::mini(0))
//!     .run();
//! println!("test accuracy: {:.2}%", 100.0 * result.test_acc);
//! ```

#![forbid(unsafe_code)]

pub mod client_loop;
pub mod config;
pub mod deploy;
pub mod protocol;
pub mod run;
pub mod run_checkpoint;
pub mod server;
pub mod trainer;

pub use client_loop::{run_fedomd_client_rounds, ClientOutcome, ClientSession};
pub use config::FedOmdConfig;
pub use deploy::{build_fedomd_model, run_config_digest};
pub use fedomd_nn::CheckpointError;
pub use protocol::{
    aggregate_means, aggregate_means_sharded, aggregate_moments, aggregate_moments_sharded,
    build_targets, client_means, client_moments_about, GlobalStats, MeanAccumulator,
    MomentAccumulator, ProtocolError, AGG_LANES,
};
pub use run::{FedRun, RunConfig};
pub use run_checkpoint::{FileCheckpointer, RunCheckpoint};
pub use server::{drive_phase, drive_phase_fold, run_fedomd_server, ServerOpts};
pub use trainer::{run_fedomd_observed, run_fedomd_resumable};
