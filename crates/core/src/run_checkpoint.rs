//! Run-level checkpointing: the [`RunCheckpoint`] file format and the
//! [`FileCheckpointer`] sink that writes it.
//!
//! A run checkpoint is everything the paper's multi-hundred-round
//! experiments need to survive a crash: the next round index, every
//! client's model parameters and Adam moments, the driver's history and
//! early-stopping state, the comms accounting, the transport's
//! fault-stream cursor, and (for FedOMD) the last aggregated global model
//! and global statistics. A run killed at round `k` and resumed from its
//! latest snapshot replays the remaining rounds **bit-identically** to the
//! uninterrupted run — golden-tested in `tests/checkpoint_golden.rs`.
//!
//! Snapshots are written atomically ([`fedomd_jsonio::write_atomic`]:
//! tmp-file, fsync, rename), so a crash mid-save leaves the previous valid
//! snapshot in place; a file truncated by some other failure is rejected
//! on load with [`CheckpointError::Parse`], never silently half-restored.

use std::path::{Path, PathBuf};

use fedomd_federated::{
    CheckpointSink, CommsLog, DriverState, ResumeState, RoundStats, StatsCache,
};
use fedomd_jsonio::{obj, Json};
use fedomd_nn::{AdamState, CheckpointError};
use fedomd_telemetry::{RoundEvent, RoundObserver};
use fedomd_tensor::Matrix;
use fedomd_transport::{ChannelState, NetStats};

/// Magic tag identifying a run-checkpoint document.
const FORMAT: &str = "fedomd-run-checkpoint";
/// Current format version; bumped on incompatible schema changes.
const VERSION: u64 = 1;

/// One durable snapshot of a federated run at a round boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct RunCheckpoint {
    /// Schema version (currently 1).
    pub version: u64,
    /// Algorithm name (`"FedOMD"`, `"FedGCN"`, ...); checked on resume so
    /// a snapshot never restores into a different algorithm's run.
    pub algorithm: String,
    /// Run seed; checked on resume for the same reason.
    pub seed: u64,
    /// The actual resume payload.
    pub state: ResumeState,
}

fn parse_err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Parse(msg.into())
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, CheckpointError> {
    doc.get(key)
        .ok_or_else(|| parse_err(format!("missing field `{key}`")))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| parse_err(format!("field `{key}`: expected unsigned integer")))
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, CheckpointError> {
    Ok(get_u64(doc, key)? as usize)
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, CheckpointError> {
    field(doc, key)?
        .as_bool()
        .ok_or_else(|| parse_err(format!("field `{key}`: expected boolean")))
}

fn get_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    field(doc, key)?
        .as_array()
        .ok_or_else(|| parse_err(format!("field `{key}`: expected array")))
}

/// JSON has no `-inf` (the printer would emit a lossy `null`), but
/// `DriverState::best_val` starts at `f64::NEG_INFINITY` — non-finite
/// values ride as sentinel strings instead.
fn f64_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v == f64::NEG_INFINITY {
        Json::Str("-inf".into())
    } else if v == f64::INFINITY {
        Json::Str("inf".into())
    } else {
        Json::Str("nan".into())
    }
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, CheckpointError> {
    match field(doc, key)? {
        Json::Num(v) => Ok(*v),
        Json::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Json::Str(s) if s == "nan" => Ok(f64::NAN),
        _ => Err(parse_err(format!("field `{key}`: expected number"))),
    }
}

fn vec_f32_to_json(v: &[f32]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn vec_f32_from_json(v: &Json, what: &str) -> Result<Vec<f32>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| parse_err(format!("{what}: expected array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| parse_err(format!("{what}: expected number")))
        })
        .collect()
}

fn matrices_to_json(ms: &[Matrix]) -> Json {
    Json::Arr(ms.iter().map(Matrix::to_json).collect())
}

fn matrices_from_json(v: &Json, what: &str) -> Result<Vec<Matrix>, CheckpointError> {
    v.as_array()
        .ok_or_else(|| parse_err(format!("{what}: expected array")))?
        .iter()
        .map(|m| Matrix::from_json(m).map_err(CheckpointError::Parse))
        .collect()
}

fn adam_to_json(s: &AdamState) -> Json {
    obj([
        ("t", s.t.into()),
        ("m", matrices_to_json(&s.m)),
        ("v", matrices_to_json(&s.v)),
    ])
}

fn adam_from_json(doc: &Json) -> Result<AdamState, CheckpointError> {
    Ok(AdamState {
        t: get_u64(doc, "t")?,
        m: matrices_from_json(field(doc, "m")?, "optim.m")?,
        v: matrices_from_json(field(doc, "v")?, "optim.v")?,
    })
}

fn net_stats_to_json(s: &NetStats) -> Json {
    obj([
        ("sent_frames", s.sent_frames.into()),
        ("sent_bytes", s.sent_bytes.into()),
        ("delivered_frames", s.delivered_frames.into()),
        ("delivered_bytes", s.delivered_bytes.into()),
        ("dropped_frames", s.dropped_frames.into()),
        ("retries", s.retries.into()),
    ])
}

fn net_stats_from_json(doc: &Json) -> Result<NetStats, CheckpointError> {
    Ok(NetStats {
        sent_frames: get_u64(doc, "sent_frames")?,
        sent_bytes: get_u64(doc, "sent_bytes")?,
        delivered_frames: get_u64(doc, "delivered_frames")?,
        delivered_bytes: get_u64(doc, "delivered_bytes")?,
        dropped_frames: get_u64(doc, "dropped_frames")?,
        retries: get_u64(doc, "retries")?,
    })
}

fn channel_to_json(s: &ChannelState) -> Json {
    obj([
        ("seq", s.seq.into()),
        ("stats", net_stats_to_json(&s.stats)),
    ])
}

fn channel_from_json(doc: &Json) -> Result<ChannelState, CheckpointError> {
    Ok(ChannelState {
        seq: get_u64(doc, "seq")?,
        stats: net_stats_from_json(field(doc, "stats")?)?,
    })
}

fn comms_to_json(c: &CommsLog) -> Json {
    obj([
        ("uplink_bytes", c.uplink_bytes.into()),
        ("downlink_bytes", c.downlink_bytes.into()),
        ("stats_uplink_bytes", c.stats_uplink_bytes.into()),
        ("rounds", c.rounds.into()),
        ("dropped_messages", c.dropped_messages.into()),
    ])
}

fn comms_from_json(doc: &Json) -> Result<CommsLog, CheckpointError> {
    Ok(CommsLog {
        uplink_bytes: get_u64(doc, "uplink_bytes")?,
        downlink_bytes: get_u64(doc, "downlink_bytes")?,
        stats_uplink_bytes: get_u64(doc, "stats_uplink_bytes")?,
        rounds: get_u64(doc, "rounds")?,
        dropped_messages: get_u64(doc, "dropped_messages")?,
    })
}

fn round_stats_to_json(r: &RoundStats) -> Json {
    obj([
        ("round", r.round.into()),
        ("train_loss", f64_to_json(r.train_loss)),
        ("val_acc", f64_to_json(r.val_acc)),
        ("test_acc", f64_to_json(r.test_acc)),
    ])
}

fn round_stats_from_json(doc: &Json) -> Result<RoundStats, CheckpointError> {
    Ok(RoundStats {
        round: get_usize(doc, "round")?,
        train_loss: get_f64(doc, "train_loss")?,
        val_acc: get_f64(doc, "val_acc")?,
        test_acc: get_f64(doc, "test_acc")?,
    })
}

fn driver_to_json(d: &DriverState) -> Json {
    obj([
        (
            "history",
            Json::Arr(d.history.iter().map(round_stats_to_json).collect()),
        ),
        ("best_val", f64_to_json(d.best_val)),
        ("best_test", f64_to_json(d.best_test)),
        ("best_round", d.best_round.into()),
        ("rounds_since_improve", d.rounds_since_improve.into()),
        ("stopped", d.stopped.into()),
        ("comms", comms_to_json(&d.comms)),
    ])
}

fn driver_from_json(doc: &Json) -> Result<DriverState, CheckpointError> {
    Ok(DriverState {
        history: get_arr(doc, "history")?
            .iter()
            .map(round_stats_from_json)
            .collect::<Result<_, _>>()?,
        best_val: get_f64(doc, "best_val")?,
        best_test: get_f64(doc, "best_test")?,
        best_round: get_usize(doc, "best_round")?,
        rounds_since_improve: get_usize(doc, "rounds_since_improve")?,
        stopped: get_bool(doc, "stopped")?,
        comms: comms_from_json(field(doc, "comms")?)?,
    })
}

fn stats_to_json(s: &StatsCache) -> Json {
    obj([
        (
            "means",
            Json::Arr(s.means.iter().map(|m| vec_f32_to_json(m)).collect()),
        ),
        (
            "moments",
            Json::Arr(
                s.moments
                    .iter()
                    .map(|layer| Json::Arr(layer.iter().map(|o| vec_f32_to_json(o)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn stats_from_json(doc: &Json) -> Result<StatsCache, CheckpointError> {
    let means = get_arr(doc, "means")?
        .iter()
        .map(|m| vec_f32_from_json(m, "stats.means"))
        .collect::<Result<_, _>>()?;
    let moments = get_arr(doc, "moments")?
        .iter()
        .map(|layer| {
            layer
                .as_array()
                .ok_or_else(|| parse_err("stats.moments: expected array"))?
                .iter()
                .map(|o| vec_f32_from_json(o, "stats.moments"))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<_, _>>()?;
    Ok(StatsCache { means, moments })
}

impl RunCheckpoint {
    /// Wraps a [`ResumeState`] with run identity metadata at the current
    /// format version.
    pub fn new(algorithm: impl Into<String>, seed: u64, state: ResumeState) -> Self {
        Self {
            version: VERSION,
            algorithm: algorithm.into(),
            seed,
            state,
        }
    }

    /// The JSON document form.
    pub fn to_json(&self) -> Json {
        let s = &self.state;
        obj([
            ("format", FORMAT.into()),
            ("version", self.version.into()),
            ("algorithm", self.algorithm.as_str().into()),
            ("seed", self.seed.into()),
            ("next_round", s.next_round.into()),
            (
                "params",
                Json::Arr(s.params.iter().map(|p| matrices_to_json(p)).collect()),
            ),
            (
                "optim",
                Json::Arr(s.optim.iter().map(adam_to_json).collect()),
            ),
            (
                "model_steps",
                Json::Arr(s.model_steps.iter().map(|&v| v.into()).collect()),
            ),
            ("driver", driver_to_json(&s.driver)),
            ("channel", channel_to_json(&s.channel)),
            (
                "global",
                s.global.as_deref().map_or(Json::Null, matrices_to_json),
            ),
            ("stats", s.stats.as_ref().map_or(Json::Null, stats_to_json)),
        ])
    }

    /// Parses the JSON document form, rejecting unknown formats/versions.
    pub fn from_json(doc: &Json) -> Result<Self, CheckpointError> {
        let format = field(doc, "format")?
            .as_str()
            .ok_or_else(|| parse_err("field `format`: expected string"))?;
        if format != FORMAT {
            return Err(CheckpointError::Mismatch {
                what: "format".into(),
                found: format.into(),
                expected: FORMAT.into(),
            });
        }
        let version = get_u64(doc, "version")?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch {
                what: "version".into(),
                found: version.to_string(),
                expected: VERSION.to_string(),
            });
        }
        let algorithm = field(doc, "algorithm")?
            .as_str()
            .ok_or_else(|| parse_err("field `algorithm`: expected string"))?
            .to_string();
        let seed = get_u64(doc, "seed")?;
        let params = get_arr(doc, "params")?
            .iter()
            .map(|p| matrices_from_json(p, "params"))
            .collect::<Result<Vec<_>, _>>()?;
        let optim = get_arr(doc, "optim")?
            .iter()
            .map(adam_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if params.len() != optim.len() {
            return Err(parse_err(format!(
                "params/optim arity mismatch: {} vs {}",
                params.len(),
                optim.len()
            )));
        }
        let model_steps = get_arr(doc, "model_steps")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| parse_err("model_steps: expected unsigned integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if model_steps.len() != params.len() {
            return Err(parse_err(format!(
                "params/model_steps arity mismatch: {} vs {}",
                params.len(),
                model_steps.len()
            )));
        }
        let global = match field(doc, "global")? {
            Json::Null => None,
            v => Some(matrices_from_json(v, "global")?),
        };
        let stats = match field(doc, "stats")? {
            Json::Null => None,
            v => Some(stats_from_json(v)?),
        };
        Ok(Self {
            version,
            algorithm,
            seed,
            state: ResumeState {
                next_round: get_usize(doc, "next_round")?,
                params,
                optim,
                model_steps,
                driver: driver_from_json(field(doc, "driver")?)?,
                channel: channel_from_json(field(doc, "channel")?)?,
                global,
                stats,
            },
        })
    }

    /// Writes the checkpoint to `path` atomically (tmp + fsync + rename).
    /// Returns the serialised size in bytes.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, CheckpointError> {
        let path = path.as_ref();
        fedomd_jsonio::write_atomic(path, &self.to_json().to_compact())
            .map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))
    }

    /// Loads a checkpoint from `path`. A missing file is
    /// [`CheckpointError::Io`]; a truncated or corrupt one is
    /// [`CheckpointError::Parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))?;
        let doc = Json::parse(&text).map_err(CheckpointError::Parse)?;
        Self::from_json(&doc)
    }
}

/// The [`CheckpointSink`] that run loops hand their snapshots to: wraps
/// each [`ResumeState`] in a [`RunCheckpoint`] and writes it over the same
/// file, emitting [`RoundEvent::CheckpointSaved`] once durable.
pub struct FileCheckpointer {
    path: PathBuf,
    every: usize,
    algorithm: String,
    seed: u64,
}

impl FileCheckpointer {
    /// A checkpointer saving to `path` every `every` rounds, stamping the
    /// snapshots with the run's identity.
    pub fn new(
        path: impl Into<PathBuf>,
        every: usize,
        algorithm: impl Into<String>,
        seed: u64,
    ) -> Self {
        Self {
            path: path.into(),
            every,
            algorithm: algorithm.into(),
            seed,
        }
    }
}

impl CheckpointSink for FileCheckpointer {
    fn every(&self) -> usize {
        self.every
    }

    /// # Panics
    /// Panics when the write fails: losing snapshots silently would defeat
    /// the crash-safety the caller asked for.
    fn save(&mut self, state: ResumeState, obs: &mut dyn RoundObserver) {
        let round = state.next_round.saturating_sub(1) as u64;
        let ckpt = RunCheckpoint::new(self.algorithm.clone(), self.seed, state);
        let bytes = ckpt
            .save(&self.path)
            // LINT: allow(panic) documented contract (see `# Panics`):
            // silently losing snapshots would defeat the crash-safety the
            // caller asked for, and `CheckpointSink::save` has no error
            // channel by design — round loops stay ignorant of I/O.
            .unwrap_or_else(|e| panic!("run checkpoint save failed: {e}"));
        obs.on_event(&RoundEvent::CheckpointSaved {
            round,
            path: self.path.display().to_string(),
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_telemetry::MemoryObserver;

    fn sample_state() -> ResumeState {
        let m = |v: f32| Matrix::from_vec(2, 2, vec![v, v + 0.5, -v, 0.0]);
        ResumeState {
            next_round: 4,
            params: vec![vec![m(1.0), m(2.0)], vec![m(3.0), m(4.0)]],
            optim: vec![
                AdamState {
                    t: 4,
                    m: vec![m(0.1), m(0.2)],
                    v: vec![m(0.3), m(0.4)],
                },
                AdamState {
                    t: 4,
                    m: vec![m(0.5), m(0.6)],
                    v: vec![m(0.7), m(0.8)],
                },
            ],
            model_steps: vec![4, 4],
            driver: DriverState {
                history: vec![RoundStats {
                    round: 0,
                    train_loss: 1.25,
                    val_acc: 0.5,
                    test_acc: 0.5,
                }],
                best_val: 0.5,
                best_test: 0.5,
                best_round: 0,
                rounds_since_improve: 3,
                stopped: false,
                comms: CommsLog {
                    uplink_bytes: 1000,
                    downlink_bytes: 900,
                    stats_uplink_bytes: 50,
                    rounds: 4,
                    dropped_messages: 2,
                },
            },
            channel: ChannelState {
                seq: 42,
                stats: NetStats {
                    sent_frames: 40,
                    sent_bytes: 2000,
                    delivered_frames: 38,
                    delivered_bytes: 1900,
                    dropped_frames: 2,
                    retries: 1,
                },
            },
            global: Some(vec![m(9.0)]),
            stats: Some(StatsCache {
                means: vec![vec![0.25, -0.5]],
                moments: vec![vec![vec![0.1, 0.2], vec![0.3, 0.4]]],
            }),
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let ckpt = RunCheckpoint::new("FedOMD", 7, sample_state());
        let doc = Json::parse(&ckpt.to_json().to_compact()).expect("valid json");
        let back = RunCheckpoint::from_json(&doc).expect("decode");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn serialization_is_byte_identical_across_runs() {
        // Determinism regression guard: two independent serializations of
        // equal checkpoints must produce the exact same bytes. Field order
        // is fixed by construction (ordered `obj` tuples, never map
        // iteration order), so any unordered container sneaking into the
        // emission path shows up here as byte drift.
        let a = RunCheckpoint::new("FedOMD", 7, sample_state())
            .to_json()
            .to_compact();
        let b = RunCheckpoint::new("FedOMD", 7, sample_state())
            .to_json()
            .to_compact();
        assert_eq!(a.as_bytes(), b.as_bytes());

        // A decode → re-encode cycle must also reproduce the bytes.
        let re = RunCheckpoint::from_json(&Json::parse(&a).expect("valid json"))
            .expect("decode")
            .to_json()
            .to_compact();
        assert_eq!(re.as_bytes(), a.as_bytes());
    }

    #[test]
    fn neg_infinity_best_val_survives_the_sentinel_encoding() {
        // A checkpoint taken before the first eval carries -inf.
        let mut state = sample_state();
        state.driver.best_val = f64::NEG_INFINITY;
        state.driver.history.clear();
        let ckpt = RunCheckpoint::new("FedGCN", 1, state);
        let doc = Json::parse(&ckpt.to_json().to_compact()).unwrap();
        let back = RunCheckpoint::from_json(&doc).expect("decode");
        assert_eq!(back.state.driver.best_val, f64::NEG_INFINITY);
    }

    #[test]
    fn none_global_and_stats_roundtrip_as_null() {
        let mut state = sample_state();
        state.global = None;
        state.stats = None;
        let ckpt = RunCheckpoint::new("FedMLP", 0, state);
        let doc = Json::parse(&ckpt.to_json().to_compact()).unwrap();
        let back = RunCheckpoint::from_json(&doc).expect("decode");
        assert_eq!(back.state.global, None);
        assert_eq!(back.state.stats, None);
    }

    /// Per-process scratch dir: concurrent `cargo test` invocations must
    /// not race each other on a shared fixed path.
    fn scratch_dir() -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fedomd-run-ckpt-test-{}", std::process::id()))
    }

    #[test]
    fn file_roundtrip_and_overwrite() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.ckpt.json");
        let a = RunCheckpoint::new("FedOMD", 7, sample_state());
        a.save(&path).expect("save");
        let mut later = sample_state();
        later.next_round = 8;
        let b = RunCheckpoint::new("FedOMD", 7, later);
        b.save(&path).expect("overwrite");
        let back = RunCheckpoint::load(&path).expect("load");
        assert_eq!(back, b);
        assert!(!dir.join("run.ckpt.json.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_a_typed_parse_error() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("truncated.ckpt.json");
        let text = RunCheckpoint::new("FedOMD", 7, sample_state())
            .to_json()
            .to_compact();
        std::fs::write(&path, &text[..text.len() / 2]).expect("write");
        let err = RunCheckpoint::load(&path).expect_err("must fail");
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = RunCheckpoint::load("/nonexistent/fedomd/run.ckpt.json").expect_err("must fail");
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn wrong_format_and_version_are_mismatches() {
        let ckpt = RunCheckpoint::new("FedOMD", 7, sample_state());
        let mut doc = ckpt.to_json().to_compact();
        doc = doc.replacen(FORMAT, "something-else", 1);
        let err = RunCheckpoint::from_json(&Json::parse(&doc).unwrap()).expect_err("format");
        assert!(
            matches!(err, CheckpointError::Mismatch { ref what, .. } if what == "format"),
            "{err}"
        );

        let mut bad = ckpt.clone();
        bad.version = VERSION + 1;
        let err = RunCheckpoint::from_json(&Json::parse(&bad.to_json().to_compact()).unwrap())
            .expect_err("version");
        assert!(
            matches!(err, CheckpointError::Mismatch { ref what, .. } if what == "version"),
            "{err}"
        );
    }

    #[test]
    fn file_checkpointer_emits_checkpoint_saved() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sink.ckpt.json");
        let mut sink = FileCheckpointer::new(&path, 2, "FedOMD", 7);
        assert_eq!(sink.every(), 2);
        let mut mem = MemoryObserver::new();
        sink.save(sample_state(), &mut mem);
        assert_eq!(mem.count("checkpoint_saved"), 1);
        match &mem.events[0] {
            RoundEvent::CheckpointSaved {
                round,
                path: p,
                bytes,
            } => {
                assert_eq!(*round, 3, "next_round 4 covers rounds 0..=3");
                assert!(p.ends_with("sink.ckpt.json"));
                assert_eq!(*bytes, std::fs::metadata(&path).unwrap().len());
            }
            other => panic!("expected CheckpointSaved, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
