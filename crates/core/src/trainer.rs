//! The FedOMD training loop (Algorithm 1).
//!
//! Per communication round:
//!
//! 1. **Sample** the round's cohort ([`fedomd_federated::CohortConfig`]):
//!    a seeded, deterministic subset of clients participates; the rest sit
//!    the round out (FedAvg partial participation).
//! 2. **Forward** (cohort, parallel): each sampled client records its
//!    Ortho-GCN forward pass on a fresh tape, producing logits and the
//!    hidden activations `Z^1..Z^{L-1}` (line 3).
//! 3. **Exchange** (2 rounds, lines 4–18): activation means up, global
//!    means down; central moments about the global mean up, global moments
//!    down — giving every sampled client the CMD targets.
//! 4. **Optimise** (cohort, parallel, lines 19–20): total loss
//!    `CE + α·L_ortho + β·d_CMD` (Eq. 12), backward, Adam step.
//! 5. **FedAvg** (server, lines 26–29): uniform weight averaging. The
//!    aggregated model is broadcast to *all* clients — participants and
//!    spectators alike — so pooled evaluation always sees a synchronised
//!    federation.
//!
//! Every exchange (phases 3 and 5) travels as encoded `fedomd-transport`
//! frames over a [`Channel`], and the server never materialises the
//! O(clients × model) vector of payloads: each envelope is folded into a
//! streaming accumulator ([`crate::protocol::MeanAccumulator`] /
//! [`crate::protocol::MomentAccumulator`] /
//! [`fedomd_federated::UpdateAccumulator`]) as it is collected, so peak
//! server aggregation memory stays O(model) even at 1k–10k client
//! cohorts. With the default in-process channel the run is deterministic
//! per seed, while a simulated lossy channel degrades gracefully: a round
//! aggregates over whichever clients actually arrived, and a client that
//! misses the global statistics simply trains without the CMD term that
//! round.
//!
//! Every milestone — round starts, per-client local steps with the CE /
//! ortho / CMD loss decomposition, frame sends and drops, both statistics
//! rounds, aggregation, evaluation — is reported to a
//! [`RoundObserver`] (`fedomd-telemetry`). Observers are pure sinks, so
//! any observer yields the exact same `RunResult` as
//! [`fedomd_telemetry::NullObserver`] (golden-tested). The [`crate::FedRun`] builder is the entry point;
//! [`run_fedomd_observed`] / [`run_fedomd_resumable`] are the loop it
//! dispatches to.

use fedomd_metrics::Stopwatch;
use std::collections::BTreeMap;

use rayon::prelude::*;

use fedomd_autograd::{CmdTargets, Tape, Var, Workspace};
use fedomd_federated::engine::RoundDriver;
use fedomd_federated::helpers::UpdateAccumulator;
use fedomd_federated::pipeline::fold_in_order;
use fedomd_federated::{
    ClientData, Direction, Persistence, ResumeState, RunResult, StatsCache, TrafficClass,
    TrainConfig,
};
use fedomd_nn::{Adam, ForwardOut, Model, Optimizer};
use fedomd_telemetry::{ObservedChannel, Phase, PhaseStopwatch, RoundEvent, RoundObserver};
use fedomd_tensor::Matrix;
use fedomd_transport::{from_tensors, to_tensors, Channel, Envelope, Payload, SERVER_SENDER};

use crate::config::FedOmdConfig;
use crate::protocol::{
    build_targets, client_means, client_moments_about, GlobalStats, MeanAccumulator,
    MomentAccumulator,
};

/// Runs FedOMD with every statistics and weight exchange travelling as
/// encoded frames over `chan` and every round milestone reported to `obs`.
pub fn run_fedomd_observed(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    run_fedomd_resumable(
        clients,
        n_classes,
        cfg,
        omd,
        chan,
        obs,
        Persistence::default(),
    )
}

/// Folds one uplinked weight update into the streaming FedAvg accumulator.
fn fold_weight_update(agg: &mut UpdateAccumulator, env: Envelope) {
    match env.payload {
        Payload::WeightUpdate { params } => agg.push(&from_tensors(params), 1.0),
        // LINT: allow(panic) protocol invariant: every channel impl routes
        // only client uplink frames to `server_collect`, and FedOMD
        // clients upload nothing but `WeightUpdate` in the weight phase —
        // any other payload here is a routing bug that must fail loudly.
        // LINT: allow(msg-wildcard) same invariant: the wildcard cannot
        // swallow a frame, it panics naming the unexpected kind.
        other => panic!("server expected WeightUpdate, got {}", other.kind()),
    }
}

/// Reports each sampled client's Phase-3 loss decomposition to `obs`.
fn emit_local_steps(losses: &[Option<(f32, f32, f32, f32)>], obs: &mut dyn RoundObserver) {
    for (client, &(loss, ce, ortho, cmd)) in losses
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.as_ref().map(|l| (i, l)))
    {
        obs.on_event(&RoundEvent::LocalStepDone {
            client: client as u32,
            epoch: 0,
            loss: loss as f64,
            ce: ce as f64,
            ortho: ortho as f64,
            cmd: cmd as f64,
        });
    }
}

/// [`run_fedomd_observed`] with checkpoint/resume wiring: restores
/// `persist.resume` (per-client parameters, Adam moments, driver
/// bookkeeping, channel fault-stream cursor) before the loop, enters at
/// the restored round, and hands `persist.sink` a [`ResumeState`] snapshot
/// every `sink.every()` rounds — including the last aggregated global
/// model and global statistics, so a served checkpoint carries the full
/// round outcome. A resumed run is bit-identical to the same run left
/// uninterrupted: every RNG stream — including the cohort sampler — is
/// derived from `(seed, round)` or a checkpointed cursor, and snapshots
/// land on round boundaries where the channel has no frames in flight.
pub fn run_fedomd_resumable(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
    mut persist: Persistence<'_>,
) -> RunResult {
    assert!(!clients.is_empty(), "run_fedomd: no clients");
    let cohort = cfg.validate(clients.len());
    assert!(cohort.is_ok(), "run_fedomd: {}", cohort.unwrap_err());
    let f = clients[0].input.n_features();
    // Common global init (the server distributes W₀, paper Phase 1),
    // through the same constructor a standalone `fedomd-client` process
    // uses, so the two deployments cannot drift apart.
    let mut models: Vec<Box<dyn Model>> = clients
        .iter()
        .map(|_| crate::deploy::build_fedomd_model(cfg, omd, f, n_classes))
        .collect();
    let mut optimizers: Vec<Adam> = models
        .iter()
        .map(|_| Adam::new(cfg.lr, cfg.weight_decay))
        .collect();

    // The last aggregated global model / statistics, tracked only when a
    // sink wants snapshots (pure bookkeeping: never read by the loop).
    let track = persist.sink.is_some();
    let mut last_global: Option<Vec<Matrix>> = None;
    let mut last_stats: Option<StatsCache> = None;

    let mut driver;
    let start_round;
    if let Some(resume) = persist.resume.take() {
        assert_eq!(
            resume.params.len(),
            models.len(),
            "resume: checkpoint has {} clients, federation has {}",
            resume.params.len(),
            models.len()
        );
        for (mo, p) in models.iter_mut().zip(&resume.params) {
            mo.set_params(p);
        }
        // The Newton–Schulz cadence counts optimiser steps; restoring the
        // parameters without the counter would shift every later NS pass.
        for (mo, &steps) in models.iter_mut().zip(&resume.model_steps) {
            mo.set_steps(steps as usize);
        }
        for (opt, st) in optimizers.iter_mut().zip(resume.optim) {
            opt.set_state(st);
        }
        chan.restore_state(&resume.channel);
        last_global = resume.global;
        last_stats = resume.stats;
        driver = RoundDriver::resume(cfg, resume.driver);
        start_round = resume.next_round;
    } else {
        driver = RoundDriver::new(cfg);
        start_round = 0;
    }
    let m = clients.len();
    driver.announce("FedOMD", m, obs);
    if start_round > 0 {
        obs.on_event(&RoundEvent::Resumed {
            round: start_round as u64,
        });
    }
    let mut chan = ObservedChannel::new(chan);
    // One buffer pool per client, threaded through the forward tape and
    // the backward/step tape of every round the client is sampled into.
    let mut workspaces: Vec<Workspace> = models.iter().map(|_| Workspace::new()).collect();

    for round in start_round..cfg.rounds {
        // A checkpoint taken after early stopping resumes already-stopped.
        if driver.stopped() {
            break;
        }
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        // The round's cohort: pure function of (cohort seed, round), so a
        // resumed run replays the same participation schedule.
        let cohort = cfg.cohort.sample(round as u64, m);
        let mut in_cohort = vec![false; m];
        for &i in &cohort {
            in_cohort[i] = true;
        }

        // --- Phase 1: forward passes (cohort, parallel) ---
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let start = Stopwatch::start();
        let sessions: Vec<Option<(Tape, ForwardOut)>> = models
            .par_iter()
            .zip(clients.par_iter())
            .zip(workspaces.par_iter_mut())
            .zip(in_cohort.par_iter())
            .map(|(((model, client), ws), &active)| {
                if !active {
                    return None;
                }
                let mut tape = Tape::with_workspace(std::mem::take(ws));
                let out = model.forward(&mut tape, &client.input);
                Some((tape, out))
            })
            .collect();
        driver.timer.add("client", start.elapsed());
        sw.finish(obs);

        // --- Phase 2: the 2-round statistics exchange, over the channel ---
        // The server folds every envelope into a streaming accumulator as
        // it is collected; no per-client payload vector is materialised.
        let targets: Vec<Option<Vec<CmdTargets>>> = if omd.use_cmd {
            let sw = PhaseStopwatch::start(Phase::Comms);
            let start = Stopwatch::start();
            let per_client_hidden: Vec<Option<Vec<&Matrix>>> = sessions
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|(tape, out)| out.hidden.iter().map(|&h| tape.value(h)).collect())
                })
                .collect();
            let r = round as u64;

            // Round 1 up: per-layer means and the local sample count. Each
            // upload is collected and folded immediately, so the uplink
            // queue never holds more than one stats payload.
            // The server remembers each reporter's sample count: round-2
            // moments are weighted by the n_i announced in round 1.
            let mut round1_n: BTreeMap<u32, usize> = BTreeMap::new();
            let mut mean_acc = MeanAccumulator::new();
            for (i, h) in per_client_hidden.iter().enumerate() {
                let Some(h) = h else { continue };
                let bytes = chan.upload(Envelope {
                    round: r,
                    sender: i as u32,
                    payload: Payload::StatsRound1 {
                        means: client_means(h),
                        n_samples: h.first().map_or(0, |z| z.rows()) as u64,
                    },
                });
                driver
                    .comms
                    .record(Direction::Uplink, TrafficClass::Stats, bytes as u64);
                for env in chan.server_collect(r) {
                    if let Payload::StatsRound1 { means, n_samples } = env.payload {
                        // A malformed payload (impossible in-process:
                        // every client builds the same model shape)
                        // degrades exactly like a dropped frame.
                        if mean_acc.push(&means, n_samples as usize).is_ok() {
                            round1_n.insert(env.sender, n_samples as usize);
                        }
                    }
                }
            }
            chan.flush_into(obs);
            obs.on_event(&RoundEvent::StatsRound1Done {
                participants: mean_acc.pushed() as usize,
            });
            let global_means: Option<Vec<Vec<f32>>> = mean_acc.finish().ok();

            // Round 1 down: global means, to the cohort (moments are not
            // known yet, so the GlobalStats frame carries an empty moment
            // list).
            let mut client_gmeans: Vec<Option<Vec<Vec<f32>>>> = (0..m).map(|_| None).collect();
            if let Some(means) = &global_means {
                for &i in &cohort {
                    let bytes = chan.download(
                        i as u32,
                        Envelope {
                            round: r,
                            sender: SERVER_SENDER,
                            payload: Payload::GlobalStats {
                                means: means.clone(),
                                moments: Vec::new(),
                            },
                        },
                    );
                    driver
                        .comms
                        .record(Direction::Downlink, TrafficClass::Stats, bytes as u64);
                    for env in chan.client_collect(i as u32, r) {
                        if let Payload::GlobalStats { means, .. } = env.payload {
                            client_gmeans[i] = Some(means);
                        }
                    }
                }
            }
            chan.flush_into(obs);

            // Round 2 up: central moments about the global mean, folded on
            // arrival. A client that never received the means sits this
            // round out.
            let mut moment_acc = MomentAccumulator::new();
            for (i, h) in per_client_hidden.iter().enumerate() {
                let Some(h) = h else { continue };
                let Some(means) = &client_gmeans[i] else {
                    continue;
                };
                let bytes = chan.upload(Envelope {
                    round: r,
                    sender: i as u32,
                    payload: Payload::StatsRound2 {
                        moments: client_moments_about(h, means, omd.max_moment),
                    },
                });
                driver
                    .comms
                    .record(Direction::Uplink, TrafficClass::Stats, bytes as u64);
                for env in chan.server_collect(r) {
                    if let Payload::StatsRound2 { moments } = env.payload {
                        if let Some(&n) = round1_n.get(&env.sender) {
                            let _ok = moment_acc.push(&moments, n).is_ok();
                        }
                    }
                }
            }
            chan.flush_into(obs);
            obs.on_event(&RoundEvent::StatsRound2Done {
                participants: moment_acc.pushed() as usize,
            });

            // Round 2 down: the full global stats, to the cohort; each
            // client that receives them builds its CMD targets, the rest
            // train without the term.
            let mut per_client: Vec<Option<Vec<CmdTargets>>> = (0..m).map(|_| None).collect();
            if let Some(means) = &global_means {
                if let Ok(moments) = moment_acc.finish() {
                    if track {
                        last_stats = Some(StatsCache {
                            means: means.clone(),
                            moments: moments.clone(),
                        });
                    }
                    for &i in &cohort {
                        let bytes = chan.download(
                            i as u32,
                            Envelope {
                                round: r,
                                sender: SERVER_SENDER,
                                payload: Payload::GlobalStats {
                                    means: means.clone(),
                                    moments: moments.clone(),
                                },
                            },
                        );
                        driver
                            .comms
                            .record(Direction::Downlink, TrafficClass::Stats, bytes as u64);
                        for env in chan.client_collect(i as u32, r) {
                            if let Payload::GlobalStats { means, moments } = env.payload {
                                per_client[i] =
                                    Some(build_targets(&GlobalStats { means, moments }));
                            }
                        }
                    }
                }
            }
            chan.flush_into(obs);
            driver.timer.add("server", start.elapsed());
            sw.finish(obs);
            per_client
        } else {
            (0..m).map(|_| None).collect()
        };

        // --- Phase 3: losses, backward, local steps (cohort, parallel) ---
        // One sampled client's backward/step turn, shared verbatim between
        // the phase-sequential sweep and the pipelined overlap sweep so
        // the two paths compute identical bits. Returns the (total, ce,
        // scaled ortho, scaled cmd) loss readings.
        let optimise_client = |session: (Tape, ForwardOut),
                               model: &mut Box<dyn Model>,
                               opt: &mut Adam,
                               client: &ClientData,
                               targets_ref: &Option<Vec<CmdTargets>>,
                               ws: &mut Workspace|
         -> (f32, f32, f32, f32) {
            let (mut tape, out) = session;
            let ce = tape.softmax_cross_entropy(out.logits, &client.labels, &client.splits.train);
            let mut loss = ce;
            let mut ortho_term: Option<Var> = None;
            if omd.use_ortho {
                if let Some(pen) = sum_terms(&mut tape, out.ortho_weight_vars.to_vec(), |t, w| {
                    t.ortho_penalty(w)
                }) {
                    let scaled = tape.scale(pen, omd.alpha);
                    ortho_term = Some(scaled);
                    loss = tape.add(loss, scaled);
                }
            }
            let mut cmd_term: Option<Var> = None;
            if let Some(targets) = targets_ref {
                let n_constrained = if omd.cmd_first_layer_only {
                    1
                } else {
                    out.hidden.len()
                };
                if let Some(cmd) = sum_cmd(
                    &mut tape,
                    &out.hidden[..n_constrained],
                    &targets[..n_constrained],
                    omd.width,
                    omd.cmd_mean_scale,
                ) {
                    let scaled = tape.scale(cmd, omd.beta);
                    cmd_term = Some(scaled);
                    loss = tape.add(loss, scaled);
                }
            }
            tape.backward(loss);

            let grads: Vec<Matrix> = out
                .param_vars
                .iter()
                .map(|&v| tape.grad_or_zeros(v))
                .collect();
            let mut params = model.params();
            opt.step(&mut params, &grads);
            model.set_params(&params);
            model.post_step();
            for g in grads {
                tape.recycle_matrix(g);
            }
            for p in params {
                tape.recycle_matrix(p);
            }
            let scalars = (
                tape.scalar(loss),
                tape.scalar(ce),
                ortho_term.map_or(0.0, |v| tape.scalar(v)),
                cmd_term.map_or(0.0, |v| tape.scalar(v)),
            );
            *ws = tape.recycle();
            scalars
        };

        // Per sampled client: (total, ce, scaled ortho, scaled cmd) loss
        // readings; `None` for clients outside the cohort.
        let losses: Vec<Option<(f32, f32, f32, f32)>>;
        let mut piped_agg: Option<UpdateAccumulator> = None;
        if cfg.pipeline.enabled {
            // Pipelined Phase 3→4: each rayon worker hands its freshly
            // stepped parameters to the fold thread the moment it leaves
            // `optimise_client`, and the fold thread performs the same
            // upload → collect → fold channel call sequence, in the same
            // ascending cohort order, as the sequential Phase 4 below —
            // so the aggregate is bit-identical and only the wall-clock
            // overlaps.
            let cohort_ids: Vec<u32> = cohort.iter().map(|&i| i as u32).collect();
            let sw = PhaseStopwatch::start(Phase::FoldOverlap);
            let start = Stopwatch::start();
            let comms = &mut driver.comms;
            let chan_ref = &mut chan;
            let (agg, piped_losses) = fold_in_order(
                &cohort_ids,
                UpdateAccumulator::new(),
                |agg: &mut UpdateAccumulator, id, params| {
                    let bytes = chan_ref.upload(Envelope {
                        round: round as u64,
                        sender: id,
                        payload: Payload::WeightUpdate { params },
                    });
                    comms.record(Direction::Uplink, TrafficClass::Weights, bytes as u64);
                    for env in chan_ref.server_collect(round as u64) {
                        fold_weight_update(agg, env);
                    }
                },
                |tx| -> Vec<Option<(f32, f32, f32, f32)>> {
                    sessions
                        .into_par_iter()
                        .zip(models.par_iter_mut())
                        .zip(optimizers.par_iter_mut())
                        .zip(clients.par_iter())
                        .zip(targets.par_iter())
                        .zip(workspaces.par_iter_mut())
                        .enumerate()
                        .map(
                            |(i, (((((session, model), opt), client), targets_ref), ws))| {
                                let session = session?;
                                let scalars =
                                    optimise_client(session, model, opt, client, targets_ref, ws);
                                // LINT: allow(panic) the fold thread provably
                                // outlives the optimise sweep (scoped thread,
                                // drains the channel until all senders drop), so
                                // a send failure is unreachable; propagating it
                                // as a panic beats silently losing an update.
                                tx.send((i as u32, to_tensors(&model.params())))
                                    .expect("fold thread outlives the optimise sweep");
                                Some(scalars)
                            },
                        )
                        .collect()
                },
            );
            piped_agg = Some(agg);
            losses = piped_losses;
            driver.timer.add("client", start.elapsed());
            emit_local_steps(&losses, obs);
            sw.finish(obs);
        } else {
            let sw = PhaseStopwatch::start(Phase::LocalTrain);
            let start = Stopwatch::start();
            losses = sessions
                .into_par_iter()
                .zip(models.par_iter_mut())
                .zip(optimizers.par_iter_mut())
                .zip(clients.par_iter())
                .zip(targets.par_iter())
                .zip(workspaces.par_iter_mut())
                .map(|(((((session, model), opt), client), targets_ref), ws)| {
                    let session = session?;
                    Some(optimise_client(
                        session,
                        model,
                        opt,
                        client,
                        targets_ref,
                        ws,
                    ))
                })
                .collect();
            driver.timer.add("client", start.elapsed());
            emit_local_steps(&losses, obs);
            sw.finish(obs);
        }

        // --- Phase 4: FedAvg over the channel (partial under faults) ---
        // Interleaved upload → collect → fold: the uplink queue holds at
        // most one weight update at a time and the accumulator keeps
        // AGG_LANES f64 partials, so server aggregation memory is
        // O(model) regardless of cohort size. On the pipelined path the
        // whole interleave already ran during the overlap; only the
        // straggler drain below remains.
        let start = Stopwatch::start();
        let sw = PhaseStopwatch::start(Phase::Comms);
        let mut agg = piped_agg.take().unwrap_or_default();
        if !cfg.pipeline.enabled {
            for (i, mo) in models.iter().enumerate() {
                if !in_cohort[i] {
                    continue;
                }
                let bytes = chan.upload(Envelope {
                    round: round as u64,
                    sender: i as u32,
                    payload: Payload::WeightUpdate {
                        params: to_tensors(&mo.params()),
                    },
                });
                driver
                    .comms
                    .record(Direction::Uplink, TrafficClass::Weights, bytes as u64);
                for env in chan.server_collect(round as u64) {
                    fold_weight_update(&mut agg, env);
                }
            }
        }
        // Straggler drain: both in-process channels resolve every pending
        // frame at the first collect after its upload, but a buffering
        // channel impl may surface late arrivals here.
        for env in chan.server_collect(round as u64) {
            fold_weight_update(&mut agg, env);
        }
        chan.flush_into(obs);
        sw.finish(obs);
        let participants = agg.pushed();
        let sw = PhaseStopwatch::start(Phase::Aggregation);
        let global = agg.finish();
        sw.finish(obs);
        if let Some(global) = global {
            if track {
                last_global = Some(global.clone());
            }
            obs.on_event(&RoundEvent::AggregationDone { participants });
            let sw = PhaseStopwatch::start(Phase::Comms);
            // Broadcast to every client — spectators included — so the
            // federation stays synchronised for pooled evaluation.
            for (i, mo) in models.iter_mut().enumerate() {
                let bytes = chan.download(
                    i as u32,
                    Envelope {
                        round: round as u64,
                        sender: SERVER_SENDER,
                        payload: Payload::GlobalModel {
                            params: to_tensors(&global),
                        },
                    },
                );
                driver
                    .comms
                    .record(Direction::Downlink, TrafficClass::Weights, bytes as u64);
                for env in chan.client_collect(i as u32, round as u64) {
                    if let Payload::GlobalModel { params } = env.payload {
                        mo.set_params(&from_tensors(params));
                    }
                }
            }
            chan.flush_into(obs);
            sw.finish(obs);
        } else {
            obs.on_event(&RoundEvent::AggregationDone { participants: 0 });
        }
        driver.comms.sync_dropped(chan.stats().dropped_frames);
        driver.timer.add("server", start.elapsed());

        let active: Vec<f64> = losses
            .iter()
            .filter_map(|l| l.map(|(loss, ..)| loss as f64))
            .collect();
        let mean_loss = if active.is_empty() {
            f64::NAN
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        };
        driver.end_round_observed(round, mean_loss, &models, clients, obs);
        if let Some(sink) = persist.sink.as_mut() {
            if sink.every() > 0 && (round + 1).is_multiple_of(sink.every()) {
                let state = ResumeState {
                    next_round: round + 1,
                    params: models.iter().map(|mo| mo.params()).collect(),
                    optim: optimizers.iter().map(Adam::state).collect(),
                    model_steps: models.iter().map(|mo| mo.steps() as u64).collect(),
                    driver: driver.snapshot(),
                    channel: chan.export_state(),
                    global: last_global.clone(),
                    stats: last_stats.clone(),
                };
                sink.save(state, obs);
            }
        }
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed("FedOMD", obs)
}

/// Sums `make(tape, v)` over `vars` on the tape (None when empty).
/// Shared with the multi-process client loop (`crate::client_loop`), whose
/// Phase-3 objective must be term-for-term the one built here.
pub(crate) fn sum_terms(
    tape: &mut Tape,
    vars: Vec<Var>,
    make: impl Fn(&mut Tape, Var) -> Var,
) -> Option<Var> {
    let mut acc: Option<Var> = None;
    for v in vars {
        let term = make(tape, v);
        acc = Some(match acc {
            None => term,
            Some(a) => tape.add(a, term),
        });
    }
    acc
}

/// Sums the per-layer CMD losses (Algorithm 1 line 19's `Σ_l`).
/// Shared with the multi-process client loop (`crate::client_loop`).
pub(crate) fn sum_cmd(
    tape: &mut Tape,
    hidden: &[Var],
    targets: &[CmdTargets],
    width: f32,
    mean_scale: f32,
) -> Option<Var> {
    assert_eq!(hidden.len(), targets.len(), "sum_cmd: layer arity mismatch");
    let mut acc: Option<Var> = None;
    for (&h, t) in hidden.iter().zip(targets) {
        let term = tape.cmd_loss_weighted(h, t, width, mean_scale);
        acc = Some(match acc {
            None => term,
            Some(a) => tape.add(a, term),
        });
    }
    acc
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::FedRun;
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_federated::{setup_federation, CohortConfig, FederationConfig};

    fn mini_clients(m: usize, seed: u64) -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), seed);
        (
            setup_federation(&ds, &FederationConfig::mini(m, seed)),
            ds.n_classes,
        )
    }

    fn quick_cfg(seed: u64) -> TrainConfig {
        TrainConfig {
            rounds: 40,
            patience: 30,
            ..TrainConfig::mini(seed)
        }
    }

    fn run(clients: &[ClientData], k: usize, cfg: &TrainConfig, omd: &FedOmdConfig) -> RunResult {
        FedRun::new(clients, k).train(cfg.clone()).omd(*omd).run()
    }

    fn run_over(
        clients: &[ClientData],
        k: usize,
        cfg: &TrainConfig,
        omd: &FedOmdConfig,
        chan: &mut dyn Channel,
    ) -> RunResult {
        FedRun::new(clients, k)
            .train(cfg.clone())
            .omd(*omd)
            .channel(chan)
            .run()
    }

    #[test]
    fn fedomd_learns_above_chance() {
        let (clients, k) = mini_clients(3, 0);
        let r = run(&clients, k, &quick_cfg(0), &FedOmdConfig::paper());
        assert!(
            r.test_acc > 1.5 / k as f64,
            "accuracy {} too low",
            r.test_acc
        );
        assert!(r.improved(), "no improvement over initial accuracy");
        assert_eq!(r.algorithm, "FedOMD");
    }

    #[test]
    fn stats_traffic_is_negligible_fraction() {
        // The paper's Table 3 claim: the CMD statistics cost `Nf`-ish
        // uplink versus `f²`-ish for weights — a tiny fraction.
        let (clients, k) = mini_clients(3, 1);
        let mut cfg = quick_cfg(1);
        cfg.rounds = 5;
        let r = run(&clients, k, &cfg, &FedOmdConfig::paper());
        assert!(r.comms.stats_uplink_bytes > 0);
        assert!(
            r.comms.stats_fraction() < 0.15,
            "stats are {}% of uplink — not negligible",
            100.0 * r.comms.stats_fraction()
        );
    }

    #[test]
    fn ablations_run_and_produce_finite_accuracy() {
        let (clients, k) = mini_clients(3, 2);
        let mut cfg = quick_cfg(2);
        cfg.rounds = 12;
        for omd in [
            FedOmdConfig::paper(),
            FedOmdConfig::ortho_only(),
            FedOmdConfig::cmd_only(),
            FedOmdConfig {
                use_ortho: false,
                use_cmd: false,
                ..FedOmdConfig::paper()
            },
        ] {
            let r = run(&clients, k, &cfg, &omd);
            assert!(r.test_acc.is_finite());
            assert!((0.0..=1.0).contains(&r.test_acc));
        }
    }

    #[test]
    fn stats_cost_vanishes_as_the_model_grows() {
        // The Table 3 asymptotics, measured on real encoded frames: the
        // statistics uplink is O(L·d) per client per round (5 vectors of
        // dimension d per hidden layer) while the weight uplink is O(d²),
        // so the stats fraction must shrink as the hidden dim grows — at
        // the paper's scale (f = 1433, d = 64) it is well under a percent.
        let (clients, k) = mini_clients(3, 1);
        let ratio_at = |hidden: usize| {
            let cfg = TrainConfig {
                rounds: 2,
                patience: 30,
                hidden_dim: hidden,
                ..TrainConfig::mini(1)
            };
            let r = run(&clients, k, &cfg, &FedOmdConfig::paper());
            let weight_bytes = r.comms.uplink_bytes - r.comms.stats_uplink_bytes;
            r.comms.stats_uplink_bytes as f64 / weight_bytes as f64
        };
        let small = ratio_at(16);
        let large = ratio_at(64);
        assert!(
            small < 0.10,
            "stats are {:.1}% of weight uplink at d=16",
            100.0 * small
        );
        assert!(
            large < 0.07,
            "stats are {:.1}% of weight uplink at d=64",
            100.0 * large
        );
        assert!(large < small, "stats fraction must shrink with model size");
    }

    #[test]
    fn faultless_simnet_matches_inproc_bit_for_bit() {
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (clients, k) = mini_clients(2, 6);
        let mut cfg = quick_cfg(6);
        cfg.rounds = 8;
        let a = run(&clients, k, &cfg, &FedOmdConfig::paper());
        let mut sim = SimNetChannel::new(FaultConfig::default());
        let b = run_over(&clients, k, &cfg, &FedOmdConfig::paper(), &mut sim);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.history, b.history);
        assert_eq!(a.comms, b.comms);
        assert_eq!(b.comms.dropped_messages, 0);
    }

    #[test]
    fn lossy_network_degrades_gracefully_and_replays() {
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (clients, k) = mini_clients(3, 7);
        let mut cfg = quick_cfg(7);
        cfg.rounds = 25;
        let fault = FaultConfig {
            seed: 9,
            drop_prob: 0.2,
            max_retries: 1,
            ..Default::default()
        };
        let run_lossy = |fault: FaultConfig| {
            let mut sim = SimNetChannel::new(fault);
            run_over(&clients, k, &cfg, &FedOmdConfig::paper(), &mut sim)
        };
        let r = run_lossy(fault.clone());
        // Drops hit every exchange: stats rounds degrade to CMD-less
        // training for the affected clients, FedAvg degrades to partial
        // aggregation — and the run still converges sanely.
        assert!(
            r.comms.dropped_messages > 0,
            "20% loss over 25 rounds must drop something"
        );
        assert!(r.test_acc.is_finite());
        assert!(
            r.test_acc > 1.0 / k as f64,
            "accuracy {} at or below chance",
            r.test_acc
        );
        let r2 = run_lossy(fault);
        assert_eq!(
            r.test_acc, r2.test_acc,
            "same fault seed must replay identically"
        );
        assert_eq!(r.comms, r2.comms);
    }

    #[test]
    fn no_cmd_means_no_stats_traffic() {
        let (clients, k) = mini_clients(2, 3);
        let mut cfg = quick_cfg(3);
        cfg.rounds = 4;
        let r = run(&clients, k, &cfg, &FedOmdConfig::ortho_only());
        assert_eq!(r.comms.stats_uplink_bytes, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (clients, k) = mini_clients(2, 4);
        let mut cfg = quick_cfg(4);
        cfg.rounds = 8;
        let a = run(&clients, k, &cfg, &FedOmdConfig::paper());
        let b = run(&clients, k, &cfg, &FedOmdConfig::paper());
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.comms, b.comms);
    }

    #[test]
    fn deeper_stacks_run() {
        let (clients, k) = mini_clients(2, 5);
        let mut cfg = quick_cfg(5);
        cfg.rounds = 6;
        let omd = FedOmdConfig {
            hidden_layers: 4,
            ..FedOmdConfig::paper()
        };
        let r = run(&clients, k, &cfg, &omd);
        assert!(r.test_acc.is_finite());
    }

    #[test]
    fn sampled_cohort_trains_subset_and_stays_synchronised() {
        use fedomd_telemetry::MemoryObserver;
        let (clients, k) = mini_clients(4, 8);
        let mut cfg = quick_cfg(8);
        cfg.rounds = 4;
        cfg.patience = 40;
        cfg.cohort = CohortConfig::fraction(0.5, 21);
        let mut mem = MemoryObserver::new();
        let r = FedRun::new(&clients, k)
            .train(cfg.clone())
            .omd(FedOmdConfig::paper())
            .observer(&mut mem)
            .run();
        // Exactly the sampled half of the federation trains each round...
        assert_eq!(mem.count("local_step_done"), 4 * 2);
        assert!(r.test_acc.is_finite());

        // ...and uplink traffic shrinks accordingly versus full
        // participation (2 of 4 uploads per round).
        let full_cfg = TrainConfig {
            cohort: CohortConfig::full(),
            ..cfg.clone()
        };
        let full = run(&clients, k, &full_cfg, &FedOmdConfig::paper());
        assert!(
            r.comms.uplink_bytes < full.comms.uplink_bytes,
            "sampling must cut uplink traffic: {} vs {}",
            r.comms.uplink_bytes,
            full.comms.uplink_bytes
        );
    }

    #[test]
    fn pipelined_fedomd_matches_sequential_bit_for_bit() {
        use fedomd_federated::PipelineConfig;
        let (clients, k) = mini_clients(4, 10);
        let mut cfg = quick_cfg(10);
        cfg.rounds = 8;
        for cohort in [CohortConfig::full(), CohortConfig::fraction(0.5, 11)] {
            cfg.cohort = cohort;
            let seq = run(&clients, k, &cfg, &FedOmdConfig::paper());
            let piped = run(
                &clients,
                k,
                &TrainConfig {
                    pipeline: PipelineConfig::on(),
                    ..cfg.clone()
                },
                &FedOmdConfig::paper(),
            );
            // The overlap replays the sequential Phase-4 channel calls in
            // the same ascending order, so every artefact agrees exactly.
            assert_eq!(seq.test_acc, piped.test_acc);
            assert_eq!(seq.val_acc, piped.val_acc);
            assert_eq!(seq.best_round, piped.best_round);
            assert_eq!(seq.history, piped.history);
            assert_eq!(seq.comms, piped.comms);
        }
    }

    #[test]
    fn pipelined_fedomd_matches_sequential_under_faults() {
        use fedomd_federated::PipelineConfig;
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (clients, k) = mini_clients(3, 11);
        let mut cfg = quick_cfg(11);
        cfg.rounds = 15;
        let fault = FaultConfig {
            seed: 9,
            drop_prob: 0.2,
            max_retries: 1,
            ..Default::default()
        };
        let run_with = |cfg: &TrainConfig| {
            let mut sim = SimNetChannel::new(fault.clone());
            run_over(&clients, k, cfg, &FedOmdConfig::paper(), &mut sim)
        };
        let seq = run_with(&cfg);
        let piped = run_with(&TrainConfig {
            pipeline: PipelineConfig::on(),
            ..cfg.clone()
        });
        // Identical channel calls in identical order ⇒ the same fault
        // stream decisions, so a straggler-degraded partial round replays
        // exactly too.
        assert!(seq.comms.dropped_messages > 0, "fault config must bite");
        assert_eq!(seq.test_acc, piped.test_acc);
        assert_eq!(seq.history, piped.history);
        assert_eq!(seq.comms, piped.comms);
    }

    #[test]
    fn sampled_runs_replay_per_cohort_seed() {
        let (clients, k) = mini_clients(4, 9);
        let mut cfg = quick_cfg(9);
        cfg.rounds = 6;
        cfg.cohort = CohortConfig::fraction(0.5, 5);
        let a = run(&clients, k, &cfg, &FedOmdConfig::paper());
        let b = run(&clients, k, &cfg, &FedOmdConfig::paper());
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.history, b.history);
        assert_eq!(a.comms, b.comms);
        // A different sampling seed draws different cohorts → different
        // traffic pattern is possible but the run still completes.
        cfg.cohort.seed = 6;
        let c = run(&clients, k, &cfg, &FedOmdConfig::paper());
        assert!(c.test_acc.is_finite());
    }
}
