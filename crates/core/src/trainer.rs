//! The FedOMD training loop (Algorithm 1).
//!
//! Per communication round:
//!
//! 1. **Forward** (clients, parallel): each client records its Ortho-GCN
//!    forward pass on a fresh tape, producing logits and the hidden
//!    activations `Z^1..Z^{L-1}` (line 3).
//! 2. **Exchange** (2 rounds, lines 4–18): activation means up, global
//!    means down; central moments about the global mean up, global moments
//!    down — giving every client the CMD targets.
//! 3. **Optimise** (clients, parallel, lines 19–20): total loss
//!    `CE + α·L_ortho + β·d_CMD` (Eq. 12), backward, Adam step.
//! 4. **FedAvg** (server, lines 26–29): uniform weight averaging.

use std::time::Instant;

use rayon::prelude::*;

use fedomd_autograd::{CmdTargets, Tape, Var};
use fedomd_federated::engine::RoundDriver;
use fedomd_federated::helpers::fedavg;
use fedomd_federated::{ClientData, RunResult, TrainConfig};
use fedomd_nn::{Adam, ForwardOut, Model, Optimizer, OrthoGcn, OrthoGcnConfig};
use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::Matrix;

use crate::config::FedOmdConfig;
use crate::protocol::{build_targets, exchange};

/// Runs FedOMD to completion on a prepared federation.
pub fn run_fedomd(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
) -> RunResult {
    assert!(!clients.is_empty(), "run_fedomd: no clients");
    let f = clients[0].input.n_features();
    let ocfg = OrthoGcnConfig {
        in_dim: f,
        hidden_dim: cfg.hidden_dim,
        out_dim: n_classes,
        hidden_layers: omd.hidden_layers,
        ns_interval: 10,
        ns_iters: 3,
    };
    // Common global init (the server distributes W₀, paper Phase 1).
    let mut models: Vec<Box<dyn Model>> = clients
        .iter()
        .map(|_| {
            Box::new(OrthoGcn::new(ocfg, &mut seeded(derive(cfg.seed, 0xF000)))) as Box<dyn Model>
        })
        .collect();
    let mut optimizers: Vec<Adam> =
        models.iter().map(|_| Adam::new(cfg.lr, cfg.weight_decay)).collect();

    let mut driver = RoundDriver::new(cfg);
    let n_scalars = models[0].n_scalars();
    let m = clients.len();

    for round in 0..cfg.rounds {
        // --- Phase 1: forward passes (parallel) ---
        let start = Instant::now();
        let mut sessions: Vec<(Tape, ForwardOut)> = models
            .par_iter()
            .zip(clients.par_iter())
            .map(|(model, client)| {
                let mut tape = Tape::new();
                let out = model.forward(&mut tape, &client.input);
                (tape, out)
            })
            .collect();
        driver.timer.add("client", start.elapsed());

        // --- Phase 2: the 2-round statistics exchange ---
        let targets: Option<Vec<CmdTargets>> = if omd.use_cmd {
            let start = Instant::now();
            let per_client_hidden: Vec<Vec<&Matrix>> = sessions
                .iter()
                .map(|(tape, out)| out.hidden.iter().map(|&h| tape.value(h)).collect())
                .collect();
            let stats = exchange(&per_client_hidden, omd.max_moment);
            driver.timer.add("server", start.elapsed());

            let scalars_per_client = stats.uplink_scalars();
            for _ in 0..m {
                // Round 1 up (means + n_i) / down (global means); round 2
                // up (moments) / down (global moments).
                driver.comms.upload_stats(scalars_per_client + 1);
                driver.comms.download_stats(scalars_per_client);
            }
            Some(build_targets(&stats))
        } else {
            None
        };

        // --- Phase 3: losses, backward, local steps (parallel) ---
        let start = Instant::now();
        let targets_ref = &targets;
        let losses: Vec<f32> = sessions
            .par_iter_mut()
            .zip(models.par_iter_mut())
            .zip(optimizers.par_iter_mut())
            .zip(clients.par_iter())
            .map(|((((tape, out), model), opt), client)| {
                let mut loss =
                    tape.softmax_cross_entropy(out.logits, &client.labels, &client.splits.train);
                if omd.use_ortho {
                    if let Some(pen) = sum_terms(
                        tape,
                        out.ortho_weight_vars.to_vec(),
                        |t, w| t.ortho_penalty(w),
                    ) {
                        let scaled = tape.scale(pen, omd.alpha);
                        loss = tape.add(loss, scaled);
                    }
                }
                if let Some(targets) = targets_ref {
                    let n_constrained =
                        if omd.cmd_first_layer_only { 1 } else { out.hidden.len() };
                    if let Some(cmd) = sum_cmd(
                        tape,
                        &out.hidden[..n_constrained],
                        &targets[..n_constrained],
                        omd.width,
                        omd.cmd_mean_scale,
                    ) {
                        let scaled = tape.scale(cmd, omd.beta);
                        loss = tape.add(loss, scaled);
                    }
                }
                tape.backward(loss);

                let grads: Vec<Matrix> = out
                    .param_vars
                    .iter()
                    .map(|&v| {
                        tape.grad(v).cloned().unwrap_or_else(|| {
                            let val = tape.value(v);
                            Matrix::zeros(val.rows(), val.cols())
                        })
                    })
                    .collect();
                let mut params = model.params();
                opt.step(&mut params, &grads);
                model.set_params(&params);
                model.post_step();
                tape.scalar(loss)
            })
            .collect();
        driver.timer.add("client", start.elapsed());

        // --- Phase 4: FedAvg ---
        let start = Instant::now();
        let sets: Vec<Vec<Matrix>> = models.iter().map(|mo| mo.params()).collect();
        let global = fedavg(&sets, &vec![1.0; m]);
        for mo in models.iter_mut() {
            mo.set_params(&global);
        }
        driver.timer.add("server", start.elapsed());
        for _ in 0..m {
            driver.comms.upload_weights(n_scalars);
            driver.comms.download_weights(n_scalars);
        }

        let mean_loss = losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64;
        driver.end_round(round, mean_loss, &models, clients);
        if driver.stopped() {
            break;
        }
    }
    driver.finish("FedOMD")
}

/// Sums `make(tape, v)` over `vars` on the tape (None when empty).
fn sum_terms(
    tape: &mut Tape,
    vars: Vec<Var>,
    make: impl Fn(&mut Tape, Var) -> Var,
) -> Option<Var> {
    let mut acc: Option<Var> = None;
    for v in vars {
        let term = make(tape, v);
        acc = Some(match acc {
            None => term,
            Some(a) => tape.add(a, term),
        });
    }
    acc
}

/// Sums the per-layer CMD losses (Algorithm 1 line 19's `Σ_l`).
fn sum_cmd(
    tape: &mut Tape,
    hidden: &[Var],
    targets: &[CmdTargets],
    width: f32,
    mean_scale: f32,
) -> Option<Var> {
    assert_eq!(hidden.len(), targets.len(), "sum_cmd: layer arity mismatch");
    let mut acc: Option<Var> = None;
    for (&h, t) in hidden.iter().zip(targets) {
        let term = tape.cmd_loss_weighted(h, t, width, mean_scale);
        acc = Some(match acc {
            None => term,
            Some(a) => tape.add(a, term),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_federated::{setup_federation, FederationConfig};

    fn mini_clients(m: usize, seed: u64) -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), seed);
        (setup_federation(&ds, &FederationConfig::mini(m, seed)), ds.n_classes)
    }

    fn quick_cfg(seed: u64) -> TrainConfig {
        TrainConfig { rounds: 40, patience: 30, ..TrainConfig::mini(seed) }
    }

    #[test]
    fn fedomd_learns_above_chance() {
        let (clients, k) = mini_clients(3, 0);
        let r = run_fedomd(&clients, k, &quick_cfg(0), &FedOmdConfig::paper());
        assert!(r.test_acc > 1.5 / k as f64, "accuracy {} too low", r.test_acc);
        assert!(r.improved(), "no improvement over initial accuracy");
        assert_eq!(r.algorithm, "FedOMD");
    }

    #[test]
    fn stats_traffic_is_negligible_fraction() {
        // The paper's Table 3 claim: the CMD statistics cost `Nf`-ish
        // uplink versus `f²`-ish for weights — a tiny fraction.
        let (clients, k) = mini_clients(3, 1);
        let mut cfg = quick_cfg(1);
        cfg.rounds = 5;
        let r = run_fedomd(&clients, k, &cfg, &FedOmdConfig::paper());
        assert!(r.comms.stats_uplink_bytes > 0);
        assert!(
            r.comms.stats_fraction() < 0.15,
            "stats are {}% of uplink — not negligible",
            100.0 * r.comms.stats_fraction()
        );
    }

    #[test]
    fn ablations_run_and_produce_finite_accuracy() {
        let (clients, k) = mini_clients(3, 2);
        let mut cfg = quick_cfg(2);
        cfg.rounds = 12;
        for omd in [
            FedOmdConfig::paper(),
            FedOmdConfig::ortho_only(),
            FedOmdConfig::cmd_only(),
            FedOmdConfig { use_ortho: false, use_cmd: false, ..FedOmdConfig::paper() },
        ] {
            let r = run_fedomd(&clients, k, &cfg, &omd);
            assert!(r.test_acc.is_finite());
            assert!((0.0..=1.0).contains(&r.test_acc));
        }
    }

    #[test]
    fn no_cmd_means_no_stats_traffic() {
        let (clients, k) = mini_clients(2, 3);
        let mut cfg = quick_cfg(3);
        cfg.rounds = 4;
        let r = run_fedomd(&clients, k, &cfg, &FedOmdConfig::ortho_only());
        assert_eq!(r.comms.stats_uplink_bytes, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (clients, k) = mini_clients(2, 4);
        let mut cfg = quick_cfg(4);
        cfg.rounds = 8;
        let a = run_fedomd(&clients, k, &cfg, &FedOmdConfig::paper());
        let b = run_fedomd(&clients, k, &cfg, &FedOmdConfig::paper());
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.comms, b.comms);
    }

    #[test]
    fn deeper_stacks_run() {
        let (clients, k) = mini_clients(2, 5);
        let mut cfg = quick_cfg(5);
        cfg.rounds = 6;
        let omd = FedOmdConfig { hidden_layers: 4, ..FedOmdConfig::paper() };
        let r = run_fedomd(&clients, k, &cfg, &omd);
        assert!(r.test_acc.is_finite());
    }
}
