//! FedOMD hyper-parameters (paper §4.5, §5.1).

/// Hyper-parameters of FedOMD's objective and model.
#[derive(Clone, Copy, Debug)]
pub struct FedOmdConfig {
    /// Weight of the orthogonality penalty (paper: `α = 0.0005`).
    pub alpha: f32,
    /// Weight of the CMD term (paper: `β = 10`).
    pub beta: f32,
    /// The assumed activation range `b − a` in Eq. 11 (ReLU activations of
    /// row-normalised features stay within ~[0, 1], so 1.0).
    pub width: f32,
    /// Highest central-moment order exchanged (paper Algorithm 1: 5).
    pub max_moment: u32,
    /// Number of OrthoConv hidden layers (paper default 2; Table 7 sweeps
    /// 2..10).
    pub hidden_layers: usize,
    /// Ablation switch: include the `α` orthogonality term (paper Table 6).
    pub use_ortho: bool,
    /// Ablation switch: include the `β` CMD term (paper Table 6).
    pub use_cmd: bool,
    /// Scale of Eq. 11's first (mean-alignment) term; 1.0 is the paper's
    /// distance, 0.0 keeps only the order-≥2 shape moments. Exposed as an
    /// extension knob because under strongly label-skewed Louvain cuts the
    /// mean term fights the class signal (see EXPERIMENTS.md).
    pub cmd_mean_scale: f32,
    /// Apply the CMD constraint to the first hidden layer only instead of
    /// all hidden layers (extension ablation: the input-feature shift the
    /// constraint corrects lives in `Z¹`; deeper constraints also squeeze
    /// class information).
    pub cmd_first_layer_only: bool,
}

impl FedOmdConfig {
    /// The paper's hyper-parameters with two calibrations: `β` is scaled
    /// from 10 to 1 and the mean-alignment term of Eq. 11 is down-weighted
    /// to 0.1.
    ///
    /// With this substrate's activation and loss scales, the printed
    /// `β = 10` and the full-strength mean term dominate the cross-entropy
    /// under strongly label-skewed Louvain cuts and *hurt* accuracy — the
    /// calibration sweeps are recorded in EXPERIMENTS.md and regenerable
    /// with the `ablation_cmd` bench binary. The order-≥2 moment terms keep
    /// the paper's `1/(b−a)^j` weights. Use [`Self::strict_paper`] for the
    /// literal constants.
    pub fn paper() -> Self {
        Self {
            alpha: 5e-4,
            beta: 1.0,
            width: 1.0,
            max_moment: 5,
            hidden_layers: 2,
            use_ortho: true,
            use_cmd: true,
            cmd_mean_scale: 0.1,
            cmd_first_layer_only: false,
        }
    }

    /// Eq. 11/12 exactly as printed (`β = 10`, mean term at full weight).
    pub fn strict_paper() -> Self {
        Self {
            beta: 10.0,
            cmd_mean_scale: 1.0,
            ..Self::paper()
        }
    }

    /// Ablation variant: orthogonality only (Table 6 row ✓/✗).
    pub fn ortho_only() -> Self {
        Self {
            use_cmd: false,
            ..Self::paper()
        }
    }

    /// Ablation variant: CMD only (Table 6 row ✗/✓).
    pub fn cmd_only() -> Self {
        Self {
            use_ortho: false,
            ..Self::paper()
        }
    }
}

impl Default for FedOmdConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = FedOmdConfig::paper();
        assert!((c.alpha - 5e-4).abs() < 1e-9);
        assert!((c.beta - 1.0).abs() < 1e-9);
        assert!((FedOmdConfig::strict_paper().beta - 10.0).abs() < 1e-9);
        assert_eq!(c.max_moment, 5);
        assert_eq!(c.hidden_layers, 2);
        assert!(c.use_ortho && c.use_cmd);
    }

    #[test]
    fn ablation_variants_flip_exactly_one_switch() {
        assert!(!FedOmdConfig::ortho_only().use_cmd);
        assert!(FedOmdConfig::ortho_only().use_ortho);
        assert!(!FedOmdConfig::cmd_only().use_ortho);
        assert!(FedOmdConfig::cmd_only().use_cmd);
    }
}
