//! Shared pieces of the multi-process deployment: the common model
//! constructor and the run-config digest the TCP handshake verifies.
//!
//! A FedOMD federation only produces meaningful numbers when every
//! process — the server and each client — agrees on the dataset, the cut,
//! the model shape, and the objective. In the in-process simulator that
//! agreement is structural (one `RunConfig` drives everything); across
//! processes it has to be *checked*, so each client sends
//! [`run_config_digest`] in its handshake and the server refuses peers
//! whose digest differs.

use fedomd_federated::TrainConfig;
use fedomd_nn::{Model, OrthoGcn, OrthoGcnConfig};
use fedomd_tensor::rng::{derive, seeded};

use crate::config::FedOmdConfig;

/// Constructs one client's FedOMD model exactly as the in-process trainer
/// does: same architecture, same seeded init (`derive(seed, 0xF000)` —
/// the server's distributed `W₀`, paper Phase 1). Every client building
/// its model through this function starts bit-identical to every other,
/// which is what lets a multi-process run reproduce the in-process one.
pub fn build_fedomd_model(
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    in_dim: usize,
    n_classes: usize,
) -> Box<dyn Model> {
    let ocfg = OrthoGcnConfig {
        in_dim,
        hidden_dim: cfg.hidden_dim,
        out_dim: n_classes,
        hidden_layers: omd.hidden_layers,
        ns_interval: 10,
        ns_iters: 3,
    };
    Box::new(OrthoGcn::new(ocfg, &mut seeded(derive(cfg.seed, 0xF000))))
}

/// FNV-1a 64-bit digest over every configuration field that must agree
/// between the server and a client for their runs to be mathematically
/// consistent: dataset, party count, seed, model shape, optimiser
/// schedule, and the FedOMD objective.
///
/// `rounds` and `patience` are deliberately **excluded**: the round budget
/// and early stopping are driven by the server's verdicts, so a client may
/// legitimately run with a different cap (e.g. a deployment that leaves
/// the federation early).
pub fn run_config_digest(
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    dataset: &str,
    parties: usize,
) -> u64 {
    let mut h = Fnv1a::new();
    h.str(dataset);
    h.u64(parties as u64);
    h.u64(cfg.seed);
    h.u64(cfg.hidden_dim as u64);
    h.u64(cfg.local_epochs as u64);
    h.u64(cfg.eval_every as u64);
    h.u32(cfg.lr.to_bits());
    h.u32(cfg.weight_decay.to_bits());
    h.u32(omd.alpha.to_bits());
    h.u32(omd.beta.to_bits());
    h.u32(omd.width.to_bits());
    h.u32(omd.max_moment);
    h.u64(omd.hidden_layers as u64);
    h.u8(omd.use_ortho as u8);
    h.u8(omd.use_cmd as u8);
    h.u32(omd.cmd_mean_scale.to_bits());
    h.u8(omd.cmd_first_layer_only as u8);
    // Cohort sampling changes which clients the server awaits per round;
    // a client that disagrees would stall on rounds it was sampled out of.
    h.u64(cfg.cohort.sample_frac.to_bits());
    h.u64(cfg.cohort.min_cohort as u64);
    h.u64(cfg.cohort.seed);
    h.finish()
}

/// FNV-1a 64: tiny, dependency-free, stable across platforms.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.u8(b);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let cfg = TrainConfig::mini(0);
        let omd = FedOmdConfig::paper();
        let base = run_config_digest(&cfg, &omd, "cora_mini", 3);
        assert_eq!(base, run_config_digest(&cfg, &omd, "cora_mini", 3));

        // Any field that changes the math must change the digest.
        let mut other = cfg.clone();
        other.seed = 1;
        assert_ne!(base, run_config_digest(&other, &omd, "cora_mini", 3));
        let mut other = cfg.clone();
        other.hidden_dim += 1;
        assert_ne!(base, run_config_digest(&other, &omd, "cora_mini", 3));
        let mut other = cfg.clone();
        other.cohort = fedomd_federated::CohortConfig::fraction(0.5, 2);
        assert_ne!(base, run_config_digest(&other, &omd, "cora_mini", 3));
        let other = FedOmdConfig {
            beta: 2.0,
            ..FedOmdConfig::paper()
        };
        assert_ne!(base, run_config_digest(&cfg, &other, "cora_mini", 3));
        assert_ne!(base, run_config_digest(&cfg, &omd, "citeseer_mini", 3));
        assert_ne!(base, run_config_digest(&cfg, &omd, "cora_mini", 4));
    }

    #[test]
    fn digest_ignores_the_round_budget() {
        // Rounds/patience are server-driven: a client with a shorter cap
        // (it plans to leave early) must still be admitted.
        let cfg = TrainConfig::mini(0);
        let omd = FedOmdConfig::paper();
        let mut short = cfg.clone();
        short.rounds = 3;
        short.patience = 1;
        assert_eq!(
            run_config_digest(&cfg, &omd, "cora_mini", 3),
            run_config_digest(&short, &omd, "cora_mini", 3)
        );
    }

    #[test]
    fn digest_ignores_the_pipeline_flag() {
        // Pipelining changes wall-clock, never the numbers, so a pipelined
        // server must keep admitting sequential clients (and vice versa).
        let cfg = TrainConfig::mini(0);
        let omd = FedOmdConfig::paper();
        let mut piped = cfg.clone();
        piped.pipeline = fedomd_federated::PipelineConfig::on();
        assert_eq!(
            run_config_digest(&cfg, &omd, "cora_mini", 3),
            run_config_digest(&piped, &omd, "cora_mini", 3)
        );
    }

    #[test]
    fn shared_builder_reproduces_identical_inits() {
        let cfg = TrainConfig::mini(0);
        let omd = FedOmdConfig::paper();
        let a = build_fedomd_model(&cfg, &omd, 16, 4);
        let b = build_fedomd_model(&cfg, &omd, 16, 4);
        for (x, y) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }
}
