//! The server half of a multi-process FedOMD deployment.
//!
//! [`run_fedomd_server`] drives Algorithm 1 rounds **without owning any
//! client**: it aggregates whatever statistics, weight updates, and round
//! metrics arrive over the [`Channel`], broadcasts the global artefacts
//! back, and keeps the exact history / early-stopping / checkpoint
//! bookkeeping of the in-process loop (`crate::trainer`). Clients run
//! [`crate::client_loop::run_fedomd_client_rounds`] in their own
//! processes; over a faithful transport the pooled accuracies and round
//! history reproduce the in-process run bit for bit, because every
//! aggregation here consumes sender-sorted inputs in the same order the
//! in-process loop iterates its clients.
//!
//! Per round, uplink phases in order: `StatsRound1` → `StatsRound2` →
//! `WeightUpdate` → `Metrics`; downlinks interleave as in Algorithm 1,
//! plus one terminal `Control` verdict (`Ack` = continue, `EndRound` =
//! early stop) that replaces the in-process loop's shared `stopped` flag.
//! Every phase degrades to partial aggregation: the channel decides when
//! to stop waiting (its per-phase deadline), the driver aggregates whoever
//! made it.

use std::collections::BTreeMap;

use fedomd_federated::engine::RoundDriver;
use fedomd_federated::helpers::UpdateAccumulator;
use fedomd_federated::{
    CohortConfig, Direction, Persistence, ResumeState, RunResult, StatsCache, TrafficClass,
    TrainConfig,
};
use fedomd_telemetry::{ObservedChannel, Phase, PhaseStopwatch, RoundEvent, RoundObserver};
use fedomd_tensor::Matrix;
use fedomd_transport::{
    from_tensors, to_tensors, Channel, Control, Envelope, Payload, SERVER_SENDER,
};

use fedomd_metrics::Stopwatch;

use crate::config::FedOmdConfig;
use crate::protocol::{
    aggregate_means_sharded, aggregate_moments_sharded, MeanAccumulator, MomentAccumulator,
};

/// Options of the standalone server driver.
#[derive(Clone, Copy, Debug)]
pub struct ServerOpts {
    /// Number of federated parties the run is configured for. Phases wait
    /// for up to this many reports; fewer degrade to partial aggregation.
    pub n_clients: usize,
    /// Per-round client sampling for the weight phase. With a non-full
    /// cohort, the server awaits only `cohort_size` weight updates and
    /// discards same-round updates from unsampled senders; statistics and
    /// metrics phases keep awaiting the full federation. Defaults to full
    /// participation, which reproduces the unsampled protocol exactly.
    pub cohort: CohortConfig,
    /// Fault injection for the kill-and-resume tests: return right after
    /// the named round's bookkeeping (and checkpoint, if due) completes,
    /// **before** the verdict broadcast — exactly the window in which a
    /// real server crash strands its clients mid-wait.
    pub halt_after: Option<usize>,
}

impl ServerOpts {
    /// A plain full run for `n_clients` parties.
    pub fn new(n_clients: usize) -> Self {
        Self {
            n_clients,
            cohort: CohortConfig::full(),
            halt_after: None,
        }
    }
}

/// Runs the FedOMD server rounds over `chan` until the round budget or
/// early stopping, with checkpoint/resume via `persist` exactly as
/// [`crate::trainer::run_fedomd_resumable`] — except the snapshots carry
/// no per-client state (`params`/`optim`/`model_steps` stay empty): the
/// server's durable state is the driver bookkeeping, the channel cursor,
/// and the last aggregated global model/statistics, which is what a
/// reconnecting client needs to rejoin.
pub fn run_fedomd_server(
    opts: &ServerOpts,
    cfg: &TrainConfig,
    omd: &FedOmdConfig,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
    mut persist: Persistence<'_>,
) -> RunResult {
    assert!(opts.n_clients > 0, "run_fedomd_server: no clients");
    let cohort = opts.cohort.validate(opts.n_clients);
    assert!(cohort.is_ok(), "run_fedomd_server: {}", cohort.unwrap_err());
    let m = opts.n_clients;
    let track = persist.sink.is_some();
    let mut last_global: Option<Vec<Matrix>> = None;
    let mut last_stats: Option<StatsCache> = None;

    let mut driver;
    let start_round;
    if let Some(resume) = persist.resume.take() {
        chan.restore_state(&resume.channel);
        last_global = resume.global;
        last_stats = resume.stats;
        driver = RoundDriver::resume(cfg, resume.driver);
        start_round = resume.next_round;
    } else {
        driver = RoundDriver::new(cfg);
        start_round = 0;
    }
    driver.announce("FedOMD", m, obs);
    if start_round > 0 {
        obs.on_event(&RoundEvent::Resumed {
            round: start_round as u64,
        });
    }
    let mut chan = ObservedChannel::new(chan);
    let mut collector = Collector::default();

    for round in start_round..cfg.rounds {
        // A checkpoint taken after early stopping resumes already-stopped.
        if driver.stopped() {
            break;
        }
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        let r = round as u64;
        let start = Stopwatch::start();

        // --- Phase 2 (server side): the 2-round statistics exchange ---
        if omd.use_cmd {
            let sw = PhaseStopwatch::start(Phase::Comms);
            let all_ids: Vec<u32> = (0..m as u32).collect();
            let mut round1_n: BTreeMap<u32, usize> = BTreeMap::new();
            let r1_participants;
            let means_res;
            if cfg.pipeline.enabled {
                // Fold each report the moment it lands: the streaming
                // accumulator replaces the whole-cohort buffer, and the
                // push order is the same ascending-sender order the batch
                // fold consumes, so the average is bit-identical while
                // peak memory stays O(model + reorder window).
                let mut mean_acc = MeanAccumulator::new();
                let comms = &mut driver.comms;
                collector.phase_fold(
                    &mut chan,
                    r,
                    &all_ids,
                    |e| matches!(e.payload, Payload::StatsRound1 { .. }),
                    |env| {
                        comms.record(
                            Direction::Uplink,
                            TrafficClass::Stats,
                            env.encoded_len() as u64,
                        );
                        if let Payload::StatsRound1 { means, n_samples } = env.payload {
                            // A malformed payload degrades exactly like a
                            // dropped frame.
                            if mean_acc.push(&means, n_samples as usize).is_ok() {
                                round1_n.insert(env.sender, n_samples as usize);
                            }
                        }
                    },
                );
                r1_participants = mean_acc.pushed() as usize;
                means_res = mean_acc.finish();
            } else {
                let mut round1: Vec<(Vec<Vec<f32>>, usize)> = Vec::new();
                for env in collector.phase(&mut chan, r, m, |e| {
                    matches!(e.payload, Payload::StatsRound1 { .. })
                }) {
                    driver.comms.record(
                        Direction::Uplink,
                        TrafficClass::Stats,
                        env.encoded_len() as u64,
                    );
                    if let Payload::StatsRound1 { means, n_samples } = env.payload {
                        round1_n.insert(env.sender, n_samples as usize);
                        round1.push((means, n_samples as usize));
                    }
                }
                r1_participants = round1.len();
                means_res = aggregate_means_sharded(&round1);
            }
            chan.flush_into(obs);
            obs.on_event(&RoundEvent::StatsRound1Done {
                participants: r1_participants,
            });

            // An empty phase (or all-zero sample counts) yields Err: no
            // means go down, so no client will report moments — close the
            // second phase without a wait.
            if let Ok(means) = means_res {
                let cohort: Vec<u32> = (0..m as u32).collect();
                let bytes = chan.download_many(
                    &cohort,
                    Envelope {
                        round: r,
                        sender: SERVER_SENDER,
                        payload: Payload::GlobalStats {
                            means: means.clone(),
                            moments: Vec::new(),
                        },
                    },
                );
                for _ in 0..m {
                    driver
                        .comms
                        .record(Direction::Downlink, TrafficClass::Stats, bytes as u64);
                }
                chan.flush_into(obs);

                let r2_participants;
                let moments_res;
                if cfg.pipeline.enabled {
                    let mut moment_acc = MomentAccumulator::new();
                    let comms = &mut driver.comms;
                    collector.phase_fold(
                        &mut chan,
                        r,
                        &all_ids,
                        |e| matches!(e.payload, Payload::StatsRound2 { .. }),
                        |env| {
                            comms.record(
                                Direction::Uplink,
                                TrafficClass::Stats,
                                env.encoded_len() as u64,
                            );
                            if let Payload::StatsRound2 { moments } = env.payload {
                                // Round-2 moments are weighted by the n_i
                                // announced in round 1; an unannounced
                                // reporter is ignored.
                                if let Some(&n) = round1_n.get(&env.sender) {
                                    let _ok = moment_acc.push(&moments, n).is_ok();
                                }
                            }
                        },
                    );
                    r2_participants = moment_acc.pushed() as usize;
                    moments_res = moment_acc.finish();
                } else {
                    let mut round2: Vec<(Vec<Vec<Vec<f32>>>, usize)> = Vec::new();
                    for env in collector.phase(&mut chan, r, m, |e| {
                        matches!(e.payload, Payload::StatsRound2 { .. })
                    }) {
                        driver.comms.record(
                            Direction::Uplink,
                            TrafficClass::Stats,
                            env.encoded_len() as u64,
                        );
                        if let Payload::StatsRound2 { moments } = env.payload {
                            // Round-2 moments are weighted by the n_i
                            // announced in round 1; an unannounced reporter
                            // is ignored.
                            if let Some(&n) = round1_n.get(&env.sender) {
                                round2.push((moments, n));
                            }
                        }
                    }
                    r2_participants = round2.len();
                    moments_res = aggregate_moments_sharded(&round2);
                }
                chan.flush_into(obs);
                obs.on_event(&RoundEvent::StatsRound2Done {
                    participants: r2_participants,
                });
                if let Ok(moments) = moments_res {
                    if track {
                        last_stats = Some(StatsCache {
                            means: means.clone(),
                            moments: moments.clone(),
                        });
                    }
                    let bytes = chan.download_many(
                        &cohort,
                        Envelope {
                            round: r,
                            sender: SERVER_SENDER,
                            payload: Payload::GlobalStats {
                                means: means.clone(),
                                moments: moments.clone(),
                            },
                        },
                    );
                    for _ in 0..m {
                        driver
                            .comms
                            .record(Direction::Downlink, TrafficClass::Stats, bytes as u64);
                    }
                    chan.flush_into(obs);
                }
            } else {
                // Nothing to average: no means went down, so no client
                // will report moments — close the phase without a wait.
                obs.on_event(&RoundEvent::StatsRound2Done { participants: 0 });
            }
            sw.finish(obs);
        }

        // --- Phase 4 (server side): FedAvg over whoever arrived ---
        // With a non-full cohort the phase awaits only the sampled
        // senders; a same-round update from an unsampled sender is left
        // unmatched (and discarded when the round closes). Envelopes come
        // back sender-sorted, and the sharded batch fold is bit-identical
        // to a sequential fold in that order, so the result matches the
        // in-process loop's ascending-client aggregation exactly.
        let cohort = opts.cohort.sample(r, m);
        let mut in_cohort = vec![false; m];
        for &i in &cohort {
            in_cohort[i] = true;
        }
        let mut agg = UpdateAccumulator::new();
        if cfg.pipeline.enabled {
            // Fold-on-arrival: each update lands in the streaming
            // accumulator the moment its ascending-sender turn comes up
            // (out-of-order arrivals wait in the collector's reorder
            // window), so the server folds fast clients' uploads while
            // stragglers are still training — the whole wait is the
            // overlap the `FoldOverlap` telemetry segment measures — and
            // never materialises the O(cohort·model) payload buffer.
            let sw = PhaseStopwatch::start(Phase::FoldOverlap);
            let cohort_ids: Vec<u32> = cohort.iter().map(|&i| i as u32).collect();
            let comms = &mut driver.comms;
            collector.phase_fold(
                &mut chan,
                r,
                &cohort_ids,
                |e| {
                    matches!(e.payload, Payload::WeightUpdate { .. })
                        && in_cohort.get(e.sender as usize).copied().unwrap_or(false)
                },
                |env| {
                    comms.record(
                        Direction::Uplink,
                        TrafficClass::Weights,
                        env.encoded_len() as u64,
                    );
                    if let Payload::WeightUpdate { params } = env.payload {
                        agg.push(&from_tensors(params), 1.0);
                    }
                },
            );
            chan.flush_into(obs);
            sw.finish(obs);
        } else {
            let sw = PhaseStopwatch::start(Phase::Comms);
            let mut sets: Vec<(Vec<Matrix>, f64)> = Vec::new();
            for env in collector.phase(&mut chan, r, cohort.len(), |e| {
                matches!(e.payload, Payload::WeightUpdate { .. })
                    && in_cohort.get(e.sender as usize).copied().unwrap_or(false)
            }) {
                driver.comms.record(
                    Direction::Uplink,
                    TrafficClass::Weights,
                    env.encoded_len() as u64,
                );
                if let Payload::WeightUpdate { params } = env.payload {
                    sets.push((from_tensors(params), 1.0));
                }
            }
            chan.flush_into(obs);
            sw.finish(obs);
            let sw = PhaseStopwatch::start(Phase::Aggregation);
            agg.push_batch(&sets);
            sw.finish(obs);
        }
        let sw = PhaseStopwatch::start(Phase::Aggregation);
        let participants = agg.pushed();
        let global = agg.finish();
        sw.finish(obs);
        if let Some(global) = global {
            if track {
                last_global = Some(global.clone());
            }
            obs.on_event(&RoundEvent::AggregationDone { participants });
            let sw = PhaseStopwatch::start(Phase::Comms);
            let cohort: Vec<u32> = (0..m as u32).collect();
            let bytes = chan.download_many(
                &cohort,
                Envelope {
                    round: r,
                    sender: SERVER_SENDER,
                    payload: Payload::GlobalModel {
                        params: to_tensors(&global),
                    },
                },
            );
            for _ in 0..m {
                driver
                    .comms
                    .record(Direction::Downlink, TrafficClass::Weights, bytes as u64);
            }
            chan.flush_into(obs);
            sw.finish(obs);
        } else {
            obs.on_event(&RoundEvent::AggregationDone { participants: 0 });
        }

        // --- Round outcome: losses and pooled eval counts from the
        // clients; this collect doubles as the end-of-round barrier. ---
        let mut losses: Vec<f64> = Vec::new();
        let mut val = (0u64, 0u64);
        let mut test = (0u64, 0u64);
        for env in collector.phase(&mut chan, r, m, |e| {
            matches!(e.payload, Payload::Metrics { .. })
        }) {
            driver.comms.record(
                Direction::Uplink,
                TrafficClass::Stats,
                env.encoded_len() as u64,
            );
            if let Payload::Metrics {
                train_loss,
                val_correct,
                val_total,
                test_correct,
                test_total,
            } = env.payload
            {
                losses.push(train_loss as f64);
                val.0 += val_correct;
                val.1 += val_total;
                test.0 += test_correct;
                test.1 += test_total;
            }
        }
        chan.flush_into(obs);
        // Sender-sorted f64 sum over f32 readings: the same float summation
        // the in-process loop performs over its client-ordered losses.
        let mean_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f64>() / losses.len() as f64
        };
        let eval = if driver.eval_due(round) && !losses.is_empty() {
            // Pooled accuracy is a ratio of integer sums — order-free, so
            // it matches `evaluate()` exactly whatever the arrival order.
            let frac = |(c, t): (u64, u64)| if t == 0 { 0.0 } else { c as f64 / t as f64 };
            Some((frac(val), frac(test)))
        } else {
            None
        };
        driver.comms.sync_dropped(chan.stats().dropped_frames);
        driver.timer.add("server", start.elapsed());
        driver.end_round_metrics(round, mean_loss, eval, obs);

        if let Some(sink) = persist.sink.as_mut() {
            if sink.every() > 0 && (round + 1).is_multiple_of(sink.every()) {
                let state = ResumeState {
                    next_round: round + 1,
                    params: Vec::new(),
                    optim: Vec::new(),
                    model_steps: Vec::new(),
                    driver: driver.snapshot(),
                    channel: chan.export_state(),
                    global: last_global.clone(),
                    stats: last_stats.clone(),
                };
                sink.save(state, obs);
            }
        }
        if opts.halt_after == Some(round) {
            // Simulated crash: the checkpoint (if due) is durable, the
            // verdict is not sent — clients stall, then reconnect.
            return driver.finish_observed("FedOMD", obs);
        }
        // The verdict replaces the in-process loop's shared break: clients
        // wait for it on every round except their last scheduled one.
        if round + 1 < cfg.rounds {
            let verdict = if driver.stopped() {
                Control::EndRound
            } else {
                Control::Ack
            };
            let cohort: Vec<u32> = (0..m as u32).collect();
            let bytes = chan.download_many(
                &cohort,
                Envelope {
                    round: r,
                    sender: SERVER_SENDER,
                    payload: Payload::Control(verdict),
                },
            );
            for _ in 0..m {
                driver
                    .comms
                    .record(Direction::Downlink, TrafficClass::Stats, bytes as u64);
            }
            chan.flush_into(obs);
        }
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed("FedOMD", obs)
}

/// Phase-aware uplink collector.
///
/// A fast client may deliver its whole round — both statistics reports,
/// its weight update, and its metrics — before a slow one delivers
/// anything, so a single `server_collect` can surface frames of several
/// phases at once. The collector keeps the out-of-phase surplus in a
/// stash and serves each phase the first matching frame per sender,
/// sender-sorted.
#[derive(Default)]
struct Collector {
    stash: Vec<Envelope>,
}

impl Collector {
    /// Collects up to `expected` round-`round` frames matching `want`
    /// (which sees the whole envelope, so admission can filter on sender —
    /// e.g. cohort membership — as well as payload kind), one per sender,
    /// drawing from the stash first and then from the channel until the
    /// transport's live-peer count is satisfied or the channel reports
    /// nothing new (its deadline elapsed with stragglers still missing —
    /// the partial-aggregation path).
    fn phase(
        &mut self,
        chan: &mut ObservedChannel<'_>,
        round: u64,
        expected: usize,
        want: impl Fn(&Envelope) -> bool,
    ) -> Vec<Envelope> {
        let mut got: Vec<Envelope> = Vec::new();
        let take = |env: Envelope, got: &mut Vec<Envelope>, stash: &mut Vec<Envelope>| {
            if env.round == round
                && want(&env)
                && !got.iter().any(|g: &Envelope| g.sender == env.sender)
            {
                got.push(env);
            } else if env.round >= round {
                stash.push(env);
            }
            // Frames of closed rounds are silently discarded here; the
            // transport already counted them dropped when it admitted the
            // round's deadline.
        };
        for env in std::mem::take(&mut self.stash) {
            take(env, &mut got, &mut self.stash);
        }
        loop {
            // A transport that tracks liveness caps the wait at its live
            // peer count: once a departed party shrinks the cohort, the
            // phase closes as soon as everyone remaining has reported,
            // instead of burning a full collect deadline per phase on
            // peers that are gone.
            let target = chan
                .awaited_peers(round)
                .map_or(expected, |live| live.min(expected));
            if got.len() >= target {
                break;
            }
            let batch = chan.server_collect(round);
            if batch.is_empty() {
                break;
            }
            for env in batch {
                take(env, &mut got, &mut self.stash);
            }
        }
        got.sort_by_key(|e| e.sender);
        got
    }

    /// Fold-on-arrival variant of [`Self::phase`]: applies `fold` to each
    /// admitted envelope in ascending sender order — the exact order the
    /// batch variant's final sort produces — buffering out-of-order
    /// arrivals in a reorder window keyed by sender, so the phase never
    /// materialises more than the window while fast senders' payloads are
    /// consumed immediately. `candidates` is the ascending list of senders
    /// the phase may admit (the cohort for the weight phase). An admitted
    /// sender stuck behind a gap (an earlier candidate that never reports)
    /// folds when the phase closes, still ascending.
    ///
    /// Close conditions match [`Self::phase`]: enough admissions to cover
    /// `min(awaited_peers, candidates.len())`, or a collect that comes
    /// back empty (the transport's deadline elapsed / every live peer
    /// reported — the partial-aggregation path). Polls
    /// [`Channel::server_collect_some`], so a transport that can return
    /// single frames feeds the fold as uploads land rather than at phase
    /// end. Returns the number of envelopes folded.
    fn phase_fold(
        &mut self,
        chan: &mut ObservedChannel<'_>,
        round: u64,
        candidates: &[u32],
        want: impl Fn(&Envelope) -> bool,
        mut fold: impl FnMut(Envelope),
    ) -> usize {
        let expected = candidates.len();
        let mut window: BTreeMap<u32, Envelope> = BTreeMap::new();
        let mut seen: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut next = 0usize;
        let mut folded = 0usize;
        let admit = |env: Envelope,
                     window: &mut BTreeMap<u32, Envelope>,
                     seen: &mut std::collections::BTreeSet<u32>,
                     stash: &mut Vec<Envelope>| {
            if env.round == round && want(&env) && seen.insert(env.sender) {
                window.insert(env.sender, env);
            } else if env.round >= round {
                stash.push(env);
            }
            // Frames of closed rounds are silently discarded, as in
            // `phase`.
        };
        for env in std::mem::take(&mut self.stash) {
            admit(env, &mut window, &mut seen, &mut self.stash);
        }
        loop {
            // Fold the contiguous arrived prefix of the candidate list.
            while next < candidates.len() {
                let Some(env) = window.remove(&candidates[next]) else {
                    break;
                };
                fold(env);
                folded += 1;
                next += 1;
            }
            let target = chan
                .awaited_peers(round)
                .map_or(expected, |live| live.min(expected));
            if seen.len() >= target {
                break;
            }
            let batch = chan.server_collect_some(round);
            if batch.is_empty() {
                break;
            }
            for env in batch {
                admit(env, &mut window, &mut seen, &mut self.stash);
            }
        }
        // Close: whatever waited behind a gap folds now, ascending.
        while let Some((_, env)) = window.pop_first() {
            fold(env);
            folded += 1;
        }
        folded
    }
}

/// Drives [`Collector::phase`] — the batch collection path — over `chan`
/// with a fresh collector. Public so the exhaustive interleaving harness
/// (`tests/interleaving.rs`) can push the private collector through every
/// arrival permutation and compare against the sequential oracle; the
/// round loop itself keeps using its long-lived collector directly.
pub fn drive_phase(
    chan: &mut dyn Channel,
    round: u64,
    expected: usize,
    want: impl Fn(&Envelope) -> bool,
) -> Vec<Envelope> {
    let mut observed = ObservedChannel::new(chan);
    Collector::default().phase(&mut observed, round, expected, want)
}

/// Drives [`Collector::phase_fold`] — the fold-on-arrival path — over
/// `chan` with a fresh collector; the interleaving counterpart of
/// [`drive_phase`]. Returns the number of envelopes folded.
pub fn drive_phase_fold(
    chan: &mut dyn Channel,
    round: u64,
    candidates: &[u32],
    want: impl Fn(&Envelope) -> bool,
    fold: impl FnMut(Envelope),
) -> usize {
    let mut observed = ObservedChannel::new(chan);
    Collector::default().phase_fold(&mut observed, round, candidates, want, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_federated::engine::DriverState;
    use fedomd_federated::CommsLog;
    use fedomd_nn::AdamState;
    use fedomd_telemetry::NullObserver;
    use fedomd_transport::{ChannelState, InProcChannel, Tensor};

    fn weight_env(round: u64, sender: u32, v: f32) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::WeightUpdate {
                params: vec![Tensor {
                    rows: 1,
                    cols: 2,
                    data: vec![v, v + 1.0],
                }],
            },
        }
    }

    fn metrics_env(round: u64, sender: u32, loss: f32, vc: u64, vt: u64) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::Metrics {
                train_loss: loss,
                val_correct: vc,
                val_total: vt,
                test_correct: vc,
                test_total: vt,
            },
        }
    }

    #[test]
    fn collector_splits_interleaved_phases_per_sender() {
        let mut inner = InProcChannel::new();
        // Sender 1 races ahead: its weight update and metrics land before
        // sender 0's weight update.
        inner.upload(weight_env(0, 1, 1.0));
        inner.upload(metrics_env(0, 1, 0.5, 3, 4));
        inner.upload(weight_env(0, 0, 0.0));
        let mut chan = ObservedChannel::new(&mut inner);
        let mut c = Collector::default();
        let weights = c.phase(&mut chan, 0, 2, |e| {
            matches!(e.payload, Payload::WeightUpdate { .. })
        });
        assert_eq!(weights.len(), 2);
        assert_eq!(weights[0].sender, 0, "must be sender-sorted");
        assert_eq!(weights[1].sender, 1);
        // The metrics frame was stashed, not lost: the next phase gets it
        // without touching the (now empty) channel.
        let metrics = c.phase(&mut chan, 0, 1, |e| {
            matches!(e.payload, Payload::Metrics { .. })
        });
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].sender, 1);
    }

    #[test]
    fn collector_stops_at_the_live_peer_count() {
        // A transport that knows only one of the three configured parties
        // is still connected: once that party reported, the phase must
        // close without calling collect again — the extra call is what
        // used to burn a full phase deadline per phase after a departure.
        struct OneLive {
            inner: InProcChannel,
            collects: usize,
        }
        impl Channel for OneLive {
            fn upload(&mut self, env: Envelope) -> usize {
                self.inner.upload(env)
            }
            fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
                self.collects += 1;
                self.inner.server_collect(round)
            }
            fn download(&mut self, to: u32, env: Envelope) -> usize {
                self.inner.download(to, env)
            }
            fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope> {
                self.inner.client_collect(id, round)
            }
            fn awaited_peers(&self, _round: u64) -> Option<usize> {
                Some(1)
            }
            fn stats(&self) -> fedomd_transport::NetStats {
                self.inner.stats()
            }
        }
        let mut chan = OneLive {
            inner: InProcChannel::new(),
            collects: 0,
        };
        chan.inner.upload(weight_env(0, 0, 1.0));
        let mut observed = ObservedChannel::new(&mut chan);
        let mut c = Collector::default();
        let got = c.phase(&mut observed, 0, 3, |e| {
            matches!(e.payload, Payload::WeightUpdate { .. })
        });
        assert_eq!(got.len(), 1);
        drop(observed);
        assert_eq!(chan.collects, 1, "no re-collect for departed parties");
    }

    #[test]
    fn phase_fold_folds_out_of_order_arrivals_ascending() {
        use std::collections::VecDeque;
        // A transport that surfaces one frame per collect, in raw arrival
        // order — the shape `server_collect_some` takes over TCP.
        struct Trickle {
            frames: VecDeque<Envelope>,
        }
        impl Channel for Trickle {
            fn upload(&mut self, env: Envelope) -> usize {
                self.frames.push_back(env);
                1
            }
            fn server_collect(&mut self, _round: u64) -> Vec<Envelope> {
                self.frames.drain(..).collect()
            }
            fn server_collect_some(&mut self, _round: u64) -> Vec<Envelope> {
                self.frames.pop_front().into_iter().collect()
            }
            fn download(&mut self, _to: u32, _env: Envelope) -> usize {
                0
            }
            fn client_collect(&mut self, _id: u32, _round: u64) -> Vec<Envelope> {
                Vec::new()
            }
            fn stats(&self) -> fedomd_transport::NetStats {
                fedomd_transport::NetStats::default()
            }
        }
        let mut t = Trickle {
            frames: VecDeque::new(),
        };
        // Arrival order 2, 0, 1: the window must hold 2 until 0 and 1 fold.
        t.upload(weight_env(0, 2, 2.0));
        t.upload(weight_env(0, 0, 0.0));
        t.upload(weight_env(0, 1, 1.0));
        let mut chan = ObservedChannel::new(&mut t);
        let mut c = Collector::default();
        let mut order = Vec::new();
        let folded = c.phase_fold(
            &mut chan,
            0,
            &[0, 1, 2],
            |e| matches!(e.payload, Payload::WeightUpdate { .. }),
            |env| order.push(env.sender),
        );
        assert_eq!(folded, 3);
        assert_eq!(order, vec![0, 1, 2], "fold order must be ascending");
    }

    #[test]
    fn disconnect_mid_fold_closes_at_the_live_peer_count() {
        // Two of three parties depart after the third uploads (their
        // generation-stamped `Left` events shrink `awaited_peers` to 1).
        // The partially-folded phase must close without another collect —
        // and the survivor, stuck in the window behind the gap left by the
        // departed senders, must still fold.
        struct OneLive {
            inner: InProcChannel,
            collects: usize,
        }
        impl Channel for OneLive {
            fn upload(&mut self, env: Envelope) -> usize {
                self.inner.upload(env)
            }
            fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
                self.collects += 1;
                self.inner.server_collect(round)
            }
            fn server_collect_some(&mut self, round: u64) -> Vec<Envelope> {
                self.server_collect(round)
            }
            fn download(&mut self, to: u32, env: Envelope) -> usize {
                self.inner.download(to, env)
            }
            fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope> {
                self.inner.client_collect(id, round)
            }
            fn awaited_peers(&self, _round: u64) -> Option<usize> {
                Some(1)
            }
            fn stats(&self) -> fedomd_transport::NetStats {
                self.inner.stats()
            }
        }
        let mut chan = OneLive {
            inner: InProcChannel::new(),
            collects: 0,
        };
        chan.inner.upload(weight_env(0, 2, 2.0));
        let mut observed = ObservedChannel::new(&mut chan);
        let mut c = Collector::default();
        let mut order = Vec::new();
        let folded = c.phase_fold(
            &mut observed,
            0,
            &[0, 1, 2],
            |e| matches!(e.payload, Payload::WeightUpdate { .. }),
            |env| order.push(env.sender),
        );
        assert_eq!(folded, 1, "the survivor's update must not be stranded");
        assert_eq!(order, vec![2]);
        drop(observed);
        assert_eq!(chan.collects, 1, "no re-collect for departed parties");
    }

    #[test]
    fn pipelined_server_round_matches_the_sequential_server_round() {
        use fedomd_federated::PipelineConfig;
        // The same queued uplink, drained by both server paths: every
        // RunResult artefact (pooled eval, history, byte accounting) must
        // agree bit for bit.
        let run_once = |pipelined: bool| {
            let mut chan = InProcChannel::new();
            chan.upload(weight_env(0, 0, 0.0));
            chan.upload(weight_env(0, 1, 2.0));
            chan.upload(metrics_env(0, 0, 1.0, 1, 4));
            chan.upload(metrics_env(0, 1, 3.0, 2, 4));
            let mut cfg = TrainConfig {
                rounds: 1,
                ..TrainConfig::mini(0)
            };
            if pipelined {
                cfg.pipeline = PipelineConfig::on();
            }
            run_fedomd_server(
                &ServerOpts::new(2),
                &cfg,
                &FedOmdConfig::ortho_only(),
                &mut chan,
                &mut NullObserver,
                Persistence::default(),
            )
        };
        let seq = run_once(false);
        let piped = run_once(true);
        assert_eq!(seq.history, piped.history);
        assert_eq!(seq.val_acc, piped.val_acc);
        assert_eq!(seq.comms, piped.comms);
    }

    #[test]
    fn aggregates_arrivals_and_records_pooled_eval() {
        // Two clients' round-0 uplink is already queued; a single-round
        // server run must aggregate it, broadcast the average, and push a
        // history entry with the pooled accuracy.
        let mut chan = InProcChannel::new();
        chan.upload(weight_env(0, 0, 0.0));
        chan.upload(weight_env(0, 1, 2.0));
        chan.upload(metrics_env(0, 0, 1.0, 1, 4));
        chan.upload(metrics_env(0, 1, 3.0, 2, 4));
        let cfg = TrainConfig {
            rounds: 1,
            ..TrainConfig::mini(0)
        };
        let omd = FedOmdConfig::ortho_only(); // no stats exchange
        let r = run_fedomd_server(
            &ServerOpts::new(2),
            &cfg,
            &omd,
            &mut chan,
            &mut NullObserver,
            Persistence::default(),
        );
        assert_eq!(r.history.len(), 1);
        assert_eq!(r.history[0].train_loss, 2.0);
        assert_eq!(r.history[0].val_acc, 3.0 / 8.0);
        assert_eq!(r.val_acc, 3.0 / 8.0);
        // Both clients got the FedAvg of the two updates.
        for id in 0..2u32 {
            let down = chan.client_collect(id, 0);
            assert_eq!(down.len(), 1, "client {id} downlink");
            match &down[0].payload {
                Payload::GlobalModel { params } => {
                    assert_eq!(params[0].data, vec![1.0, 2.0]);
                }
                other => panic!("unexpected {}", other.kind()),
            }
        }
    }

    #[test]
    fn empty_round_degrades_without_history() {
        // Nobody reported: no aggregation, no eval, no history entry —
        // the run ends with the driver's neutral result.
        let mut chan = InProcChannel::new();
        let cfg = TrainConfig {
            rounds: 1,
            ..TrainConfig::mini(0)
        };
        let r = run_fedomd_server(
            &ServerOpts::new(3),
            &cfg,
            &FedOmdConfig::paper(),
            &mut chan,
            &mut NullObserver,
            Persistence::default(),
        );
        assert!(r.history.is_empty());
        assert_eq!(r.comms.rounds, 1);
    }

    #[test]
    fn halt_after_returns_before_the_verdict() {
        let mut chan = InProcChannel::new();
        chan.upload(weight_env(0, 0, 1.0));
        chan.upload(metrics_env(0, 0, 1.0, 1, 2));
        let cfg = TrainConfig {
            rounds: 5,
            ..TrainConfig::mini(0)
        };
        let omd = FedOmdConfig::ortho_only();
        let opts = ServerOpts {
            halt_after: Some(0),
            ..ServerOpts::new(1)
        };
        let r = run_fedomd_server(
            &opts,
            &cfg,
            &omd,
            &mut chan,
            &mut NullObserver,
            Persistence::default(),
        );
        assert_eq!(r.comms.rounds, 1, "exactly one round ran");
        // Downlink holds the global model but no Control verdict: the
        // simulated crash struck before the broadcast.
        let kinds: Vec<&str> = chan
            .client_collect(0, 0)
            .iter()
            .map(|e| e.payload.kind())
            .collect();
        assert_eq!(kinds, ["GlobalModel"]);
    }

    #[test]
    fn resumes_from_a_server_side_snapshot() {
        // A server checkpoint has no per-client state; the driver history
        // and round cursor must carry over.
        let mut chan = InProcChannel::new();
        chan.upload(weight_env(3, 0, 1.0));
        chan.upload(metrics_env(3, 0, 0.25, 1, 2));
        let cfg = TrainConfig {
            rounds: 4,
            ..TrainConfig::mini(0)
        };
        let omd = FedOmdConfig::ortho_only();
        let prior = DriverState {
            history: vec![fedomd_federated::RoundStats {
                round: 2,
                train_loss: 0.5,
                val_acc: 0.5,
                test_acc: 0.5,
            }],
            best_val: 0.5,
            best_test: 0.5,
            best_round: 2,
            rounds_since_improve: 0,
            stopped: false,
            comms: CommsLog::new(),
        };
        let resume = ResumeState {
            next_round: 3,
            params: Vec::new(),
            optim: Vec::<AdamState>::new(),
            model_steps: Vec::new(),
            driver: prior,
            channel: ChannelState::default(),
            global: None,
            stats: None,
        };
        let r = run_fedomd_server(
            &ServerOpts::new(1),
            &cfg,
            &omd,
            &mut chan,
            &mut NullObserver,
            Persistence {
                resume: Some(resume),
                sink: None,
            },
        );
        // Round 3 is off the eval schedule (eval_every = 2), so history
        // still holds only the checkpointed entry.
        assert_eq!(r.history.len(), 1);
        assert_eq!(r.val_acc, 0.5);
        assert_eq!(r.comms.rounds, 1, "only round 3 ran after resume");
    }
}
