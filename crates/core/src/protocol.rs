//! The 2-round statistics exchange of Algorithm 1 (lines 4–18, 25).
//!
//! Round 1: every client uploads its per-layer activation means `M_i^l`
//! and sample count `n_i`; the server returns the weighted global means
//! `M^l = Σ n_i M_i^l / Σ n_i` (Eq. 10).
//!
//! Round 2: every client re-centres its activations on the *global* mean
//! and uploads the central moments `[S_i^l]_j` for `j = 2..=J`; the server
//! returns their weighted averages `[S^l]_j`.
//!
//! Because the weighted average of client moments about a common centre is
//! exactly the pooled moment, the pair `(M^l, [S^l]_j)` equals what a
//! centralised computation over the union of all activations would give —
//! the "implicitly calculate the IID distribution by only 2-round
//! interaction" claim of the paper — which
//! `distributed_protocol_matches_centralized` below verifies.

use fedomd_autograd::CmdTargets;
use fedomd_tensor::stats::{central_moments, column_means};
use fedomd_tensor::Matrix;

/// Server-side result of the exchange: per hidden layer, the global mean
/// and the global central moments (orders `2..=max`).
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalStats {
    /// `means[layer][dim]`.
    pub means: Vec<Vec<f32>>,
    /// `moments[layer][order - 2][dim]`.
    pub moments: Vec<Vec<Vec<f32>>>,
}

impl GlobalStats {
    /// Total scalars a single client uploads across both rounds (means +
    /// moments), for communication accounting.
    pub fn uplink_scalars(&self) -> usize {
        let mean_scalars: usize = self.means.iter().map(|m| m.len()).sum();
        let moment_scalars: usize = self
            .moments
            .iter()
            .map(|layer| layer.iter().map(|o| o.len()).sum::<usize>())
            .sum();
        mean_scalars + moment_scalars
    }
}

/// Client side of round 1: per-layer column means of the hidden
/// activations (Algorithm 1 line 4).
pub fn client_means(hidden: &[&Matrix]) -> Vec<Vec<f32>> {
    hidden.iter().map(|z| column_means(z)).collect()
}

/// Server side of round 1 (Eq. 10): sample-weighted average of client
/// means, per layer.
///
/// # Panics
/// Panics on empty input or inconsistent layer arity/dimensions.
pub fn aggregate_means(client_stats: &[(Vec<Vec<f32>>, usize)]) -> Vec<Vec<f32>> {
    assert!(!client_stats.is_empty(), "aggregate_means: no clients");
    let n_layers = client_stats[0].0.len();
    let total: f64 = client_stats.iter().map(|(_, n)| *n as f64).sum();
    assert!(total > 0.0, "aggregate_means: zero total samples");

    (0..n_layers)
        .map(|l| {
            let dim = client_stats[0].0[l].len();
            let mut acc = vec![0.0f64; dim];
            for (means, n) in client_stats {
                assert_eq!(
                    means.len(),
                    n_layers,
                    "aggregate_means: layer arity mismatch"
                );
                assert_eq!(means[l].len(), dim, "aggregate_means: dimension mismatch");
                let w = *n as f64 / total;
                for (a, &m) in acc.iter_mut().zip(&means[l]) {
                    *a += w * m as f64;
                }
            }
            acc.into_iter().map(|v| v as f32).collect()
        })
        .collect()
}

/// Client side of round 2 (Algorithm 1 lines 12-13): central moments of
/// orders `2..=max_order` about the *global* means.
pub fn client_moments_about(
    hidden: &[&Matrix],
    global_means: &[Vec<f32>],
    max_order: u32,
) -> Vec<Vec<Vec<f32>>> {
    assert_eq!(
        hidden.len(),
        global_means.len(),
        "client_moments_about: layer arity mismatch"
    );
    hidden
        .iter()
        .zip(global_means)
        .map(|(z, m)| (2..=max_order).map(|j| central_moments(z, m, j)).collect())
        .collect()
}

/// Server side of round 2: sample-weighted average of client moments.
pub fn aggregate_moments(client_stats: &[(Vec<Vec<Vec<f32>>>, usize)]) -> Vec<Vec<Vec<f32>>> {
    assert!(!client_stats.is_empty(), "aggregate_moments: no clients");
    let n_layers = client_stats[0].0.len();
    let total: f64 = client_stats.iter().map(|(_, n)| *n as f64).sum();
    assert!(total > 0.0, "aggregate_moments: zero total samples");

    (0..n_layers)
        .map(|l| {
            let n_orders = client_stats[0].0[l].len();
            (0..n_orders)
                .map(|o| {
                    let dim = client_stats[0].0[l][o].len();
                    let mut acc = vec![0.0f64; dim];
                    for (moments, n) in client_stats {
                        let w = *n as f64 / total;
                        assert_eq!(moments[l][o].len(), dim, "aggregate_moments: dim mismatch");
                        for (a, &m) in acc.iter_mut().zip(&moments[l][o]) {
                            *a += w * m as f64;
                        }
                    }
                    acc.into_iter().map(|v| v as f32).collect()
                })
                .collect()
        })
        .collect()
}

/// Runs the full 2-round protocol over per-client hidden activations and
/// returns the global stats.
pub fn exchange(per_client_hidden: &[Vec<&Matrix>], max_order: u32) -> GlobalStats {
    assert!(!per_client_hidden.is_empty(), "exchange: no clients");
    // Round 1.
    let round1: Vec<(Vec<Vec<f32>>, usize)> = per_client_hidden
        .iter()
        .map(|h| (client_means(h), h.first().map_or(0, |z| z.rows())))
        .collect();
    let means = aggregate_means(&round1);
    // Round 2.
    let round2: Vec<(Vec<Vec<Vec<f32>>>, usize)> = per_client_hidden
        .iter()
        .map(|h| {
            (
                client_moments_about(h, &means, max_order),
                h.first().map_or(0, |z| z.rows()),
            )
        })
        .collect();
    let moments = aggregate_moments(&round2);
    GlobalStats { means, moments }
}

/// Converts global stats into per-layer CMD targets for the loss.
pub fn build_targets(stats: &GlobalStats) -> Vec<CmdTargets> {
    stats
        .means
        .iter()
        .zip(&stats.moments)
        .map(|(mean, moments)| CmdTargets {
            mean: mean.clone(),
            moments: moments.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_tensor::rng::seeded;

    fn act(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v.abs() * 0.3)
    }

    #[test]
    fn aggregate_means_is_weighted() {
        let a = (vec![vec![0.0f32, 0.0]], 1usize);
        let b = (vec![vec![3.0f32, 6.0]], 2usize);
        let m = aggregate_means(&[a, b]);
        assert!((m[0][0] - 2.0).abs() < 1e-6);
        assert!((m[0][1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn distributed_protocol_matches_centralized() {
        // Three clients with different sizes and distributions; pooled
        // statistics must equal the protocol's output exactly.
        let z1 = act(13, 5, 1);
        let z2 = act(29, 5, 2).map(|v| v + 0.2);
        let z3 = act(7, 5, 3).map(|v| v * 2.0);

        let stats = exchange(&[vec![&z1], vec![&z2], vec![&z3]], 5);

        // Centralised: stack all rows.
        let mut pooled = Vec::new();
        pooled.extend_from_slice(z1.as_slice());
        pooled.extend_from_slice(z2.as_slice());
        pooled.extend_from_slice(z3.as_slice());
        let pooled = Matrix::from_vec(13 + 29 + 7, 5, pooled);
        let c_mean = column_means(&pooled);
        for (a, b) in stats.means[0].iter().zip(&c_mean) {
            assert!((a - b).abs() < 1e-5, "mean mismatch: {a} vs {b}");
        }
        for (o, j) in (2u32..=5).enumerate() {
            let c_mom = central_moments(&pooled, &c_mean, j);
            for (a, b) in stats.moments[0][o].iter().zip(&c_mom) {
                assert!((a - b).abs() < 1e-4, "order {j} mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn multi_layer_stats_keep_layers_separate() {
        let l1 = act(10, 3, 4);
        let l2 = act(10, 3, 5).map(|v| v + 5.0);
        let stats = exchange(&[vec![&l1, &l2]], 3);
        assert_eq!(stats.means.len(), 2);
        // Layer 2 was shifted by +5, its mean must reflect that.
        assert!(stats.means[1][0] > stats.means[0][0] + 3.0);
    }

    #[test]
    fn identical_clients_reproduce_their_own_stats() {
        let z = act(20, 4, 6);
        let stats = exchange(&[vec![&z], vec![&z]], 4);
        let own_mean = column_means(&z);
        for (a, b) in stats.means[0].iter().zip(&own_mean) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn targets_align_with_stats() {
        let z = act(15, 4, 7);
        let stats = exchange(&[vec![&z]], 5);
        let targets = build_targets(&stats);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].max_order(), 5);
        assert_eq!(targets[0].mean, stats.means[0]);
    }

    #[test]
    fn uplink_scalar_accounting() {
        let z = act(9, 4, 8);
        let stats = exchange(&[vec![&z, &z]], 5);
        // 2 layers × 4 dims means + 2 layers × 4 orders × 4 dims moments.
        assert_eq!(stats.uplink_scalars(), 2 * 4 + 2 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn empty_exchange_rejected() {
        let _ = exchange(&[], 5);
    }
}
