//! The 2-round statistics exchange of Algorithm 1 (lines 4–18, 25).
//!
//! Round 1: every client uploads its per-layer activation means `M_i^l`
//! and sample count `n_i`; the server returns the weighted global means
//! `M^l = Σ n_i M_i^l / Σ n_i` (Eq. 10).
//!
//! Round 2: every client re-centres its activations on the *global* mean
//! and uploads the central moments `[S_i^l]_j` for `j = 2..=J`; the server
//! returns their weighted averages `[S^l]_j`.
//!
//! Because the weighted average of client moments about a common centre is
//! exactly the pooled moment, the pair `(M^l, [S^l]_j)` equals what a
//! centralised computation over the union of all activations would give —
//! the "implicitly calculate the IID distribution by only 2-round
//! interaction" claim of the paper — which
//! `distributed_protocol_matches_centralized` below verifies.
//!
//! # Streaming accumulators
//!
//! Both reductions are sample-weighted sums, so the server does not need
//! the full set of client payloads in memory at once: [`MeanAccumulator`]
//! and [`MomentAccumulator`] fold one payload at a time
//! (`push(payload, n_samples)`) and divide by the total sample count once
//! at [`finish`](MeanAccumulator::finish). Peak memory is O(model), not
//! O(clients × model) — the property that makes 1k–10k client cohorts
//! possible.
//!
//! Accumulation runs in `f64` across [`AGG_LANES`] fixed lanes: push `i`
//! lands in lane `i % AGG_LANES`, and `finish` folds the lane partials in
//! lane order before the single division. Because the lane an item maps to
//! depends only on its push index — never on thread count or arrival
//! timing — the sequential streaming path, the parallel sharded tree
//! ([`MeanAccumulator::push_batch`] reduces each lane's partial on its own
//! worker), and the batch wrappers ([`aggregate_means`],
//! [`aggregate_means_sharded`]) all build identical lane partials and
//! produce bit-identical results.

use fedomd_autograd::CmdTargets;
use fedomd_tensor::stats::{central_moments_upto, column_means};
use fedomd_tensor::Matrix;
use rayon::prelude::*;
use std::fmt;

/// Number of fixed reduction lanes in the streaming accumulators.
///
/// A constant (rather than the worker-pool width) so the shard-reduction
/// order — and therefore the bit pattern of every aggregate — is the same
/// on every machine and at every parallelism level.
pub const AGG_LANES: usize = 8;

/// Typed failure of a server-side aggregation (replaces the panics the
/// aggregation entry points used to raise on malformed input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// `finish` was called before any payload was pushed (an empty round).
    NoClients,
    /// Every pushed payload reported zero samples, so the weighted average
    /// is undefined.
    ZeroTotalSamples,
    /// A payload's hidden-layer count differs from the first payload's.
    LayerArity { expected: usize, got: usize },
    /// A payload's moment-order count differs from the first payload's.
    OrderArity {
        layer: usize,
        expected: usize,
        got: usize,
    },
    /// A payload's per-layer dimension differs from the first payload's.
    Dimension {
        layer: usize,
        expected: usize,
        got: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NoClients => write!(f, "no clients: nothing was pushed"),
            ProtocolError::ZeroTotalSamples => write!(f, "zero total samples across clients"),
            ProtocolError::LayerArity { expected, got } => {
                write!(f, "layer arity mismatch: expected {expected}, got {got}")
            }
            ProtocolError::OrderArity {
                layer,
                expected,
                got,
            } => write!(
                f,
                "order arity mismatch at layer {layer}: expected {expected}, got {got}"
            ),
            ProtocolError::Dimension {
                layer,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch at layer {layer}: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Server-side result of the exchange: per hidden layer, the global mean
/// and the global central moments (orders `2..=max`).
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalStats {
    /// `means[layer][dim]`.
    pub means: Vec<Vec<f32>>,
    /// `moments[layer][order - 2][dim]`.
    pub moments: Vec<Vec<Vec<f32>>>,
}

impl GlobalStats {
    /// Total scalars a single client uploads across both rounds (means +
    /// moments), for communication accounting.
    pub fn uplink_scalars(&self) -> usize {
        let mean_scalars: usize = self.means.iter().map(|m| m.len()).sum();
        let moment_scalars: usize = self
            .moments
            .iter()
            .map(|layer| layer.iter().map(|o| o.len()).sum::<usize>())
            .sum();
        mean_scalars + moment_scalars
    }
}

/// Client side of round 1: per-layer column means of the hidden
/// activations (Algorithm 1 line 4).
pub fn client_means(hidden: &[&Matrix]) -> Vec<Vec<f32>> {
    hidden.iter().map(|z| column_means(z)).collect()
}

/// Folds one round-1 payload into a lane partial: `acc += n · means`.
fn fold_means(acc: &mut [Vec<f64>], means: &[Vec<f32>], n_samples: usize) {
    let w = n_samples as f64;
    for (lane_layer, layer) in acc.iter_mut().zip(means) {
        for (a, &m) in lane_layer.iter_mut().zip(layer) {
            *a += w * m as f64;
        }
    }
}

/// Streaming fold of round-1 client means (Eq. 10).
///
/// `push` one `(means, n_samples)` payload per client as it arrives —
/// payloads are consumed, never retained — then `finish` to obtain the
/// sample-weighted global means. See the module docs for the lane scheme
/// that keeps streaming, sharded, and batch reductions bit-identical.
#[derive(Clone, Debug, Default)]
pub struct MeanAccumulator {
    /// `lanes[lane][layer][dim]`, f64 partial sums of `Σ n_i · m_i`.
    lanes: Vec<Vec<Vec<f64>>>,
    /// Per-layer dimension, fixed by the first push.
    dims: Vec<usize>,
    total_samples: u64,
    pushed: u64,
}

impl MeanAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Payloads folded so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    fn init_shape(&mut self, means: &[Vec<f32>]) {
        self.dims = means.iter().map(|m| m.len()).collect();
        self.lanes = (0..AGG_LANES)
            .map(|_| self.dims.iter().map(|&d| vec![0.0f64; d]).collect())
            .collect();
    }

    fn check_shape(&self, means: &[Vec<f32>]) -> Result<(), ProtocolError> {
        if means.len() != self.dims.len() {
            return Err(ProtocolError::LayerArity {
                expected: self.dims.len(),
                got: means.len(),
            });
        }
        for (layer, (m, &dim)) in means.iter().zip(&self.dims).enumerate() {
            if m.len() != dim {
                return Err(ProtocolError::Dimension {
                    layer,
                    expected: dim,
                    got: m.len(),
                });
            }
        }
        Ok(())
    }

    /// Folds one client's means, weighted by its sample count. The first
    /// push fixes the expected shape; later pushes are validated against
    /// it (and leave the accumulator untouched when they mismatch).
    pub fn push(&mut self, means: &[Vec<f32>], n_samples: usize) -> Result<(), ProtocolError> {
        if self.pushed == 0 {
            self.init_shape(means);
        } else {
            self.check_shape(means)?;
        }
        let lane = (self.pushed % AGG_LANES as u64) as usize;
        fold_means(&mut self.lanes[lane], means, n_samples);
        self.total_samples += n_samples as u64;
        self.pushed += 1;
        Ok(())
    }

    /// Sharded-tree fold of a batch: each of the [`AGG_LANES`] lanes
    /// reduces its stride of the batch on its own worker, in batch order.
    /// Bit-identical to pushing the batch sequentially, because every item
    /// keeps the lane its global push index assigns it.
    pub fn push_batch(&mut self, batch: &[(Vec<Vec<f32>>, usize)]) -> Result<(), ProtocolError> {
        let Some((first, _)) = batch.first() else {
            return Ok(());
        };
        if self.pushed == 0 {
            self.init_shape(first);
        }
        for (means, _) in batch {
            self.check_shape(means)?;
        }
        let base = (self.pushed % AGG_LANES as u64) as usize;
        self.lanes
            .par_iter_mut()
            .enumerate()
            .for_each(|(lane, acc)| {
                let mut j = (lane + AGG_LANES - base) % AGG_LANES;
                while j < batch.len() {
                    let (means, n) = &batch[j];
                    fold_means(acc, means, *n);
                    j += AGG_LANES;
                }
            });
        for (_, n) in batch {
            self.total_samples += *n as u64;
        }
        self.pushed += batch.len() as u64;
        Ok(())
    }

    /// Folds the lane partials in lane order and divides by the total
    /// sample count: the weighted global means.
    pub fn finish(self) -> Result<Vec<Vec<f32>>, ProtocolError> {
        if self.pushed == 0 {
            return Err(ProtocolError::NoClients);
        }
        if self.total_samples == 0 {
            return Err(ProtocolError::ZeroTotalSamples);
        }
        let total = self.total_samples as f64;
        Ok(self
            .dims
            .iter()
            .enumerate()
            .map(|(l, &dim)| {
                (0..dim)
                    .map(|d| {
                        let mut sum = 0.0f64;
                        for lane in &self.lanes {
                            sum += lane[l][d];
                        }
                        (sum / total) as f32
                    })
                    .collect()
            })
            .collect())
    }
}

/// Server side of round 1 (Eq. 10): sample-weighted average of client
/// means, per layer. Batch wrapper over [`MeanAccumulator`] — the
/// sequential reference the streaming and sharded paths are pinned
/// bit-identical to.
pub fn aggregate_means(
    client_stats: &[(Vec<Vec<f32>>, usize)],
) -> Result<Vec<Vec<f32>>, ProtocolError> {
    let mut acc = MeanAccumulator::new();
    for (means, n) in client_stats {
        acc.push(means, *n)?;
    }
    acc.finish()
}

/// Sharded-tree variant of [`aggregate_means`]: reduces per-lane partials
/// in parallel before the deterministic final fold. Bit-identical to the
/// batch reference.
pub fn aggregate_means_sharded(
    client_stats: &[(Vec<Vec<f32>>, usize)],
) -> Result<Vec<Vec<f32>>, ProtocolError> {
    let mut acc = MeanAccumulator::new();
    acc.push_batch(client_stats)?;
    acc.finish()
}

/// Client side of round 2 (Algorithm 1 lines 12-13): central moments of
/// orders `2..=max_order` about the *global* means.
pub fn client_moments_about(
    hidden: &[&Matrix],
    global_means: &[Vec<f32>],
    max_order: u32,
) -> Vec<Vec<Vec<f32>>> {
    assert_eq!(
        hidden.len(),
        global_means.len(),
        "client_moments_about: layer arity mismatch"
    );
    hidden
        .iter()
        .zip(global_means)
        .map(|(z, m)| central_moments_upto(z, m, max_order))
        .collect()
}

/// Folds one round-2 payload into a lane partial: `acc += n · moments`.
fn fold_moments(acc: &mut [Vec<Vec<f64>>], moments: &[Vec<Vec<f32>>], n_samples: usize) {
    let w = n_samples as f64;
    for (lane_layer, layer) in acc.iter_mut().zip(moments) {
        for (lane_order, order) in lane_layer.iter_mut().zip(layer) {
            for (a, &m) in lane_order.iter_mut().zip(order) {
                *a += w * m as f64;
            }
        }
    }
}

/// Streaming fold of round-2 client central moments — the
/// `moments[layer][order][dim]` counterpart of [`MeanAccumulator`], with
/// the same lane scheme and bit-identity guarantees.
#[derive(Clone, Debug, Default)]
pub struct MomentAccumulator {
    /// `lanes[lane][layer][order][dim]`.
    lanes: Vec<Vec<Vec<Vec<f64>>>>,
    /// `dims[layer][order]`, fixed by the first push.
    dims: Vec<Vec<usize>>,
    total_samples: u64,
    pushed: u64,
}

impl MomentAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Payloads folded so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    fn init_shape(&mut self, moments: &[Vec<Vec<f32>>]) {
        self.dims = moments
            .iter()
            .map(|layer| layer.iter().map(|o| o.len()).collect())
            .collect();
        self.lanes = (0..AGG_LANES)
            .map(|_| {
                self.dims
                    .iter()
                    .map(|layer| layer.iter().map(|&d| vec![0.0f64; d]).collect())
                    .collect()
            })
            .collect();
    }

    fn check_shape(&self, moments: &[Vec<Vec<f32>>]) -> Result<(), ProtocolError> {
        if moments.len() != self.dims.len() {
            return Err(ProtocolError::LayerArity {
                expected: self.dims.len(),
                got: moments.len(),
            });
        }
        for (layer, (got_layer, want_layer)) in moments.iter().zip(&self.dims).enumerate() {
            if got_layer.len() != want_layer.len() {
                return Err(ProtocolError::OrderArity {
                    layer,
                    expected: want_layer.len(),
                    got: got_layer.len(),
                });
            }
            for (o, &dim) in got_layer.iter().zip(want_layer) {
                if o.len() != dim {
                    return Err(ProtocolError::Dimension {
                        layer,
                        expected: dim,
                        got: o.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Folds one client's moments, weighted by its sample count.
    pub fn push(
        &mut self,
        moments: &[Vec<Vec<f32>>],
        n_samples: usize,
    ) -> Result<(), ProtocolError> {
        if self.pushed == 0 {
            self.init_shape(moments);
        } else {
            self.check_shape(moments)?;
        }
        let lane = (self.pushed % AGG_LANES as u64) as usize;
        fold_moments(&mut self.lanes[lane], moments, n_samples);
        self.total_samples += n_samples as u64;
        self.pushed += 1;
        Ok(())
    }

    /// Sharded-tree fold of a batch; see [`MeanAccumulator::push_batch`].
    pub fn push_batch(
        &mut self,
        batch: &[(Vec<Vec<Vec<f32>>>, usize)],
    ) -> Result<(), ProtocolError> {
        let Some((first, _)) = batch.first() else {
            return Ok(());
        };
        if self.pushed == 0 {
            self.init_shape(first);
        }
        for (moments, _) in batch {
            self.check_shape(moments)?;
        }
        let base = (self.pushed % AGG_LANES as u64) as usize;
        self.lanes
            .par_iter_mut()
            .enumerate()
            .for_each(|(lane, acc)| {
                let mut j = (lane + AGG_LANES - base) % AGG_LANES;
                while j < batch.len() {
                    let (moments, n) = &batch[j];
                    fold_moments(acc, moments, *n);
                    j += AGG_LANES;
                }
            });
        for (_, n) in batch {
            self.total_samples += *n as u64;
        }
        self.pushed += batch.len() as u64;
        Ok(())
    }

    /// Folds the lane partials in lane order and divides by the total
    /// sample count: the weighted global moments.
    pub fn finish(self) -> Result<Vec<Vec<Vec<f32>>>, ProtocolError> {
        if self.pushed == 0 {
            return Err(ProtocolError::NoClients);
        }
        if self.total_samples == 0 {
            return Err(ProtocolError::ZeroTotalSamples);
        }
        let total = self.total_samples as f64;
        Ok(self
            .dims
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                layer
                    .iter()
                    .enumerate()
                    .map(|(o, &dim)| {
                        (0..dim)
                            .map(|d| {
                                let mut sum = 0.0f64;
                                for lane in &self.lanes {
                                    sum += lane[l][o][d];
                                }
                                (sum / total) as f32
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect())
    }
}

/// Server side of round 2: sample-weighted average of client moments.
/// Batch wrapper over [`MomentAccumulator`].
pub fn aggregate_moments(
    client_stats: &[(Vec<Vec<Vec<f32>>>, usize)],
) -> Result<Vec<Vec<Vec<f32>>>, ProtocolError> {
    let mut acc = MomentAccumulator::new();
    for (moments, n) in client_stats {
        acc.push(moments, *n)?;
    }
    acc.finish()
}

/// Sharded-tree variant of [`aggregate_moments`]; bit-identical to it.
pub fn aggregate_moments_sharded(
    client_stats: &[(Vec<Vec<Vec<f32>>>, usize)],
) -> Result<Vec<Vec<Vec<f32>>>, ProtocolError> {
    let mut acc = MomentAccumulator::new();
    acc.push_batch(client_stats)?;
    acc.finish()
}

/// Runs the full 2-round protocol over per-client hidden activations and
/// returns the global stats.
pub fn exchange(
    per_client_hidden: &[Vec<&Matrix>],
    max_order: u32,
) -> Result<GlobalStats, ProtocolError> {
    // Round 1.
    let mut mean_acc = MeanAccumulator::new();
    for h in per_client_hidden {
        mean_acc.push(&client_means(h), h.first().map_or(0, |z| z.rows()))?;
    }
    let means = mean_acc.finish()?;
    // Round 2.
    let mut moment_acc = MomentAccumulator::new();
    for h in per_client_hidden {
        moment_acc.push(
            &client_moments_about(h, &means, max_order),
            h.first().map_or(0, |z| z.rows()),
        )?;
    }
    let moments = moment_acc.finish()?;
    Ok(GlobalStats { means, moments })
}

/// Converts global stats into per-layer CMD targets for the loss.
pub fn build_targets(stats: &GlobalStats) -> Vec<CmdTargets> {
    stats
        .means
        .iter()
        .zip(&stats.moments)
        .map(|(mean, moments)| CmdTargets {
            mean: mean.clone(),
            moments: moments.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_tensor::rng::seeded;
    use proptest::prelude::*;
    use rand::Rng;

    fn act(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v.abs() * 0.3)
    }

    #[test]
    fn aggregate_means_is_weighted() {
        let a = (vec![vec![0.0f32, 0.0]], 1usize);
        let b = (vec![vec![3.0f32, 6.0]], 2usize);
        let m = aggregate_means(&[a, b]).expect("two well-formed clients");
        assert!((m[0][0] - 2.0).abs() < 1e-6);
        assert!((m[0][1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn distributed_protocol_matches_centralized() {
        // Three clients with different sizes and distributions; pooled
        // statistics must equal the protocol's output exactly.
        let z1 = act(13, 5, 1);
        let z2 = act(29, 5, 2).map(|v| v + 0.2);
        let z3 = act(7, 5, 3).map(|v| v * 2.0);

        let stats = exchange(&[vec![&z1], vec![&z2], vec![&z3]], 5).expect("3 clients");

        // Centralised: stack all rows.
        let mut pooled = Vec::new();
        pooled.extend_from_slice(z1.as_slice());
        pooled.extend_from_slice(z2.as_slice());
        pooled.extend_from_slice(z3.as_slice());
        let pooled = Matrix::from_vec(13 + 29 + 7, 5, pooled);
        let c_mean = column_means(&pooled);
        for (a, b) in stats.means[0].iter().zip(&c_mean) {
            assert!((a - b).abs() < 1e-5, "mean mismatch: {a} vs {b}");
        }
        for (o, j) in (2u32..=5).enumerate() {
            let c_mom = fedomd_tensor::stats::central_moments(&pooled, &c_mean, j);
            for (a, b) in stats.moments[0][o].iter().zip(&c_mom) {
                assert!((a - b).abs() < 1e-4, "order {j} mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn multi_layer_stats_keep_layers_separate() {
        let l1 = act(10, 3, 4);
        let l2 = act(10, 3, 5).map(|v| v + 5.0);
        let stats = exchange(&[vec![&l1, &l2]], 3).expect("1 client");
        assert_eq!(stats.means.len(), 2);
        // Layer 2 was shifted by +5, its mean must reflect that.
        assert!(stats.means[1][0] > stats.means[0][0] + 3.0);
    }

    #[test]
    fn identical_clients_reproduce_their_own_stats() {
        let z = act(20, 4, 6);
        let stats = exchange(&[vec![&z], vec![&z]], 4).expect("2 clients");
        let own_mean = column_means(&z);
        for (a, b) in stats.means[0].iter().zip(&own_mean) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn targets_align_with_stats() {
        let z = act(15, 4, 7);
        let stats = exchange(&[vec![&z]], 5).expect("1 client");
        let targets = build_targets(&stats);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].max_order(), 5);
        assert_eq!(targets[0].mean, stats.means[0]);
    }

    #[test]
    fn uplink_scalar_accounting() {
        let z = act(9, 4, 8);
        let stats = exchange(&[vec![&z, &z]], 5).expect("1 client");
        // 2 layers × 4 dims means + 2 layers × 4 orders × 4 dims moments.
        assert_eq!(stats.uplink_scalars(), 2 * 4 + 2 * 4 * 4);
    }

    #[test]
    fn empty_exchange_rejected() {
        assert_eq!(exchange(&[], 5).unwrap_err(), ProtocolError::NoClients);
        assert_eq!(aggregate_means(&[]).unwrap_err(), ProtocolError::NoClients);
        assert_eq!(
            aggregate_moments_sharded(&[]).unwrap_err(),
            ProtocolError::NoClients
        );
    }

    #[test]
    fn zero_total_samples_rejected() {
        let stats = vec![(vec![vec![1.0f32, 2.0]], 0usize); 3];
        assert_eq!(
            aggregate_means(&stats).unwrap_err(),
            ProtocolError::ZeroTotalSamples
        );
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let mut acc = MeanAccumulator::new();
        acc.push(&[vec![1.0, 2.0], vec![3.0]], 4)
            .expect("first push");
        assert_eq!(
            acc.push(&[vec![1.0, 2.0]], 4).unwrap_err(),
            ProtocolError::LayerArity {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            acc.push(&[vec![1.0, 2.0], vec![3.0, 4.0]], 4).unwrap_err(),
            ProtocolError::Dimension {
                layer: 1,
                expected: 1,
                got: 2
            }
        );
        // A failed push leaves the accumulator usable.
        acc.push(&[vec![5.0, 6.0], vec![7.0]], 2)
            .expect("well-formed");
        assert_eq!(acc.pushed(), 2);

        let mut macc = MomentAccumulator::new();
        macc.push(&[vec![vec![1.0], vec![2.0]]], 3)
            .expect("first push");
        assert_eq!(
            macc.push(&[vec![vec![1.0]]], 3).unwrap_err(),
            ProtocolError::OrderArity {
                layer: 0,
                expected: 2,
                got: 1
            }
        );
    }

    /// Deterministic per-client payload for the bit-identity proptests.
    fn mean_payload(dims: &[usize], seed: u64) -> Vec<Vec<f32>> {
        let mut rng = seeded(seed);
        dims.iter()
            .map(|&d| (0..d).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect()
    }

    fn moment_payload(dims: &[usize], orders: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
        let mut rng = seeded(seed);
        dims.iter()
            .map(|&d| {
                (0..orders)
                    .map(|_| (0..d).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                    .collect()
            })
            .collect()
    }

    /// Overwrites a few entries with NaN/±∞. The aggregation paths make
    /// no finiteness checks, so a poisoned upload must flow through the
    /// streaming, sharded, and batch folds bit-identically — the same
    /// IEEE operations in the same order — rather than diverging in just
    /// one of them.
    fn poison_slice(values: &mut [f32], seed: u64) {
        const SPECIALS: [f32; 3] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let mut rng = seeded(seed);
        for _ in 0..1 + values.len() / 5 {
            let i = rng.gen_range(0..values.len());
            values[i] = SPECIALS[rng.gen_range(0..SPECIALS.len())];
        }
    }

    proptest! {
        /// The streaming accumulator, the parallel sharded tree, and the
        /// batch reference agree bit for bit on ragged sample counts —
        /// including agreeing on the error when every count is zero.
        #[test]
        fn mean_streaming_sharded_batch_bit_identical(
            seed in 0u64..1_000_000,
            dims in proptest::collection::vec(1usize..6, 1..4),
            samples in proptest::collection::vec(0usize..50, 1..24),
        ) {
            let payloads: Vec<(Vec<Vec<f32>>, usize)> = samples
                .iter()
                .enumerate()
                .map(|(i, &n)| (mean_payload(&dims, seed.wrapping_add(i as u64)), n))
                .collect();

            let batch = aggregate_means(&payloads);
            let sharded = aggregate_means_sharded(&payloads);
            let mut acc = MeanAccumulator::new();
            for (m, n) in &payloads {
                acc.push(m, *n).unwrap();
            }
            let streaming = acc.finish();

            match batch {
                Ok(ref b) => {
                    let s = sharded.unwrap();
                    let t = streaming.unwrap();
                    for l in 0..b.len() {
                        for d in 0..b[l].len() {
                            prop_assert_eq!(b[l][d].to_bits(), s[l][d].to_bits());
                            prop_assert_eq!(b[l][d].to_bits(), t[l][d].to_bits());
                        }
                    }
                }
                Err(e) => {
                    prop_assert_eq!(sharded.unwrap_err(), e);
                    prop_assert_eq!(streaming.unwrap_err(), e);
                }
            }
        }

        #[test]
        fn moment_streaming_sharded_batch_bit_identical(
            seed in 0u64..1_000_000,
            dims in proptest::collection::vec(1usize..5, 1..3),
            orders in 1usize..5,
            samples in proptest::collection::vec(0usize..50, 1..24),
        ) {
            let payloads: Vec<(Vec<Vec<Vec<f32>>>, usize)> = samples
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    (moment_payload(&dims, orders, seed.wrapping_add(i as u64)), n)
                })
                .collect();

            let batch = aggregate_moments(&payloads);
            let sharded = aggregate_moments_sharded(&payloads);
            let mut acc = MomentAccumulator::new();
            for (m, n) in &payloads {
                acc.push(m, *n).unwrap();
            }
            let streaming = acc.finish();

            match batch {
                Ok(ref b) => {
                    let s = sharded.unwrap();
                    let t = streaming.unwrap();
                    for l in 0..b.len() {
                        for o in 0..b[l].len() {
                            for d in 0..b[l][o].len() {
                                prop_assert_eq!(b[l][o][d].to_bits(), s[l][o][d].to_bits());
                                prop_assert_eq!(b[l][o][d].to_bits(), t[l][o][d].to_bits());
                            }
                        }
                    }
                }
                Err(e) => {
                    prop_assert_eq!(sharded.unwrap_err(), e);
                    prop_assert_eq!(streaming.unwrap_err(), e);
                }
            }
        }

        /// Splitting the same stream into arbitrary interleavings of
        /// `push` and `push_batch` never changes the result.
        #[test]
        fn chunked_pushes_match_one_shot(
            seed in 0u64..1_000_000,
            dims in proptest::collection::vec(1usize..5, 1..3),
            samples in proptest::collection::vec(1usize..50, 2..20),
            split in 1usize..19,
        ) {
            let payloads: Vec<(Vec<Vec<f32>>, usize)> = samples
                .iter()
                .enumerate()
                .map(|(i, &n)| (mean_payload(&dims, seed.wrapping_add(i as u64)), n))
                .collect();
            let split = split.min(payloads.len());

            let one_shot = aggregate_means(&payloads).unwrap();

            let mut acc = MeanAccumulator::new();
            for (m, n) in &payloads[..split] {
                acc.push(m, *n).unwrap();
            }
            acc.push_batch(&payloads[split..]).unwrap();
            let mixed = acc.finish().unwrap();

            for l in 0..one_shot.len() {
                for d in 0..one_shot[l].len() {
                    prop_assert_eq!(one_shot[l][d].to_bits(), mixed[l][d].to_bits());
                }
            }
        }

        /// A poisoned mean upload (NaN/±∞ entries) corrupts the
        /// sequential, `push_batch`, sharded, and batch paths identically
        /// — bit for bit, NaN payloads included.
        #[test]
        fn mean_nonfinite_payloads_stay_bit_identical(
            seed in 0u64..1_000_000,
            dims in proptest::collection::vec(1usize..6, 1..4),
            samples in proptest::collection::vec(1usize..50, 2..24),
            victim in 0usize..24,
            split in 1usize..23,
        ) {
            let mut payloads: Vec<(Vec<Vec<f32>>, usize)> = samples
                .iter()
                .enumerate()
                .map(|(i, &n)| (mean_payload(&dims, seed.wrapping_add(i as u64)), n))
                .collect();
            let victim = victim % payloads.len();
            for (l, layer) in payloads[victim].0.iter_mut().enumerate() {
                poison_slice(layer, seed ^ (l as u64 + 1));
            }
            let split = split.min(payloads.len());

            let batch = aggregate_means(&payloads).unwrap();
            let sharded = aggregate_means_sharded(&payloads).unwrap();
            let mut seq = MeanAccumulator::new();
            for (m, n) in &payloads {
                seq.push(m, *n).unwrap();
            }
            let seq = seq.finish().unwrap();
            let mut mixed = MeanAccumulator::new();
            for (m, n) in &payloads[..split] {
                mixed.push(m, *n).unwrap();
            }
            mixed.push_batch(&payloads[split..]).unwrap();
            let mixed = mixed.finish().unwrap();

            for l in 0..batch.len() {
                for d in 0..batch[l].len() {
                    let want = batch[l][d].to_bits();
                    prop_assert_eq!(want, sharded[l][d].to_bits());
                    prop_assert_eq!(want, seq[l][d].to_bits());
                    prop_assert_eq!(want, mixed[l][d].to_bits());
                }
            }
        }

        /// Same pinning for the raw-moment paths: one client uploading
        /// non-finite moments poisons every aggregation path the same way.
        #[test]
        fn moment_nonfinite_payloads_stay_bit_identical(
            seed in 0u64..1_000_000,
            dims in proptest::collection::vec(1usize..5, 1..3),
            orders in 1usize..5,
            samples in proptest::collection::vec(1usize..50, 2..24),
            victim in 0usize..24,
            split in 1usize..23,
        ) {
            let mut payloads: Vec<(Vec<Vec<Vec<f32>>>, usize)> = samples
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    (moment_payload(&dims, orders, seed.wrapping_add(i as u64)), n)
                })
                .collect();
            let victim = victim % payloads.len();
            for (l, layer) in payloads[victim].0.iter_mut().enumerate() {
                for (o, ord) in layer.iter_mut().enumerate() {
                    poison_slice(ord, seed ^ ((l * 8 + o) as u64 + 1));
                }
            }
            let split = split.min(payloads.len());

            let batch = aggregate_moments(&payloads).unwrap();
            let sharded = aggregate_moments_sharded(&payloads).unwrap();
            let mut seq = MomentAccumulator::new();
            for (m, n) in &payloads {
                seq.push(m, *n).unwrap();
            }
            let seq = seq.finish().unwrap();
            let mut mixed = MomentAccumulator::new();
            for (m, n) in &payloads[..split] {
                mixed.push(m, *n).unwrap();
            }
            mixed.push_batch(&payloads[split..]).unwrap();
            let mixed = mixed.finish().unwrap();

            for l in 0..batch.len() {
                for o in 0..batch[l].len() {
                    for d in 0..batch[l][o].len() {
                        let want = batch[l][o][d].to_bits();
                        prop_assert_eq!(want, sharded[l][o][d].to_bits());
                        prop_assert_eq!(want, seq[l][o][d].to_bits());
                        prop_assert_eq!(want, mixed[l][o][d].to_bits());
                    }
                }
            }
        }
    }
}
