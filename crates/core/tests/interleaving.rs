//! Exhaustive interleaving checks for the server's phase collector.
//!
//! `Collector::phase_fold` (driven here through `drive_phase_fold`)
//! promises fold-on-arrival with batch-identical results: whatever order
//! the transport surfaces uploads in — one frame per poll, any
//! permutation, any straggler subset — the weight payloads fold in
//! ascending sender order, bit-identical to folding the batch path's
//! (`drive_phase`) sorted result sequentially. These tests walk the whole
//! small-model state space: every arrival permutation of every arrival
//! subset for n ≤ 5, under both liveness modes (a transport that tracks
//! live peers and one that times out), with n = 6 behind `--ignored`.
//! A third sweep interleaves out-of-phase metrics frames between the
//! weight uploads to exercise the admission filter.
//!
//! The fold accumulator is order-sensitive (`s = s * 0.75 + x` with
//! repeating-fraction inputs), so a wrong fold order changes the bits.

use std::collections::VecDeque;

use fedomd_core::{drive_phase, drive_phase_fold};
use fedomd_transport::{Channel, Envelope, NetStats, Payload, Tensor};

/// A server-side transport mock that surfaces exactly one pre-loaded
/// frame per `server_collect_some` poll — the finest-grained interleaving
/// a transport can produce — and all of them per batch collect.
struct Trickle {
    frames: VecDeque<Envelope>,
    /// `Some(k)`: pretend k live peers (liveness-tracking close);
    /// `None`: no liveness info (deadline close on empty poll).
    live: Option<usize>,
}

impl Channel for Trickle {
    fn upload(&mut self, env: Envelope) -> usize {
        self.frames.push_back(env);
        0
    }

    fn server_collect(&mut self, _round: u64) -> Vec<Envelope> {
        self.frames.drain(..).collect()
    }

    fn server_collect_some(&mut self, _round: u64) -> Vec<Envelope> {
        self.frames.pop_front().into_iter().collect()
    }

    fn download(&mut self, _to: u32, _env: Envelope) -> usize {
        0
    }

    fn client_collect(&mut self, _id: u32, _round: u64) -> Vec<Envelope> {
        Vec::new()
    }

    fn awaited_peers(&self, _round: u64) -> Option<usize> {
        self.live
    }

    fn stats(&self) -> NetStats {
        NetStats::default()
    }
}

const ROUND: u64 = 3;

fn val(id: u32) -> f32 {
    (id as f32 + 1.0) / 3.0
}

fn weight_env(sender: u32) -> Envelope {
    Envelope {
        round: ROUND,
        sender,
        payload: Payload::WeightUpdate {
            params: vec![Tensor {
                rows: 1,
                cols: 1,
                data: vec![val(sender)],
            }],
        },
    }
}

fn metrics_env(sender: u32) -> Envelope {
    Envelope {
        round: ROUND,
        sender,
        payload: Payload::Metrics {
            train_loss: val(sender),
            val_correct: 0,
            val_total: 1,
            test_correct: 0,
            test_total: 1,
        },
    }
}

fn is_weight(env: &Envelope) -> bool {
    matches!(env.payload, Payload::WeightUpdate { .. })
}

fn fold_into(acc: &mut (f32, Vec<u32>), env: Envelope) {
    let Payload::WeightUpdate { params } = &env.payload else {
        panic!("admission filter leaked {}", env.payload.kind());
    };
    acc.0 = acc.0 * 0.75 + params[0].data[0];
    acc.1.push(env.sender);
}

/// All permutations of `items` (Heap's algorithm).
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    fn heap(k: usize, a: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    let mut a = items.to_vec();
    let mut out = Vec::new();
    let n = a.len();
    heap(n, &mut a, &mut out);
    out
}

/// Every subset of `0..n`, as ascending id lists.
fn subsets(n: u32) -> Vec<Vec<u32>> {
    (0u32..1 << n)
        .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
        .collect()
}

/// The oracle: the batch path's sorted collect, folded sequentially.
fn batch_oracle(n: u32, arrived: &[u32]) -> (f32, Vec<u32>) {
    let mut chan = Trickle {
        frames: arrived.iter().map(|&id| weight_env(id)).collect(),
        live: None,
    };
    let got = drive_phase(&mut chan, ROUND, n as usize, is_weight);
    let mut acc = (0.0f32, Vec::new());
    for env in got {
        fold_into(&mut acc, env);
    }
    acc
}

/// Folds one arrival permutation through `drive_phase_fold`.
fn fold_run(n: u32, frames: Vec<Envelope>, live: Option<usize>) -> (usize, (f32, Vec<u32>)) {
    let mut chan = Trickle {
        frames: frames.into(),
        live,
    };
    let candidates: Vec<u32> = (0..n).collect();
    let mut acc = (0.0f32, Vec::new());
    let folded = drive_phase_fold(&mut chan, ROUND, &candidates, is_weight, |env| {
        fold_into(&mut acc, env)
    });
    (folded, acc)
}

fn sweep(n: u32) {
    for arrived in subsets(n) {
        let (want_acc, want_order) = batch_oracle(n, &arrived);
        assert_eq!(want_order, arrived, "batch path must be sender-sorted");
        for perm in permutations(&arrived) {
            let frames: Vec<Envelope> = perm.iter().map(|&id| weight_env(id)).collect();
            // Liveness-tracking close (every live peer reported) and
            // deadline close (empty poll with stragglers missing).
            for live in [Some(arrived.len()), None] {
                let (folded, (acc, order)) = fold_run(n, frames.clone(), live);
                assert_eq!(folded, arrived.len(), "n={n} perm {perm:?} live {live:?}");
                assert_eq!(
                    acc.to_bits(),
                    want_acc.to_bits(),
                    "n={n} perm {perm:?} live {live:?}: fold-on-arrival \
                     diverged from the batch path"
                );
                assert_eq!(
                    order, want_order,
                    "n={n} perm {perm:?} live {live:?}: fold order not \
                     ascending"
                );
            }
        }
    }
}

#[test]
fn all_arrival_orders_and_subsets_match_the_batch_path_up_to_5() {
    for n in 1..=5 {
        sweep(n);
    }
}

#[test]
#[ignore = "3914 collector runs; nightly budget"]
fn all_arrival_orders_and_subsets_match_the_batch_path_at_6() {
    sweep(6);
}

/// Out-of-phase frames interleaved at every position: metrics frames are
/// not admitted by the weight phase's filter and never perturb the fold,
/// wherever they land in the arrival order.
#[test]
fn out_of_phase_frames_never_perturb_the_fold() {
    let n = 3u32;
    let ids: Vec<u32> = (0..n).collect();
    let (want_acc, want_order) = batch_oracle(n, &ids);
    // Permute the mixed sequence of 3 weight + 3 metrics frames by frame
    // index: 6! = 720 arrival orders.
    let index: Vec<u32> = (0..2 * n).collect();
    for perm in permutations(&index) {
        let frames: Vec<Envelope> = perm
            .iter()
            .map(|&k| {
                if k < n {
                    weight_env(k)
                } else {
                    metrics_env(k - n)
                }
            })
            .collect();
        let (folded, (acc, order)) = fold_run(n, frames, Some(n as usize));
        assert_eq!(folded, n as usize, "perm {perm:?}");
        assert_eq!(acc.to_bits(), want_acc.to_bits(), "perm {perm:?}");
        assert_eq!(order, want_order, "perm {perm:?}");
    }
}
