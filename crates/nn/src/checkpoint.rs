//! Model checkpointing: save and restore parameter snapshots as JSON.
//!
//! A downstream deployment trains the federation once (hours at paper
//! scale) and then serves the global model; this module provides the
//! persistence layer — shape-validated on load so a checkpoint from a
//! differently-configured model fails loudly instead of silently
//! mis-assigning weights. Failures are typed ([`CheckpointError`]) so
//! callers — including the run-level checkpoint loader built on top of
//! this module — can distinguish a missing file from a truncated one from
//! a shape clash.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use fedomd_jsonio::{obj, Json};

use crate::model::Model;
use fedomd_tensor::Matrix;

/// Why a checkpoint could not be saved, loaded, or restored.
///
/// The variants partition the failure space along the axis a caller acts
/// on: [`Io`](CheckpointError::Io) is retryable/environmental,
/// [`Parse`](CheckpointError::Parse) means the bytes are not a valid
/// snapshot (e.g. a file truncated by a crash mid-write), and the three
/// mismatch variants mean the snapshot is valid but belongs to a
/// differently-configured run.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// Filesystem failure: open, create, read, write, or rename.
    Io(String),
    /// The bytes are not a valid checkpoint document: malformed or
    /// truncated JSON, missing fields, or inconsistent matrix data.
    Parse(String),
    /// A metadata tag disagrees (architecture, algorithm, seed, ...).
    Mismatch {
        /// Which tag disagreed (e.g. `"architecture"`).
        what: String,
        /// Value carried by the checkpoint.
        found: String,
        /// Value the caller expected.
        expected: String,
    },
    /// The checkpoint carries a different number of parameter matrices
    /// than the target model exposes.
    ArityMismatch {
        /// Parameter count in the checkpoint.
        found: usize,
        /// Parameter count of the target model.
        expected: usize,
    },
    /// One parameter matrix has the wrong shape.
    ShapeMismatch {
        /// Position in the parameter list.
        index: usize,
        /// `(rows, cols)` in the checkpoint.
        found: (usize, usize),
        /// `(rows, cols)` of the target model.
        expected: (usize, usize),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint io: {msg}"),
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse: {msg}"),
            CheckpointError::Mismatch {
                what,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {what} mismatch: found {found:?}, expected {expected:?}"
            ),
            CheckpointError::ArityMismatch { found, expected } => write!(
                f,
                "checkpoint parameter arity mismatch: checkpoint has {found}, model has {expected}"
            ),
            CheckpointError::ShapeMismatch {
                index,
                found,
                expected,
            } => write!(
                f,
                "checkpoint parameter {index} shape mismatch: checkpoint {found:?}, model {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// Wraps an I/O error with the path it concerned.
    fn io(path: &Path, e: std::io::Error) -> Self {
        CheckpointError::Io(format!("{path:?}: {e}"))
    }
}

/// A serialisable parameter snapshot with provenance metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Free-form architecture tag (e.g. `"ortho-gcn/2-hidden/64"`); checked
    /// on [`Checkpoint::restore`] when provided.
    pub architecture: String,
    /// Parameter matrices in the model's aggregation order.
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Captures a model's current parameters.
    pub fn capture(model: &dyn Model, architecture: &str) -> Self {
        Self {
            architecture: architecture.to_string(),
            params: model.params(),
        }
    }

    /// Restores into `model` after verifying arity, shapes, and (when
    /// `expect_architecture` is non-empty) the architecture tag.
    pub fn restore(
        &self,
        model: &mut dyn Model,
        expect_architecture: &str,
    ) -> Result<(), CheckpointError> {
        if !expect_architecture.is_empty() && self.architecture != expect_architecture {
            return Err(CheckpointError::Mismatch {
                what: "architecture".into(),
                found: self.architecture.clone(),
                expected: expect_architecture.into(),
            });
        }
        let current = model.params();
        if current.len() != self.params.len() {
            return Err(CheckpointError::ArityMismatch {
                found: self.params.len(),
                expected: current.len(),
            });
        }
        for (i, (a, b)) in self.params.iter().zip(&current).enumerate() {
            if a.shape() != b.shape() {
                return Err(CheckpointError::ShapeMismatch {
                    index: i,
                    found: a.shape(),
                    expected: b.shape(),
                });
            }
        }
        model.set_params(&self.params);
        Ok(())
    }

    /// The JSON document form.
    pub fn to_json(&self) -> Json {
        obj([
            ("architecture", Json::from(self.architecture.as_str())),
            (
                "params",
                Json::Arr(self.params.iter().map(Matrix::to_json).collect()),
            ),
        ])
    }

    /// Parses the JSON document form (shape invariants re-validated by
    /// the `Matrix` wire format).
    pub fn from_json(doc: &Json) -> Result<Self, CheckpointError> {
        let architecture = doc
            .get("architecture")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                CheckpointError::Parse("missing or invalid field `architecture`".into())
            })?
            .to_string();
        let items = doc
            .get("params")
            .and_then(Json::as_array)
            .ok_or_else(|| CheckpointError::Parse("missing or invalid field `params`".into()))?;
        let params = items
            .iter()
            .map(Matrix::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(CheckpointError::Parse)?;
        Ok(Self {
            architecture,
            params,
        })
    }

    /// Serialises to a JSON writer.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        w.write_all(self.to_json().to_compact().as_bytes())
            .map_err(|e| CheckpointError::Io(format!("write: {e}")))
    }

    /// Deserialises from a JSON reader.
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| CheckpointError::Io(format!("read: {e}")))?;
        let doc = Json::parse(&text).map_err(CheckpointError::Parse)?;
        Self::from_json(&doc)
    }

    /// Saves to a file path atomically (tmp-file + rename), so a crash
    /// mid-save leaves any previous snapshot at `path` intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        fedomd_jsonio::write_atomic(path, &self.to_json().to_compact())
            .map_err(|e| CheckpointError::io(path, e))?;
        Ok(())
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let f = std::fs::File::open(path).map_err(|e| CheckpointError::io(path, e))?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::gcn::Gcn;
    use crate::models::mlp::Mlp;
    use fedomd_tensor::rng::seeded;

    #[test]
    fn roundtrip_through_json_bytes() {
        let model = Gcn::new(5, 8, 3, &mut seeded(1));
        let ckpt = Checkpoint::capture(&model, "gcn/8");
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).expect("write");
        let back = Checkpoint::read_from(buf.as_slice()).expect("read");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn restore_replaces_parameters() {
        let source = Gcn::new(5, 8, 3, &mut seeded(2));
        let mut target = Gcn::new(5, 8, 3, &mut seeded(99));
        let ckpt = Checkpoint::capture(&source, "gcn/8");
        ckpt.restore(&mut target, "gcn/8").expect("restore");
        for (a, b) in target.params().iter().zip(source.params().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn architecture_tag_is_checked() {
        let model = Gcn::new(5, 8, 3, &mut seeded(3));
        let ckpt = Checkpoint::capture(&model, "gcn/8");
        let mut other = Gcn::new(5, 8, 3, &mut seeded(4));
        let err = ckpt.restore(&mut other, "gcn/16").expect_err("must fail");
        assert_eq!(
            err,
            CheckpointError::Mismatch {
                what: "architecture".into(),
                found: "gcn/8".into(),
                expected: "gcn/16".into(),
            }
        );
        // Empty expectation skips the tag check.
        ckpt.restore(&mut other, "").expect("unchecked restore");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let small = Gcn::new(5, 8, 3, &mut seeded(5));
        let ckpt = Checkpoint::capture(&small, "gcn");
        let mut wide = Gcn::new(5, 16, 3, &mut seeded(6));
        let err = ckpt.restore(&mut wide, "").expect_err("must fail");
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let gcn = Gcn::new(5, 8, 3, &mut seeded(7));
        let ckpt = Checkpoint::capture(&gcn, "gcn");
        let mut mlp = Mlp::new(5, 8, 3, &mut seeded(8));
        let err = ckpt.restore(&mut mlp, "").expect_err("must fail");
        assert!(
            matches!(err, CheckpointError::ArityMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupted_payload_fails_to_parse() {
        let model = Gcn::new(3, 4, 2, &mut seeded(9));
        let ckpt = Checkpoint::capture(&model, "gcn");
        let mut json = ckpt.to_json().to_compact();
        // Break the matrix length invariant.
        json = json.replacen("\"rows\":3", "\"rows\":7", 1);
        let err = Checkpoint::read_from(json.as_bytes()).expect_err("must fail");
        match err {
            CheckpointError::Parse(msg) => assert!(msg.contains("does not match shape"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let model = Gcn::new(3, 4, 2, &mut seeded(11));
        let ckpt = Checkpoint::capture(&model, "gcn");
        let json = ckpt.to_json().to_compact();
        let cut = &json[..json.len() / 2];
        let err = Checkpoint::read_from(cut.as_bytes()).expect_err("must fail");
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Checkpoint::load("/nonexistent/fedomd/model.json").expect_err("must fail");
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fedomd-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.json");
        let model = Gcn::new(4, 6, 2, &mut seeded(10));
        let ckpt = Checkpoint::capture(&model, "gcn/6");
        ckpt.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, ckpt);
        let _ = std::fs::remove_file(&path);
    }
}
