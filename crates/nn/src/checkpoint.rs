//! Model checkpointing: save and restore parameter snapshots as JSON.
//!
//! A downstream deployment trains the federation once (hours at paper
//! scale) and then serves the global model; this module provides the
//! persistence layer — shape-validated on load so a checkpoint from a
//! differently-configured model fails loudly instead of silently
//! mis-assigning weights.

use std::io::{Read, Write};
use std::path::Path;

use fedomd_jsonio::{obj, Json};

use crate::model::Model;
use fedomd_tensor::Matrix;

/// A serialisable parameter snapshot with provenance metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Free-form architecture tag (e.g. `"ortho-gcn/2-hidden/64"`); checked
    /// on [`Checkpoint::restore`] when provided.
    pub architecture: String,
    /// Parameter matrices in the model's aggregation order.
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Captures a model's current parameters.
    pub fn capture(model: &dyn Model, architecture: &str) -> Self {
        Self {
            architecture: architecture.to_string(),
            params: model.params(),
        }
    }

    /// Restores into `model` after verifying arity, shapes, and (when
    /// `expect_architecture` is non-empty) the architecture tag.
    pub fn restore(&self, model: &mut dyn Model, expect_architecture: &str) -> Result<(), String> {
        if !expect_architecture.is_empty() && self.architecture != expect_architecture {
            return Err(format!(
                "architecture mismatch: checkpoint is {:?}, expected {:?}",
                self.architecture, expect_architecture
            ));
        }
        let current = model.params();
        if current.len() != self.params.len() {
            return Err(format!(
                "parameter arity mismatch: checkpoint has {}, model has {}",
                self.params.len(),
                current.len()
            ));
        }
        for (i, (a, b)) in self.params.iter().zip(&current).enumerate() {
            if a.shape() != b.shape() {
                return Err(format!(
                    "parameter {i} shape mismatch: checkpoint {:?}, model {:?}",
                    a.shape(),
                    b.shape()
                ));
            }
        }
        model.set_params(&self.params);
        Ok(())
    }

    /// The JSON document form.
    pub fn to_json(&self) -> Json {
        obj([
            ("architecture", Json::from(self.architecture.as_str())),
            (
                "params",
                Json::Arr(self.params.iter().map(Matrix::to_json).collect()),
            ),
        ])
    }

    /// Parses the JSON document form (shape invariants re-validated by
    /// the `Matrix` wire format).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let architecture = doc
            .get("architecture")
            .and_then(Json::as_str)
            .ok_or("checkpoint json: missing or invalid field `architecture`")?
            .to_string();
        let items = doc
            .get("params")
            .and_then(Json::as_array)
            .ok_or("checkpoint json: missing or invalid field `params`")?;
        let params = items
            .iter()
            .map(Matrix::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            architecture,
            params,
        })
    }

    /// Serialises to a JSON writer.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), String> {
        w.write_all(self.to_json().to_compact().as_bytes())
            .map_err(|e| format!("checkpoint write: {e}"))
    }

    /// Deserialises from a JSON reader.
    pub fn read_from(mut r: impl Read) -> Result<Self, String> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| format!("checkpoint read: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("checkpoint read: {e}"))?;
        Self::from_json(&doc)
    }

    /// Saves to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let f = std::fs::File::create(path.as_ref())
            .map_err(|e| format!("checkpoint create {:?}: {e}", path.as_ref()))?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let f = std::fs::File::open(path.as_ref())
            .map_err(|e| format!("checkpoint open {:?}: {e}", path.as_ref()))?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::gcn::Gcn;
    use crate::models::mlp::Mlp;
    use fedomd_tensor::rng::seeded;

    #[test]
    fn roundtrip_through_json_bytes() {
        let model = Gcn::new(5, 8, 3, &mut seeded(1));
        let ckpt = Checkpoint::capture(&model, "gcn/8");
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).expect("write");
        let back = Checkpoint::read_from(buf.as_slice()).expect("read");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn restore_replaces_parameters() {
        let source = Gcn::new(5, 8, 3, &mut seeded(2));
        let mut target = Gcn::new(5, 8, 3, &mut seeded(99));
        let ckpt = Checkpoint::capture(&source, "gcn/8");
        ckpt.restore(&mut target, "gcn/8").expect("restore");
        for (a, b) in target.params().iter().zip(source.params().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn architecture_tag_is_checked() {
        let model = Gcn::new(5, 8, 3, &mut seeded(3));
        let ckpt = Checkpoint::capture(&model, "gcn/8");
        let mut other = Gcn::new(5, 8, 3, &mut seeded(4));
        let err = ckpt.restore(&mut other, "gcn/16").expect_err("must fail");
        assert!(err.contains("architecture mismatch"));
        // Empty expectation skips the tag check.
        ckpt.restore(&mut other, "").expect("unchecked restore");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let small = Gcn::new(5, 8, 3, &mut seeded(5));
        let ckpt = Checkpoint::capture(&small, "gcn");
        let mut wide = Gcn::new(5, 16, 3, &mut seeded(6));
        let err = ckpt.restore(&mut wide, "").expect_err("must fail");
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let gcn = Gcn::new(5, 8, 3, &mut seeded(7));
        let ckpt = Checkpoint::capture(&gcn, "gcn");
        let mut mlp = Mlp::new(5, 8, 3, &mut seeded(8));
        let err = ckpt.restore(&mut mlp, "").expect_err("must fail");
        assert!(err.contains("arity mismatch"), "{err}");
    }

    #[test]
    fn corrupted_payload_fails_to_parse() {
        let model = Gcn::new(3, 4, 2, &mut seeded(9));
        let ckpt = Checkpoint::capture(&model, "gcn");
        let mut json = ckpt.to_json().to_compact();
        // Break the matrix length invariant.
        json = json.replacen("\"rows\":3", "\"rows\":7", 1);
        let err = Checkpoint::read_from(json.as_bytes()).expect_err("must fail");
        assert!(err.contains("does not match shape"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fedomd-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.json");
        let model = Gcn::new(4, 6, 2, &mut seeded(10));
        let ckpt = Checkpoint::capture(&model, "gcn/6");
        ckpt.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, ckpt);
        let _ = std::fs::remove_file(&path);
    }
}
