//! Neural-network layer on top of the autograd tape: the models the paper
//! trains (GCN, MLP, Ortho-GCN, GraphSAGE) and the optimisers that train
//! them.
//!
//! Each model implements [`Model`]: it registers its parameters on a fresh
//! [`fedomd_autograd::Tape`] every step, records its forward pass, and hands
//! back the logits plus the hidden activations `Z^1..Z^{L-1}` that FedOMD's
//! CMD constraint operates on, plus the hidden weight matrices subject to
//! the orthogonality penalty (paper Eq. 6).

pub mod checkpoint;
pub mod model;
pub mod models;
pub mod optim;
pub mod ortho;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use model::{ForwardOut, GraphInput, Model};
pub use models::gcn::Gcn;
pub use models::mlp::Mlp;
pub use models::ortho_gcn::{OrthoGcn, OrthoGcnConfig};
pub use models::sage::GraphSage;
pub use models::sgc::Sgc;
pub use optim::{Adam, AdamState, Optimizer, Sgd};
