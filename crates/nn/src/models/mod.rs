//! The concrete local models of the federation.
//!
//! * [`mlp::Mlp`] — the structure-blind 2-layer perceptron behind the
//!   FedMLP / FedProx / SCAFFOLD baselines.
//! * [`gcn::Gcn`] — the 2-layer GCN behind LocGCN / FedGCN (Kipf & Welling).
//! * [`ortho_gcn::OrthoGcn`] — the paper's local model (its Table 1):
//!   GCNConv in, a stack of OrthoConv hidden layers, GCNConv out.
//! * [`sage::GraphSage`] — the mean-aggregator SAGE used by FedSage+.
//! * [`sgc::Sgc`] — the linearised k-hop model of §4.3's derivation.

pub mod gcn;
pub mod mlp;
pub mod ortho_gcn;
pub mod sage;
pub mod sgc;
