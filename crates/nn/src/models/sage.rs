//! A two-layer GraphSAGE with mean aggregation (paper ref. 12) — the local
//! model inside the FedSage+ baseline. Each layer computes
//! `h = ReLU(X·W_self + Ā·X·W_neigh)` where `Ā` is the row-stochastic
//! (mean) aggregator.

use std::sync::Arc;

use fedomd_autograd::Tape;
use fedomd_sparse::Csr;
use fedomd_tensor::{xavier_uniform, Matrix};
use rand_chacha::ChaCha8Rng;

use crate::model::{ForwardOut, GraphInput, Model};

/// Two SAGE layers with separate self/neighbour weights.
pub struct GraphSage {
    w_self0: Matrix,
    w_neigh0: Matrix,
    w_self1: Matrix,
    w_neigh1: Matrix,
    /// Row-stochastic mean aggregator (kept by the model because the
    /// generic [`GraphInput`] carries the symmetric Ŝ instead).
    mean_agg: Option<Arc<Csr>>,
}

impl GraphSage {
    /// Xavier-initialised SAGE.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            w_self0: xavier_uniform(in_dim, hidden, rng),
            w_neigh0: xavier_uniform(in_dim, hidden, rng),
            w_self1: xavier_uniform(hidden, out_dim, rng),
            w_neigh1: xavier_uniform(hidden, out_dim, rng),
            mean_agg: None,
        }
    }

    /// Installs a row-stochastic aggregator to use instead of the input's
    /// symmetric Ŝ (FedSage+ builds it from the augmented local graph).
    pub fn with_mean_aggregator(mut self, agg: Arc<Csr>) -> Self {
        self.mean_agg = Some(agg);
        self
    }

    fn aggregator(&self, input: &GraphInput) -> Arc<Csr> {
        self.mean_agg.clone().unwrap_or_else(|| input.s.clone())
    }
}

impl Model for GraphSage {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        let agg = self.aggregator(input);
        let x = tape.constant_copied(&input.x);
        let ws0 = tape.param_copied(&self.w_self0);
        let wn0 = tape.param_copied(&self.w_neigh0);
        let ws1 = tape.param_copied(&self.w_self1);
        let wn1 = tape.param_copied(&self.w_neigh1);

        let ax = tape.spmm(agg.clone(), x);
        let h_self = tape.matmul(x, ws0);
        let h_neigh = tape.matmul(ax, wn0);
        let h = tape.add(h_self, h_neigh);
        let h = tape.relu(h);

        let ah = tape.spmm(agg, h);
        let o_self = tape.matmul(h, ws1);
        let o_neigh = tape.matmul(ah, wn1);
        let logits = tape.add(o_self, o_neigh);

        ForwardOut {
            logits,
            hidden: vec![h],
            param_vars: vec![ws0, wn0, ws1, wn1],
            ortho_weight_vars: Vec::new(),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        vec![
            self.w_self0.clone(),
            self.w_neigh0.clone(),
            self.w_self1.clone(),
            self.w_neigh1.clone(),
        ]
    }

    fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(
            params.len(),
            4,
            "GraphSage::set_params: expected 4 matrices"
        );
        let shapes = [
            self.w_self0.shape(),
            self.w_neigh0.shape(),
            self.w_self1.shape(),
            self.w_neigh1.shape(),
        ];
        for (p, s) in params.iter().zip(shapes) {
            assert_eq!(p.shape(), s, "GraphSage::set_params: shape mismatch");
        }
        self.w_self0 = params[0].clone();
        self.w_neigh0 = params[1].clone();
        self.w_self1 = params[2].clone();
        self.w_neigh1 = params[3].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests_support::{ring_input, train_to_fit};
    use fedomd_sparse::row_normalized_adjacency;
    use fedomd_tensor::rng::seeded;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(0);
        let m = GraphSage::new(4, 8, 3, &mut rng);
        let input = ring_input(6, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        assert_eq!(tape.value(out.logits).shape(), (6, 3));
        assert_eq!(out.param_vars.len(), 4);
    }

    #[test]
    fn custom_mean_aggregator_is_used() {
        let mut rng = seeded(1);
        let input = ring_input(6, 4);
        // A path (not the ring): degrees differ, so the row-stochastic
        // aggregator genuinely differs from the input's symmetric Ŝ.
        let agg = Arc::new(row_normalized_adjacency(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        ));
        let base = GraphSage::new(4, 8, 3, &mut rng);
        let snap = base.params();
        let mut with_agg = GraphSage::new(4, 8, 3, &mut seeded(1)).with_mean_aggregator(agg);
        with_agg.set_params(&snap);

        let mut t1 = Tape::new();
        let o1 = base.forward(&mut t1, &input);
        let mut t2 = Tape::new();
        let o2 = with_agg.forward(&mut t2, &input);
        // Different aggregators must change the logits.
        let d = fedomd_tensor::ops::sq_distance(t1.value(o1.logits), t2.value(o2.logits));
        assert!(d > 1e-8, "aggregator had no effect");
    }

    #[test]
    fn sage_learns_separable_labels() {
        let mut rng = seeded(2);
        let m = GraphSage::new(4, 16, 2, &mut rng);
        let acc = train_to_fit(Box::new(m), 4, 2, 200, 0.05);
        assert!(acc > 0.9, "SAGE failed to fit: acc {acc}");
    }
}
