//! The 2-layer graph convolutional network of Kipf & Welling (paper
//! reference 17) — the local model behind the LocGCN and FedGCN baselines:
//! `logits = Ŝ · ReLU(Ŝ·X·W₀) · W₁`.

use fedomd_autograd::Tape;
use fedomd_tensor::{xavier_uniform, Matrix};
use rand_chacha::ChaCha8Rng;

use crate::model::{ForwardOut, GraphInput, Model};

/// Two-layer GCN without biases (the standard Planetoid configuration).
pub struct Gcn {
    w0: Matrix,
    w1: Matrix,
}

impl Gcn {
    /// Xavier-initialised GCN.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            w0: xavier_uniform(in_dim, hidden, rng),
            w1: xavier_uniform(hidden, out_dim, rng),
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.w0.cols()
    }
}

impl Model for Gcn {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        // First propagation Ŝ·X is cached in the input.
        let sx = tape.constant_copied(&input.sx);
        let w0 = tape.param_copied(&self.w0);
        let w1 = tape.param_copied(&self.w1);

        let h = tape.matmul(sx, w0);
        let h = tape.relu(h);
        let hp = tape.spmm(input.s.clone(), h);
        let logits = tape.matmul(hp, w1);

        ForwardOut {
            logits,
            hidden: vec![h],
            param_vars: vec![w0, w1],
            ortho_weight_vars: Vec::new(),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        vec![self.w0.clone(), self.w1.clone()]
    }

    fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(params.len(), 2, "Gcn::set_params: expected 2 matrices");
        assert_eq!(
            params[0].shape(),
            self.w0.shape(),
            "Gcn::set_params: w0 shape"
        );
        assert_eq!(
            params[1].shape(),
            self.w1.shape(),
            "Gcn::set_params: w1 shape"
        );
        self.w0 = params[0].clone();
        self.w1 = params[1].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests_support::{ring_input, train_to_fit};
    use fedomd_tensor::rng::seeded;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(0);
        let m = Gcn::new(4, 8, 3, &mut rng);
        let input = ring_input(7, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        assert_eq!(tape.value(out.logits).shape(), (7, 3));
        assert_eq!(out.hidden.len(), 1);
        assert_eq!(out.param_vars.len(), 2);
    }

    #[test]
    fn gcn_learns_separable_labels() {
        let mut rng = seeded(1);
        let m = Gcn::new(4, 16, 2, &mut rng);
        let acc = train_to_fit(Box::new(m), 4, 2, 200, 0.1);
        assert!(acc > 0.9, "GCN failed to fit: acc {acc}");
    }

    #[test]
    fn uses_cached_sx() {
        // Forward through the tape must equal a hand-rolled dense forward.
        let mut rng = seeded(2);
        let m = Gcn::new(3, 4, 2, &mut rng);
        let input = ring_input(5, 3);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);

        let h = fedomd_tensor::activation::relu(&fedomd_tensor::gemm::matmul(&input.sx, &m.w0));
        let hp = input.s.spmm(&h);
        let logits = fedomd_tensor::gemm::matmul(&hp, &m.w1);
        tape.value(out.logits).assert_close(&logits, 1e-5);
    }

    #[test]
    #[should_panic(expected = "expected 2 matrices")]
    fn set_params_arity_checked() {
        let mut rng = seeded(3);
        let mut m = Gcn::new(3, 4, 2, &mut rng);
        m.set_params(&[]);
    }
}
