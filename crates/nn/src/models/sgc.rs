//! Simple Graph Convolution (Wu et al. 2019, the paper's reference 32).
//!
//! §4.3 derives its orthogonality argument "without considering the
//! activation function ... as SGC did": the `k`-hop propagation collapses
//! to a single linear map `logits = Ŝᵏ · X · W`. SGC is both the
//! linearised analysis model behind the paper's Eq. 5 derivation and a
//! strong cheap baseline, so it is provided as a first-class model.

use std::sync::Arc;

use fedomd_autograd::Tape;
use fedomd_tensor::{xavier_uniform, Matrix};
use rand_chacha::ChaCha8Rng;

use crate::model::{ForwardOut, GraphInput, Model};

/// `logits = Ŝᵏ·X·W` with the propagation `Ŝᵏ·X` precomputed per client.
pub struct Sgc {
    w: Matrix,
    hops: usize,
    /// Cache of `Ŝᵏ·X` keyed by the input's feature matrix pointer; rebuilt
    /// when the client input changes.
    cache: std::sync::Mutex<Option<(usize, Arc<Matrix>)>>,
}

impl Sgc {
    /// Xavier-initialised SGC with `hops` propagation steps (k ≥ 1).
    pub fn new(in_dim: usize, out_dim: usize, hops: usize, rng: &mut ChaCha8Rng) -> Self {
        assert!(hops >= 1, "Sgc: hops must be >= 1");
        Self {
            w: xavier_uniform(in_dim, out_dim, rng),
            hops,
            cache: std::sync::Mutex::new(None),
        }
    }

    /// Number of propagation hops `k`.
    pub fn hops(&self) -> usize {
        self.hops
    }

    fn propagated(&self, input: &GraphInput) -> Arc<Matrix> {
        let key = Arc::as_ptr(&input.x) as usize;
        let mut cache = self.cache.lock().expect("sgc cache lock");
        if let Some((k, m)) = cache.as_ref() {
            if *k == key {
                return m.clone();
            }
        }
        // Ŝᵏ·X, reusing the cached Ŝ·X for the first hop.
        let mut sx = (*input.sx).clone();
        for _ in 1..self.hops {
            sx = input.s.spmm(&sx);
        }
        let out = Arc::new(sx);
        *cache = Some((key, out.clone()));
        out
    }
}

impl Model for Sgc {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        let skx = tape.constant_copied(&self.propagated(input));
        let w = tape.param_copied(&self.w);
        let logits = tape.matmul(skx, w);
        ForwardOut {
            logits,
            // SGC has no nonlinear hidden layer; expose the propagated
            // features (what the CMD constraint would see) as "hidden".
            hidden: vec![skx],
            param_vars: vec![w],
            ortho_weight_vars: Vec::new(),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        vec![self.w.clone()]
    }

    fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(params.len(), 1, "Sgc::set_params: expected 1 matrix");
        assert_eq!(
            params[0].shape(),
            self.w.shape(),
            "Sgc::set_params: shape mismatch"
        );
        self.w = params[0].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests_support::{ring_input, train_to_fit};
    use fedomd_tensor::rng::seeded;

    #[test]
    fn forward_is_linear_in_propagated_features() {
        let mut rng = seeded(0);
        let m = Sgc::new(4, 3, 2, &mut rng);
        let input = ring_input(6, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        // Hand-rolled Ŝ²·X·W.
        let s2x = input.s.spmm(&input.sx);
        let expected = fedomd_tensor::gemm::matmul(&s2x, &m.w);
        tape.value(out.logits).assert_close(&expected, 1e-5);
    }

    #[test]
    fn one_hop_equals_cached_sx() {
        let mut rng = seeded(1);
        let m = Sgc::new(4, 2, 1, &mut rng);
        let input = ring_input(5, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        let expected = fedomd_tensor::gemm::matmul(&input.sx, &m.w);
        tape.value(out.logits).assert_close(&expected, 1e-6);
    }

    #[test]
    fn cache_is_reused_across_forwards() {
        let mut rng = seeded(2);
        let m = Sgc::new(4, 2, 3, &mut rng);
        let input = ring_input(5, 4);
        let a = m.propagated(&input);
        let b = m.propagated(&input);
        assert!(Arc::ptr_eq(&a, &b), "cache missed on identical input");
    }

    #[test]
    fn sgc_learns_separable_labels() {
        let mut rng = seeded(3);
        let m = Sgc::new(4, 2, 2, &mut rng);
        let acc = train_to_fit(Box::new(m), 4, 2, 200, 0.2);
        assert!(acc > 0.85, "SGC failed to fit: acc {acc}");
    }

    #[test]
    #[should_panic(expected = "hops must be >= 1")]
    fn zero_hops_rejected() {
        let _ = Sgc::new(2, 2, 0, &mut seeded(4));
    }
}
