//! The paper's local model (its Table 1): a GCNConv input layer, a stack of
//! OrthoConv hidden layers, and a GCNConv output layer.
//!
//! An OrthoConv propagates `Z ← ReLU(Ŝ · Z · W̃_k)` where `W̃_k` is the
//! hidden weight re-scaled to the Frobenius norm of an orthonormal matrix
//! (`√d_h`), the "spectral bounding normalization" `Q̃ = Q/‖Q‖_F` of §4.3.
//! Orthogonality itself is maintained by (a) the soft penalty of Eq. 6,
//! applied by the trainer to [`ForwardOut::ortho_weight_vars`], and (b) a
//! periodic Newton–Schulz projection in [`Model::post_step`]. The
//! normalisation factor is treated as a constant of the step
//! (stop-gradient), as weight-norm style parameterisations do.

use fedomd_autograd::Tape;
use fedomd_tensor::{xavier_uniform, Matrix};
use rand_chacha::ChaCha8Rng;

use crate::model::{ForwardOut, GraphInput, Model};
use crate::ortho::newton_schulz;

/// Hyper-parameters of the Ortho-GCN stack.
#[derive(Clone, Copy, Debug)]
pub struct OrthoGcnConfig {
    /// Input feature dimension `d_i`.
    pub in_dim: usize,
    /// Hidden width `d_h` (paper: 64).
    pub hidden_dim: usize,
    /// Output classes `d_o`.
    pub out_dim: usize,
    /// Number of OrthoConv hidden layers (paper default: 2; swept 2..10 in
    /// its Table 7).
    pub hidden_layers: usize,
    /// Run Newton–Schulz every this many optimiser steps (0 disables).
    pub ns_interval: usize,
    /// Newton–Schulz iterations per projection.
    pub ns_iters: usize,
}

impl OrthoGcnConfig {
    /// The paper's defaults: 64 hidden units, 2 OrthoConv layers.
    pub fn paper(in_dim: usize, out_dim: usize) -> Self {
        Self {
            in_dim,
            hidden_dim: 64,
            out_dim,
            hidden_layers: 2,
            ns_interval: 10,
            ns_iters: 3,
        }
    }
}

/// The Ortho-GCN model.
pub struct OrthoGcn {
    cfg: OrthoGcnConfig,
    w_in: Matrix,
    hidden_ws: Vec<Matrix>,
    w_out: Matrix,
    steps: usize,
}

impl OrthoGcn {
    /// Xavier-initialised Ortho-GCN; hidden weights start Newton–Schulz
    /// orthogonalised so the Eq. 6 penalty begins near its minimum.
    pub fn new(cfg: OrthoGcnConfig, rng: &mut ChaCha8Rng) -> Self {
        assert!(
            cfg.hidden_layers >= 1,
            "OrthoGcn: need at least one hidden layer"
        );
        let w_in = xavier_uniform(cfg.in_dim, cfg.hidden_dim, rng);
        let hidden_ws = (1..cfg.hidden_layers)
            .map(|_| newton_schulz(&xavier_uniform(cfg.hidden_dim, cfg.hidden_dim, rng), 20))
            .collect();
        let w_out = xavier_uniform(cfg.hidden_dim, cfg.out_dim, rng);
        Self {
            cfg,
            w_in,
            hidden_ws,
            w_out,
            steps: 0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &OrthoGcnConfig {
        &self.cfg
    }

    /// Number of OrthoConv layers actually present.
    pub fn n_ortho_layers(&self) -> usize {
        self.hidden_ws.len()
    }
}

impl Model for OrthoGcn {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        let sx = tape.constant_copied(&input.sx);
        let w_in = tape.param_copied(&self.w_in);

        // Layer 1 (GCNConv): Z¹ = ReLU(Ŝ·X·W⁰); Ŝ·X is cached.
        let mut z = tape.matmul(sx, w_in);
        z = tape.relu(z);

        let mut hidden = vec![z];
        let mut param_vars = vec![w_in];
        let mut ortho_weight_vars = Vec::with_capacity(self.hidden_ws.len());

        // OrthoConv stack: Z ← ReLU(Ŝ·Z·W̃_k).
        let target = (self.cfg.hidden_dim as f32).sqrt();
        for wk in &self.hidden_ws {
            let norm = wk.frobenius_norm().max(1e-12);
            let wv = tape.param_copied(wk);
            param_vars.push(wv);
            ortho_weight_vars.push(wv);

            let zw = tape.matmul(z, wv);
            let zw = tape.scale(zw, target / norm);
            let zp = tape.spmm(input.s.clone(), zw);
            z = tape.relu(zp);
            hidden.push(z);
        }

        // Output layer (GCNConv): logits = Ŝ·Z^{l-1}·W^{l-1}. Softmax is
        // folded into the cross-entropy loss op.
        let w_out = tape.param_copied(&self.w_out);
        param_vars.push(w_out);
        let zw = tape.matmul(z, w_out);
        let logits = tape.spmm(input.s.clone(), zw);

        ForwardOut {
            logits,
            hidden,
            param_vars,
            ortho_weight_vars,
        }
    }

    fn params(&self) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(self.hidden_ws.len() + 2);
        out.push(self.w_in.clone());
        out.extend(self.hidden_ws.iter().cloned());
        out.push(self.w_out.clone());
        out
    }

    fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(
            params.len(),
            self.hidden_ws.len() + 2,
            "OrthoGcn::set_params: expected {} matrices",
            self.hidden_ws.len() + 2
        );
        assert_eq!(
            params[0].shape(),
            self.w_in.shape(),
            "OrthoGcn::set_params: w_in shape"
        );
        self.w_in = params[0].clone();
        for (i, wk) in self.hidden_ws.iter_mut().enumerate() {
            assert_eq!(
                params[i + 1].shape(),
                wk.shape(),
                "OrthoGcn::set_params: hidden shape"
            );
            *wk = params[i + 1].clone();
        }
        let last = params.len() - 1;
        assert_eq!(
            params[last].shape(),
            self.w_out.shape(),
            "OrthoGcn::set_params: w_out shape"
        );
        self.w_out = params[last].clone();
    }

    fn post_step(&mut self) {
        self.steps += 1;
        if self.cfg.ns_interval > 0 && self.steps.is_multiple_of(self.cfg.ns_interval) {
            for wk in &mut self.hidden_ws {
                *wk = newton_schulz(wk, self.cfg.ns_iters);
            }
        }
    }

    // The step counter drives the periodic Newton–Schulz pass above, so it
    // is part of the model's resumable state: restoring parameters without
    // it would shift the NS cadence of a resumed run.
    fn steps(&self) -> usize {
        self.steps
    }

    fn set_steps(&mut self, steps: usize) {
        self.steps = steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests_support::{ring_input, train_to_fit};
    use crate::ortho::orthogonality_residual;
    use fedomd_tensor::rng::seeded;

    fn cfg(hidden_layers: usize) -> OrthoGcnConfig {
        OrthoGcnConfig {
            in_dim: 4,
            hidden_dim: 8,
            out_dim: 3,
            hidden_layers,
            ns_interval: 5,
            ns_iters: 3,
        }
    }

    #[test]
    fn forward_shapes_match_table1() {
        let mut rng = seeded(0);
        let m = OrthoGcn::new(cfg(3), &mut rng);
        let input = ring_input(9, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        assert_eq!(tape.value(out.logits).shape(), (9, 3));
        // hidden layers: Z¹ plus one per OrthoConv (hidden_layers - 1 of them).
        assert_eq!(out.hidden.len(), 3);
        for h in &out.hidden {
            assert_eq!(tape.value(*h).shape(), (9, 8));
        }
        // params: w_in + 2 hidden + w_out.
        assert_eq!(out.param_vars.len(), 4);
        assert_eq!(out.ortho_weight_vars.len(), 2);
    }

    #[test]
    fn single_hidden_layer_has_no_ortho_convs() {
        let mut rng = seeded(1);
        let m = OrthoGcn::new(cfg(1), &mut rng);
        assert_eq!(m.n_ortho_layers(), 0);
        let input = ring_input(5, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        assert!(out.ortho_weight_vars.is_empty());
        assert_eq!(out.hidden.len(), 1);
    }

    #[test]
    fn init_is_near_orthogonal() {
        let mut rng = seeded(2);
        let m = OrthoGcn::new(cfg(4), &mut rng);
        for wk in &m.hidden_ws {
            let r = orthogonality_residual(wk);
            assert!(r < 0.35, "init residual {r} too large");
        }
    }

    #[test]
    fn post_step_reorthogonalises() {
        let mut rng = seeded(3);
        let mut m = OrthoGcn::new(cfg(2), &mut rng);
        // Corrupt the hidden weight badly.
        m.hidden_ws[0] = m.hidden_ws[0].map(|v| v * 3.0 + 0.1);
        let before = orthogonality_residual(&m.hidden_ws[0]);
        for _ in 0..5 {
            m.post_step();
        }
        let after = orthogonality_residual(&m.hidden_ws[0]);
        assert!(
            after < before,
            "NS projection did not improve: {before} -> {after}"
        );
    }

    #[test]
    fn ortho_gcn_learns_separable_labels() {
        let mut rng = seeded(4);
        let m = OrthoGcn::new(
            OrthoGcnConfig {
                in_dim: 4,
                hidden_dim: 16,
                out_dim: 2,
                hidden_layers: 2,
                ns_interval: 0,
                ns_iters: 0,
            },
            &mut rng,
        );
        let acc = train_to_fit(Box::new(m), 4, 2, 200, 0.1);
        assert!(acc > 0.9, "OrthoGcn failed to fit: acc {acc}");
    }

    #[test]
    fn deep_stack_keeps_activations_alive() {
        // The depth-robustness claim of the paper's Table 7: with
        // orthogonal hidden weights a 9-OrthoConv stack must not collapse
        // activations to zero.
        let mut rng = seeded(5);
        let m = OrthoGcn::new(
            OrthoGcnConfig {
                in_dim: 4,
                hidden_dim: 8,
                out_dim: 3,
                hidden_layers: 10,
                ns_interval: 0,
                ns_iters: 0,
            },
            &mut rng,
        );
        let input = ring_input(12, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        let last = tape.value(*out.hidden.last().expect("has hidden"));
        assert!(last.all_finite());
        assert!(
            last.max_abs() > 1e-4,
            "activations collapsed: {}",
            last.max_abs()
        );
        assert!(
            last.max_abs() < 1e4,
            "activations exploded: {}",
            last.max_abs()
        );
    }

    #[test]
    fn params_roundtrip_preserves_arity() {
        let mut rng = seeded(6);
        let m = OrthoGcn::new(cfg(3), &mut rng);
        let snap = m.params();
        assert_eq!(snap.len(), 4);
        let mut m2 = OrthoGcn::new(cfg(3), &mut seeded(60));
        m2.set_params(&snap);
        for (a, b) in m2.params().iter().zip(&snap) {
            assert_eq!(a, b);
        }
    }
}
