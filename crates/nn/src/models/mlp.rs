//! A 2-layer multi-layer perceptron: the paper's FedMLP local model
//! ("a 2-layer multi-layer perception model with a hidden dimension of
//! 64"), which ignores the graph entirely.

use fedomd_autograd::Tape;
use fedomd_tensor::{xavier_uniform, Matrix};
use rand_chacha::ChaCha8Rng;

use crate::model::{ForwardOut, GraphInput, Model};

/// `logits = ReLU(X·W1 + b1)·W2 + b2`.
pub struct Mlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
}

impl Mlp {
    /// Xavier-initialised MLP.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            w1: xavier_uniform(in_dim, hidden, rng),
            b1: Matrix::zeros(1, hidden),
            w2: xavier_uniform(hidden, out_dim, rng),
            b2: Matrix::zeros(1, out_dim),
        }
    }
}

impl Model for Mlp {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        let x = tape.constant_copied(&input.x);
        let w1 = tape.param_copied(&self.w1);
        let b1 = tape.param_copied(&self.b1);
        let w2 = tape.param_copied(&self.w2);
        let b2 = tape.param_copied(&self.b2);

        let h = tape.matmul(x, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let logits = tape.matmul(h, w2);
        let logits = tape.add_bias(logits, b2);

        ForwardOut {
            logits,
            hidden: vec![h],
            param_vars: vec![w1, b1, w2, b2],
            ortho_weight_vars: Vec::new(),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        vec![
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]
    }

    fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(params.len(), 4, "Mlp::set_params: expected 4 matrices");
        assert_eq!(
            params[0].shape(),
            self.w1.shape(),
            "Mlp::set_params: w1 shape"
        );
        assert_eq!(
            params[1].shape(),
            self.b1.shape(),
            "Mlp::set_params: b1 shape"
        );
        assert_eq!(
            params[2].shape(),
            self.w2.shape(),
            "Mlp::set_params: w2 shape"
        );
        assert_eq!(
            params[3].shape(),
            self.b2.shape(),
            "Mlp::set_params: b2 shape"
        );
        self.w1 = params[0].clone();
        self.b1 = params[1].clone();
        self.w2 = params[2].clone();
        self.b2 = params[3].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests_support::{ring_input, train_to_fit};
    use fedomd_tensor::rng::seeded;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(0);
        let m = Mlp::new(4, 8, 3, &mut rng);
        let input = ring_input(6, 4);
        let mut tape = Tape::new();
        let out = m.forward(&mut tape, &input);
        assert_eq!(tape.value(out.logits).shape(), (6, 3));
        assert_eq!(out.hidden.len(), 1);
        assert_eq!(tape.value(out.hidden[0]).shape(), (6, 8));
        assert_eq!(out.param_vars.len(), 4);
        assert!(out.ortho_weight_vars.is_empty());
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = seeded(1);
        let mut m = Mlp::new(3, 5, 2, &mut rng);
        let snap = m.params();
        let mut m2 = Mlp::new(3, 5, 2, &mut seeded(99));
        m2.set_params(&snap);
        for (a, b) in m2.params().iter().zip(&snap) {
            assert_eq!(a, b);
        }
        assert_eq!(m.n_scalars(), 3 * 5 + 5 + 5 * 2 + 2);
        m.set_params(&snap);
    }

    #[test]
    fn mlp_learns_linearly_separable_labels() {
        let mut rng = seeded(2);
        let m = Mlp::new(4, 16, 2, &mut rng);
        let acc = train_to_fit(Box::new(m), 4, 2, 150, 0.05);
        assert!(acc > 0.9, "MLP failed to fit separable data: acc {acc}");
    }
}
