//! Optimisers: SGD with momentum and Adam, both with decoupled weight
//! decay (the paper fixes weight decay to 1e-4, §5.1).

use fedomd_tensor::Matrix;

/// A first-order optimiser over a flat list of parameter matrices.
pub trait Optimizer: Send {
    /// Applies one update. `params` and `grads` must be aligned and keep
    /// the same arity/shapes across calls (state is positional).
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]);

    /// Clears momentum/moment state (used when a client receives fresh
    /// global weights and local state is stale).
    fn reset(&mut self);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self::with_momentum(lr, 0.0, weight_decay)
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "Sgd::step: arity mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            assert_eq!(p.shape(), g.shape(), "Sgd::step: shape mismatch");
            for ((pv, &gv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(v.as_mut_slice())
            {
                let eff = gv + self.weight_decay * *pv;
                *vv = self.momentum * *vv + eff;
                *pv -= self.lr * *vv;
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

/// The moment state of an [`Adam`] optimiser, exportable for run
/// checkpoints. A freshly constructed `Adam` has `t = 0` and empty moment
/// lists (state is allocated lazily on the first step).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamState {
    /// Step counter driving bias correction.
    pub t: u64,
    /// First-moment estimates, aligned with the parameter list.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, aligned with the parameter list.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Snapshots the mutable state (step counter and both moment lists).
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a snapshot taken by [`Adam::state`]. The moment lists must
    /// be aligned with the parameters of the upcoming [`Optimizer::step`]
    /// calls — a mismatched arity triggers the lazy re-initialisation path
    /// and silently discards the restored moments.
    ///
    /// # Panics
    /// Panics when `m` and `v` have different arity.
    pub fn set_state(&mut self, state: AdamState) {
        assert_eq!(
            state.m.len(),
            state.v.len(),
            "AdamState: m/v arity mismatch"
        );
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "Adam::step: arity mismatch");
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            assert_eq!(p.shape(), g.shape(), "Adam::step: shape mismatch");
            for (((pv, &gv), mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                // Decoupled weight decay, applied directly to the weights.
                *pv -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *pv);
            }
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(w) = 0.5‖w − target‖² with gradient (w − target).
    fn converges(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let mut params = vec![Matrix::zeros(2, 2)];
        for _ in 0..steps {
            let grad = fedomd_tensor::ops::sub(&params[0], &target);
            opt.step(&mut params, &[grad]);
        }
        fedomd_tensor::ops::sub(&params[0], &target).frobenius_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.2, 0.0);
        assert!(converges(&mut opt, 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        assert!(converges(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        assert!(converges(&mut opt, 500) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights_under_zero_gradient() {
        let mut opt = Sgd::new(0.1, 0.5);
        let mut params = vec![Matrix::full(1, 1, 1.0)];
        let zero_grad = vec![Matrix::zeros(1, 1)];
        for _ in 0..10 {
            opt.step(&mut params, &zero_grad);
        }
        assert!(params[0][(0, 0)] < 1.0);
        assert!(params[0][(0, 0)] > 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1, 0.0);
        let mut params = vec![Matrix::zeros(1, 1)];
        opt.step(&mut params, &[Matrix::full(1, 1, 1.0)]);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    fn adam_state_roundtrip_continues_identically() {
        // Two optimisers: one steps straight through, the other is
        // snapshotted halfway and restored into a fresh instance. Their
        // trajectories must match bit for bit.
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let step = |opt: &mut Adam, params: &mut Vec<Matrix>| {
            let grad = fedomd_tensor::ops::sub(&params[0], &target);
            opt.step(params, &[grad]);
        };

        let mut full = Adam::new(0.1, 1e-4);
        let mut full_params = vec![Matrix::zeros(2, 2)];
        for _ in 0..10 {
            step(&mut full, &mut full_params);
        }

        let mut head = Adam::new(0.1, 1e-4);
        let mut params = vec![Matrix::zeros(2, 2)];
        for _ in 0..5 {
            step(&mut head, &mut params);
        }
        let snap = head.state();
        assert_eq!(snap.t, 5);
        let mut tail = Adam::new(0.1, 1e-4);
        tail.set_state(snap);
        for _ in 0..5 {
            step(&mut tail, &mut params);
        }

        assert_eq!(params, full_params);
        assert_eq!(tail.state(), full.state());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn step_rejects_arity_mismatch() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut params = vec![Matrix::zeros(1, 1)];
        opt.step(&mut params, &[]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
