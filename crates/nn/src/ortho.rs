//! Orthogonalisation utilities for the Ortho-GCN hidden weights.
//!
//! The paper (§4.3) derives its propagation operator `Q̃ = Q/‖Q‖_F` from a
//! Newton-iteration solve lifted from Ortho-GCN (paper reference 11). We realise the same
//! two requirements — near-orthogonal hidden weights and a spectrally
//! bounded propagation — with (a) the soft penalty `‖WWᵀ − I‖_F` inside the
//! loss (Eq. 6), (b) periodic Newton–Schulz projection of the weights onto
//! the (approximate) Stiefel manifold, and (c) Frobenius re-scaling at
//! forward time so `‖W̃‖_F = √d` exactly matches an orthonormal `d × d`
//! matrix. See DESIGN.md §3 for the substitution note.

use fedomd_tensor::gemm::{matmul, matmul_nt};
use fedomd_tensor::Matrix;

/// One Newton–Schulz iteration: `W ← 1.5·W − 0.5·W·Wᵀ·W`.
///
/// Converges quadratically to the nearest (semi-)orthogonal matrix when the
/// spectral norm of `W` is below √3; callers should pre-scale (see
/// [`newton_schulz`]).
pub fn newton_schulz_step(w: &Matrix) -> Matrix {
    let wwt = matmul_nt(w, w);
    let wwtw = matmul(&wwt, w);
    let mut out = w.clone();
    for (o, &c) in out.as_mut_slice().iter_mut().zip(wwtw.as_slice()) {
        *o = 1.5 * *o - 0.5 * c;
    }
    out
}

/// Projects `w` toward the nearest orthogonal matrix with `iters`
/// Newton–Schulz iterations, pre-scaling by `1/√(‖W‖₁‖W‖∞)` — an upper
/// bound on the spectral norm (tighter than `‖W‖_F`, which over-shrinks by
/// up to `√rank` and wastes iterations re-growing the spectrum) — so the
/// `‖W‖₂ < √3` convergence condition holds.
pub fn newton_schulz(w: &Matrix, iters: usize) -> Matrix {
    let mut max_row_sum = 0.0f32; // ‖W‖∞
    let mut col_sums = vec![0.0f32; w.cols()];
    for r in 0..w.rows() {
        let row = w.row(r);
        let mut row_sum = 0.0f32;
        for (c, &v) in row.iter().enumerate() {
            row_sum += v.abs();
            col_sums[c] += v.abs();
        }
        max_row_sum = max_row_sum.max(row_sum);
    }
    let max_col_sum = col_sums.iter().cloned().fold(0.0f32, f32::max); // ‖W‖₁
    let bound = (max_row_sum * max_col_sum).sqrt();
    if bound <= 1e-12 {
        return w.clone();
    }
    let mut cur = fedomd_tensor::ops::scale(w, 1.0 / bound);
    for _ in 0..iters {
        cur = newton_schulz_step(&cur);
    }
    cur
}

/// Rescales `w` so its Frobenius norm equals that of an orthonormal matrix
/// of the same shape (`√min(rows, cols)`); identity on the zero matrix.
/// This is the `Q̃ = Q/‖Q‖_F` "spectral bounding normalization" of §4.3, up
/// to the √d factor that keeps activation magnitude depth-stable.
pub fn frobenius_rescale(w: &Matrix) -> Matrix {
    let norm = w.frobenius_norm();
    if norm <= 1e-12 {
        return w.clone();
    }
    let target = (w.rows().min(w.cols()) as f32).sqrt();
    fedomd_tensor::ops::scale(w, target / norm)
}

/// `‖WWᵀ − I‖_F`: how far `w` is from having orthonormal rows.
pub fn orthogonality_residual(w: &Matrix) -> f32 {
    let mut a = matmul_nt(w, w);
    for i in 0..a.rows() {
        a[(i, i)] -= 1.0;
    }
    a.frobenius_norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_tensor::rng::seeded;

    fn randw(n: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::xavier_uniform(n, n, &mut rng)
    }

    #[test]
    fn newton_schulz_reduces_residual() {
        // 20 iterations, matching the Ortho-GCN initialiser: a random draw
        // can be near-singular, and the smallest singular value needs
        // ~log1.5(1/sigma_min) iterations before the quadratic phase.
        let w = randw(8, 1);
        let before = orthogonality_residual(&frobenius_rescale(&w));
        let after = orthogonality_residual(&newton_schulz(&w, 20));
        assert!(after < before * 0.1, "residual {before} -> {after}");
        assert!(after < 0.1);
    }

    #[test]
    fn newton_schulz_fixes_orthogonal_input() {
        let w = Matrix::identity(5);
        let out = newton_schulz(&w, 5);
        out.assert_close(&w, 1e-4);
    }

    #[test]
    fn newton_schulz_handles_zero_matrix() {
        let w = Matrix::zeros(4, 4);
        assert_eq!(newton_schulz(&w, 3), w);
    }

    #[test]
    fn frobenius_rescale_hits_target_norm() {
        let w = randw(6, 2);
        let r = frobenius_rescale(&w);
        assert!((r.frobenius_norm() - (6.0f32).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn rescale_of_rectangular_uses_min_dim() {
        let mut rng = seeded(3);
        let w = fedomd_tensor::init::xavier_uniform(4, 9, &mut rng);
        let r = frobenius_rescale(&w);
        assert!((r.frobenius_norm() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn residual_zero_for_identity() {
        assert!(orthogonality_residual(&Matrix::identity(7)) < 1e-6);
    }

    #[test]
    fn projected_weight_preserves_signal_norm() {
        // Propagating a vector through an orthogonalised weight should
        // roughly preserve its scale — the property that lets Ortho-GCN
        // stay trainable at 10 hidden layers (paper Table 7).
        let w = newton_schulz(&randw(16, 4), 12);
        let mut rng = seeded(5);
        let x = fedomd_tensor::init::standard_normal(1, 16, &mut rng);
        let y = matmul(&x, &w);
        let ratio = y.frobenius_norm() / x.frobenius_norm();
        assert!((0.7..1.3).contains(&ratio), "signal ratio {ratio}");
    }
}
