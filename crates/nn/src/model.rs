//! The [`Model`] abstraction shared by every local model in the federation.

use std::sync::Arc;

use fedomd_autograd::{Tape, Var};
use fedomd_sparse::Csr;
use fedomd_tensor::Matrix;

/// The per-client graph input: normalised adjacency `Ŝ`, raw features `X`,
/// and the cached product `ŜX` (constant across epochs, so computed once).
#[derive(Clone)]
pub struct GraphInput {
    /// Symmetrically normalised adjacency with self-loops.
    pub s: Arc<Csr>,
    /// Node feature matrix (`n × d`).
    pub x: Arc<Matrix>,
    /// Cached `Ŝ · X`.
    pub sx: Arc<Matrix>,
}

impl GraphInput {
    /// Builds the input, precomputing `Ŝ·X`.
    pub fn new(s: Arc<Csr>, x: Matrix) -> Self {
        assert_eq!(
            s.rows(),
            x.rows(),
            "GraphInput: S and X row counts disagree"
        );
        let sx = Arc::new(s.spmm(&x));
        Self {
            s,
            x: Arc::new(x),
            sx,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }
}

/// What a forward pass hands back to the trainer.
pub struct ForwardOut {
    /// Pre-softmax class scores, `n × classes`.
    pub logits: Var,
    /// Hidden activations `Z^1..Z^{L-1}` in layer order — the matrices the
    /// CMD constraint is applied to (paper Algorithm 1, line 3-4).
    pub hidden: Vec<Var>,
    /// Tape vars of every parameter, aligned with [`Model::params`].
    pub param_vars: Vec<Var>,
    /// Tape vars of the hidden weight matrices subject to the
    /// orthogonality penalty (paper Eq. 6); subset of `param_vars`.
    pub ortho_weight_vars: Vec<Var>,
}

/// A trainable local model.
///
/// Parameters cross the federation boundary as plain `Vec<Matrix>` in a
/// fixed order, which is what FedAvg aggregates.
pub trait Model: Send + Sync {
    /// Registers parameters on `tape`, records the forward pass.
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut;

    /// Snapshot of all parameters (aggregation order).
    fn params(&self) -> Vec<Matrix>;

    /// Overwrites all parameters from a snapshot in the same order.
    ///
    /// # Panics
    /// Implementations panic on arity or shape mismatch.
    fn set_params(&mut self, params: &[Matrix]);

    /// Hook run after each optimiser step (e.g. the Newton–Schulz
    /// re-orthogonalisation of Ortho-GCN's hidden weights).
    fn post_step(&mut self) {}

    /// Optimiser steps taken so far, for models whose [`Model::post_step`]
    /// behaviour depends on the step index. Stateless models report 0;
    /// together with [`Model::set_steps`] this makes step-indexed state
    /// checkpointable.
    fn steps(&self) -> usize {
        0
    }

    /// Restores the step counter saved by [`Model::steps`] (no-op for
    /// stateless models).
    fn set_steps(&mut self, _steps: usize) {}

    /// Total scalar parameter count (for communication accounting).
    fn n_scalars(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Shared helpers for model unit tests (compiled only under `cfg(test)`).
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use fedomd_sparse::normalized_adjacency;
    use fedomd_tensor::rng::seeded;

    /// A ring graph on `n` nodes with `d`-dimensional deterministic features.
    pub fn ring_input(n: usize, d: usize) -> GraphInput {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let s = Arc::new(normalized_adjacency(n, &edges));
        let x = Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 7) % 13) as f32 / 13.0 - 0.5);
        GraphInput::new(s, x)
    }

    /// Trains `model` on a small separable problem (class = argmax of the
    /// first `classes` features, features class-aligned) and returns the
    /// final training accuracy. Used to smoke-test every model's gradients
    /// actually descend the CE loss.
    pub fn train_to_fit(
        mut model: Box<dyn Model>,
        in_dim: usize,
        classes: usize,
        epochs: usize,
        lr: f32,
    ) -> f32 {
        let n = 40;
        let mut rng = seeded(7);
        // Class-aligned features: node i has class i % classes, and its
        // features are a noisy one-hot block of its class.
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let x = Matrix::from_fn(n, in_dim, |r, c| {
            let base = if c % classes == labels[r] { 1.0 } else { 0.0 };
            base + 0.1 * fedomd_tensor::init::gaussian(&mut rng)
        });
        // Homophilous edges: consecutive same-class nodes.
        let edges: Vec<_> = (0..n)
            .filter(|&i| i + classes < n)
            .map(|i| (i, i + classes))
            .collect();
        let s = Arc::new(normalized_adjacency(n, &edges));
        let input = GraphInput::new(s, x);
        let mask: Vec<usize> = (0..n).collect();

        let mut opt = Sgd::new(lr, 0.0);
        for _ in 0..epochs {
            let mut tape = fedomd_autograd::Tape::new();
            let out = model.forward(&mut tape, &input);
            let loss = tape.softmax_cross_entropy(out.logits, &labels, &mask);
            tape.backward(loss);
            let grads: Vec<Matrix> = out
                .param_vars
                .iter()
                .map(|&v| {
                    tape.grad(v).cloned().unwrap_or_else(|| {
                        let val = tape.value(v);
                        Matrix::zeros(val.rows(), val.cols())
                    })
                })
                .collect();
            let mut params = model.params();
            opt.step(&mut params, &grads);
            model.set_params(&params);
            model.post_step();
        }

        let mut tape = fedomd_autograd::Tape::new();
        let out = model.forward(&mut tape, &input);
        let logits = tape.value(out.logits);
        let correct = (0..n)
            .filter(|&r| {
                let row = logits.row(r);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row");
                pred == labels[r]
            })
            .count();
        correct as f32 / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_sparse::normalized_adjacency;

    #[test]
    fn graph_input_caches_sx() {
        let s = Arc::new(normalized_adjacency(3, &[(0, 1), (1, 2)]));
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let gi = GraphInput::new(s.clone(), x.clone());
        gi.sx.assert_close(&s.spmm(&x), 1e-6);
        assert_eq!(gi.n_nodes(), 3);
        assert_eq!(gi.n_features(), 2);
    }

    #[test]
    #[should_panic(expected = "row counts disagree")]
    fn graph_input_rejects_mismatch() {
        let s = Arc::new(normalized_adjacency(3, &[]));
        let _ = GraphInput::new(s, Matrix::zeros(4, 2));
    }
}
