//! Synthetic attributed-graph datasets.
//!
//! The paper evaluates on Cora, Citeseer, Amazon Computer/Photo, and
//! Coauthor-CS (its Table 2). Those corpora are not redistributable here,
//! so this crate generates **statistically matched synthetic counterparts**
//! (see DESIGN.md §3): a degree-corrected stochastic block model with the
//! same node/edge/class/feature counts, strong community structure for the
//! Louvain cut to find, class-homophilous edges, and class- plus
//! community-conditional sparse features — the properties the paper's
//! phenomena (non-i.i.d. parties, propagation benefit, over-smoothing)
//! actually depend on.
//!
//! Every dataset also has a `*-mini` variant (~10× smaller) so the full
//! experiment suite runs in minutes; the bench binaries accept
//! `--scale paper` to use the full sizes.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod registry;
pub mod synth;

pub use dataset::Dataset;
pub use registry::{spec, DatasetName, ALL_MINI, ALL_PAPER};
pub use synth::{generate, SynthParams};
