//! Named dataset specifications matched to the paper's Table 2, plus the
//! `*-mini` fast variants used by default in the bench harness.

use crate::synth::SynthParams;

/// The datasets of the paper's Table 2 (synthetic counterparts) and their
/// mini variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetName {
    Cora,
    Citeseer,
    Computer,
    Photo,
    CoauthorCs,
    CoraMini,
    CiteseerMini,
    ComputerMini,
    PhotoMini,
    CoauthorCsMini,
}

/// All full-size (paper-scale) datasets, Table 2 order.
pub const ALL_PAPER: [DatasetName; 5] = [
    DatasetName::Cora,
    DatasetName::Citeseer,
    DatasetName::Computer,
    DatasetName::Photo,
    DatasetName::CoauthorCs,
];

/// All mini datasets, same order.
pub const ALL_MINI: [DatasetName; 5] = [
    DatasetName::CoraMini,
    DatasetName::CiteseerMini,
    DatasetName::ComputerMini,
    DatasetName::PhotoMini,
    DatasetName::CoauthorCsMini,
];

impl DatasetName {
    /// The mini counterpart of a paper-scale dataset (identity on minis).
    pub fn mini(self) -> DatasetName {
        match self {
            DatasetName::Cora => DatasetName::CoraMini,
            DatasetName::Citeseer => DatasetName::CiteseerMini,
            DatasetName::Computer => DatasetName::ComputerMini,
            DatasetName::Photo => DatasetName::PhotoMini,
            DatasetName::CoauthorCs => DatasetName::CoauthorCsMini,
            other => other,
        }
    }

    /// Parses `"cora"`, `"cora-mini"`, etc.
    pub fn parse(s: &str) -> Option<DatasetName> {
        Some(match s.to_ascii_lowercase().as_str() {
            "cora" => DatasetName::Cora,
            "citeseer" => DatasetName::Citeseer,
            "computer" | "computers" => DatasetName::Computer,
            "photo" => DatasetName::Photo,
            "coauthor-cs" | "coauthorcs" | "cs" => DatasetName::CoauthorCs,
            "cora-mini" => DatasetName::CoraMini,
            "citeseer-mini" => DatasetName::CiteseerMini,
            "computer-mini" => DatasetName::ComputerMini,
            "photo-mini" => DatasetName::PhotoMini,
            "coauthor-cs-mini" | "cs-mini" => DatasetName::CoauthorCsMini,
            _ => return None,
        })
    }
}

/// The generator parameters of a named dataset.
///
/// Paper-scale variants match Table 2 exactly on nodes/edges/classes/
/// features; density-dependent knobs (communities, sparsity) are set so
/// mean degree and homophily land near the real datasets'.
pub fn spec(name: DatasetName) -> SynthParams {
    match name {
        // Cora: 2708 nodes, 5429 edges, 7 classes, 1433 features.
        DatasetName::Cora => SynthParams {
            name: "cora".into(),
            n_nodes: 2708,
            n_edges: 5429,
            n_classes: 7,
            n_features: 1433,
            n_communities: 28,
            intra_ratio: 0.92,
            label_purity: 0.80,
            class_signature_dims: 60,
            nnz_per_node: 18,
        },
        // Citeseer: 3312 / 4732 / 6 / 3703.
        DatasetName::Citeseer => SynthParams {
            name: "citeseer".into(),
            n_nodes: 3312,
            n_edges: 4732,
            n_classes: 6,
            n_features: 3703,
            n_communities: 30,
            intra_ratio: 0.92,
            label_purity: 0.78,
            class_signature_dims: 120,
            nnz_per_node: 20,
        },
        // Computer: 13381 / 245778 / 10 / 767 (dense co-purchase graph).
        DatasetName::Computer => SynthParams {
            name: "computer".into(),
            n_nodes: 13381,
            n_edges: 245_778,
            n_classes: 10,
            n_features: 767,
            n_communities: 60,
            intra_ratio: 0.9,
            label_purity: 0.82,
            class_signature_dims: 40,
            nnz_per_node: 30,
        },
        // Photo: 7487 / 119043 / 8 / 745.
        DatasetName::Photo => SynthParams {
            name: "photo".into(),
            n_nodes: 7487,
            n_edges: 119_043,
            n_classes: 8,
            n_features: 745,
            n_communities: 40,
            intra_ratio: 0.9,
            label_purity: 0.84,
            class_signature_dims: 40,
            nnz_per_node: 30,
        },
        // Coauthor-CS: 18333 / 182121 / 15 / 6805.
        DatasetName::CoauthorCs => SynthParams {
            name: "coauthor-cs".into(),
            n_nodes: 18_333,
            n_edges: 182_121,
            n_classes: 15,
            n_features: 6805,
            n_communities: 120,
            intra_ratio: 0.93,
            label_purity: 0.84,
            class_signature_dims: 150,
            nnz_per_node: 25,
        },
        // Mini variants: ~10x fewer nodes/edges, compressed feature dims,
        // same class counts and qualitative structure.
        DatasetName::CoraMini => SynthParams {
            name: "cora-mini".into(),
            n_nodes: 560,
            n_edges: 1300,
            n_classes: 7,
            n_features: 96,
            n_communities: 28,
            intra_ratio: 0.85,
            label_purity: 0.82,
            class_signature_dims: 10,
            nnz_per_node: 8,
        },
        DatasetName::CiteseerMini => SynthParams {
            name: "citeseer-mini".into(),
            n_nodes: 660,
            n_edges: 1100,
            n_classes: 6,
            n_features: 128,
            n_communities: 30,
            intra_ratio: 0.85,
            label_purity: 0.78,
            class_signature_dims: 14,
            nnz_per_node: 8,
        },
        DatasetName::ComputerMini => SynthParams {
            name: "computer-mini".into(),
            n_nodes: 1200,
            n_edges: 12000,
            n_classes: 10,
            n_features: 96,
            n_communities: 48,
            intra_ratio: 0.85,
            label_purity: 0.82,
            class_signature_dims: 8,
            nnz_per_node: 10,
        },
        DatasetName::PhotoMini => SynthParams {
            name: "photo-mini".into(),
            n_nodes: 1000,
            n_edges: 8000,
            n_classes: 8,
            n_features: 96,
            n_communities: 36,
            intra_ratio: 0.85,
            label_purity: 0.84,
            class_signature_dims: 10,
            nnz_per_node: 10,
        },
        DatasetName::CoauthorCsMini => SynthParams {
            name: "coauthor-cs-mini".into(),
            n_nodes: 1600,
            n_edges: 8000,
            n_classes: 15,
            n_features: 160,
            n_communities: 100,
            intra_ratio: 0.87,
            label_purity: 0.84,
            class_signature_dims: 10,
            nnz_per_node: 8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;

    #[test]
    fn paper_specs_match_table2_counts() {
        let expect = [
            (DatasetName::Cora, 2708, 5429, 7, 1433),
            (DatasetName::Citeseer, 3312, 4732, 6, 3703),
            (DatasetName::Computer, 13_381, 245_778, 10, 767),
            (DatasetName::Photo, 7487, 119_043, 8, 745),
            (DatasetName::CoauthorCs, 18_333, 182_121, 15, 6805),
        ];
        for (name, n, m, c, f) in expect {
            let s = spec(name);
            assert_eq!(s.n_nodes, n);
            assert_eq!(s.n_edges, m);
            assert_eq!(s.n_classes, c);
            assert_eq!(s.n_features, f);
        }
    }

    #[test]
    fn parse_roundtrip() {
        assert_eq!(DatasetName::parse("cora"), Some(DatasetName::Cora));
        assert_eq!(
            DatasetName::parse("Coauthor-CS"),
            Some(DatasetName::CoauthorCs)
        );
        assert_eq!(
            DatasetName::parse("photo-mini"),
            Some(DatasetName::PhotoMini)
        );
        assert_eq!(DatasetName::parse("imagenet"), None);
    }

    #[test]
    fn mini_mapping() {
        assert_eq!(DatasetName::Cora.mini(), DatasetName::CoraMini);
        assert_eq!(DatasetName::CoraMini.mini(), DatasetName::CoraMini);
    }

    #[test]
    fn all_minis_generate_and_validate() {
        for name in ALL_MINI {
            let ds = generate(&spec(name), 0);
            ds.validate().unwrap_or_else(|e| panic!("{name:?}: {e}"));
            assert!(ds.n_nodes() >= 200, "{name:?} too small");
            let mut communities = fedomd_graph::louvain(&ds.graph, &Default::default());
            communities.dedup();
            // Must have enough communities to split across 9 parties.
            let k = fedomd_graph::louvain(&ds.graph, &Default::default())
                .iter()
                .copied()
                .max()
                .unwrap()
                + 1;
            assert!(k >= 9, "{name:?}: only {k} communities");
        }
    }
}
