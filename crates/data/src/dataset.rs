//! The attributed-graph dataset type.

use fedomd_graph::Graph;
use fedomd_tensor::Matrix;

/// A node-classification dataset: topology, features, labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `"cora"`, `"cora-mini"`).
    pub name: String,
    /// Undirected topology.
    pub graph: Graph,
    /// Node features, `n × f`.
    pub features: Matrix,
    /// Class label per node.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Planted community per node, when the generator knows it (synthetic
    /// datasets always do). Empty means "unknown — discover via Louvain".
    /// Federation setup can cut along these directly
    /// (`setup_federation_planted`), which is what makes thousand-party
    /// federations affordable.
    pub communities: Vec<usize>,
}

impl Dataset {
    /// Checks internal consistency, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.features.rows() != self.graph.n_nodes() {
            return Err(format!(
                "feature rows {} != nodes {}",
                self.features.rows(),
                self.graph.n_nodes()
            ));
        }
        if self.labels.len() != self.graph.n_nodes() {
            return Err(format!(
                "labels {} != nodes {}",
                self.labels.len(),
                self.graph.n_nodes()
            ));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= self.n_classes) {
            return Err(format!(
                "label {bad} out of range (classes {})",
                self.n_classes
            ));
        }
        if !self.features.all_finite() {
            return Err("non-finite feature values".into());
        }
        if !self.communities.is_empty() && self.communities.len() != self.graph.n_nodes() {
            return Err(format!(
                "communities {} != nodes {} (must be empty or full)",
                self.communities.len(),
                self.graph.n_nodes()
            ));
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.graph.n_edges()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Per-class node counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            graph: Graph::new(3, &[(0, 1), (1, 2)]),
            features: Matrix::from_fn(3, 2, |r, c| (r + c) as f32),
            labels: vec![0, 1, 0],
            n_classes: 2,
            communities: Vec::new(),
        }
    }

    #[test]
    fn valid_dataset_passes() {
        tiny().validate().expect("valid");
        assert_eq!(tiny().class_counts(), vec![2, 1]);
        assert_eq!(tiny().n_features(), 2);
    }

    #[test]
    fn label_out_of_range_detected() {
        let mut d = tiny();
        d.labels[0] = 5;
        assert!(d.validate().is_err());
    }

    #[test]
    fn row_count_mismatch_detected() {
        let mut d = tiny();
        d.features = Matrix::zeros(4, 2);
        assert!(d.validate().is_err());
    }

    #[test]
    fn communities_must_be_empty_or_cover_every_node() {
        let mut d = tiny();
        d.communities = vec![0, 1];
        assert!(d.validate().is_err());
        d.communities = vec![0, 1, 0];
        d.validate().expect("full community vector is valid");
    }
}
