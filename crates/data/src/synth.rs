//! The degree-corrected SBM generator behind every synthetic dataset.

use fedomd_graph::Graph;
use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::Matrix;
use rand::Rng;

use crate::dataset::Dataset;

/// Parameters of the synthetic attributed-graph generator.
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Dataset name to stamp on the output.
    pub name: String,
    /// Node count (Table 2 `#Nodes`).
    pub n_nodes: usize,
    /// Target undirected edge count (Table 2 `#Edges`; achieved ±dedup).
    pub n_edges: usize,
    /// Class count (Table 2 `#Classes`).
    pub n_classes: usize,
    /// Feature dimension (Table 2 `#Features`).
    pub n_features: usize,
    /// Number of planted communities (what Louvain will discover). Should
    /// comfortably exceed the largest party count used in experiments.
    pub n_communities: usize,
    /// Fraction of edges that stay inside a community (0..1). High values
    /// give the Louvain cut clean separations.
    pub intra_ratio: f64,
    /// Probability that a node adopts its community's dominant class
    /// (controls label homophily / the Fig. 4 skew).
    pub label_purity: f64,
    /// Active (signature) feature dimensions per class.
    pub class_signature_dims: usize,
    /// Non-zero feature entries per node (bag-of-words sparsity).
    pub nnz_per_node: usize,
}

impl SynthParams {
    /// A federation-scale preset: `n_parties` planted communities of ~16
    /// nodes each, with modest feature/edge budgets so generating a
    /// 5000-party graph stays in the tens of milliseconds. Pair with
    /// `setup_federation_planted`, which cuts along the planted
    /// communities instead of re-discovering them with Louvain.
    pub fn many_party(n_parties: usize) -> SynthParams {
        assert!(n_parties >= 1);
        let n_nodes = n_parties * 16;
        SynthParams {
            name: format!("many-party-{n_parties}"),
            n_nodes,
            n_edges: n_nodes * 3,
            n_classes: 8,
            n_features: 32,
            n_communities: n_parties,
            intra_ratio: 0.9,
            label_purity: 0.8,
            class_signature_dims: 6,
            nnz_per_node: 6,
        }
    }
}

/// Generates a dataset from the block model.
///
/// Construction:
/// 1. Communities get power-law-ish sizes and a dominant class each.
/// 2. Node labels: dominant class with probability `label_purity`, else
///    uniform — so parties cut along communities inherit skewed labels.
/// 3. Edges: `intra_ratio` of the budget joins random pairs inside one
///    community (picked ∝ size²), the rest joins random cross pairs.
/// 4. Features: each class owns `class_signature_dims` signature dims and
///    each community a smaller bias set; every node activates
///    `nnz_per_node` dims, mostly from its class signature, some from its
///    community bias, some uniform noise — giving the class-conditional
///    *and* party-conditional feature shift of the paper's Fig. 1.
pub fn generate(params: &SynthParams, seed: u64) -> Dataset {
    assert!(params.n_nodes > 0 && params.n_classes > 0 && params.n_features > 0);
    assert!(params.n_communities > 0 && params.n_communities <= params.n_nodes);
    assert!((0.0..=1.0).contains(&params.intra_ratio));
    assert!((0.0..=1.0).contains(&params.label_purity));

    let mut rng = seeded(derive(seed, 0xD5EA));

    // --- 1. community sizes (power-lawish via squared uniforms) ---
    let k = params.n_communities;
    let mut raw: Vec<f64> = (0..k).map(|_| rng.gen::<f64>().powi(2) + 0.15).collect();
    let total: f64 = raw.iter().sum();
    for r in &mut raw {
        *r /= total;
    }
    let mut comm_of: Vec<usize> = Vec::with_capacity(params.n_nodes);
    for (c, &frac) in raw.iter().enumerate() {
        let cnt = (frac * params.n_nodes as f64).round() as usize;
        comm_of.extend(std::iter::repeat_n(c, cnt));
    }
    // Fix rounding drift.
    while comm_of.len() > params.n_nodes {
        comm_of.pop();
    }
    while comm_of.len() < params.n_nodes {
        comm_of.push(rng.gen_range(0..k));
    }

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (node, &c) in comm_of.iter().enumerate() {
        members[c].push(node);
    }
    // Guarantee every community is non-empty (tiny fractions may round to 0).
    for c in 0..k {
        if members[c].is_empty() {
            let donor = (0..k).max_by_key(|&d| members[d].len()).expect("k >= 1");
            let node = members[donor].pop().expect("donor non-empty");
            comm_of[node] = c;
            members[c].push(node);
        }
    }

    // --- 2. labels ---
    let dominant: Vec<usize> = (0..k).map(|c| c % params.n_classes).collect();
    let labels: Vec<usize> = comm_of
        .iter()
        .map(|&c| {
            if rng.gen_bool(params.label_purity) {
                dominant[c]
            } else {
                rng.gen_range(0..params.n_classes)
            }
        })
        .collect();

    // --- 3. edges ---
    let sq_sizes: Vec<f64> = members.iter().map(|m| (m.len() as f64).powi(2)).collect();
    let sq_total: f64 = sq_sizes.iter().sum();
    let n_intra = (params.n_edges as f64 * params.intra_ratio) as usize;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(params.n_edges + params.n_nodes);

    // Spanning chain inside each community keeps parties internally
    // connected, mirroring the "large connected subgraphs" the paper gets
    // at small resolution.
    for m in &members {
        for w in m.windows(2) {
            edges.push((w[0], w[1]));
        }
    }

    // At federation scale (thousands of communities) the linear size²
    // scan below would make edge sampling quadratic, so large k switches
    // to binary search over prefix sums. The two picks differ in rounding
    // (sequential subtraction vs prefix totals), so the scan is kept for
    // small k to leave every existing dataset bit-for-bit unchanged.
    let cum_sq: Vec<f64> = if k > 256 {
        let mut acc = 0.0;
        sq_sizes
            .iter()
            .map(|&s| {
                acc += s;
                acc
            })
            .collect()
    } else {
        Vec::new()
    };
    for _ in 0..n_intra {
        // Community ∝ size² (uniform pair sampling within).
        let mut t = rng.gen::<f64>() * sq_total;
        let mut c = 0;
        if cum_sq.is_empty() {
            while c + 1 < k && t > sq_sizes[c] {
                t -= sq_sizes[c];
                c += 1;
            }
        } else {
            c = cum_sq.partition_point(|&acc| acc < t).min(k - 1);
        }
        let m = &members[c];
        if m.len() < 2 {
            continue;
        }
        let a = m[rng.gen_range(0..m.len())];
        let b = m[rng.gen_range(0..m.len())];
        if a != b {
            edges.push((a, b));
        }
    }
    let n_inter = params.n_edges.saturating_sub(n_intra);
    for _ in 0..n_inter {
        let a = rng.gen_range(0..params.n_nodes);
        let b = rng.gen_range(0..params.n_nodes);
        if a != b && comm_of[a] != comm_of[b] {
            edges.push((a, b));
        }
    }
    let graph = Graph::new(params.n_nodes, &edges);

    // --- 4. features ---
    let sig_dims = params.class_signature_dims.min(params.n_features);
    let class_sig: Vec<Vec<usize>> = (0..params.n_classes)
        .map(|cls| {
            let mut r = seeded(derive(seed, 0xC1A5 + cls as u64));
            (0..sig_dims)
                .map(|_| r.gen_range(0..params.n_features))
                .collect()
        })
        .collect();
    let comm_bias_dims = (sig_dims / 2).max(1);
    let comm_bias: Vec<Vec<usize>> = (0..k)
        .map(|c| {
            let mut r = seeded(derive(seed, 0xB1A5 + c as u64));
            (0..comm_bias_dims)
                .map(|_| r.gen_range(0..params.n_features))
                .collect()
        })
        .collect();
    // Per-community "document length" factor: communities write shorter or
    // longer token bags, so after row normalisation their feature vectors
    // live at visibly different scales per dimension — the Fig. 1 feature
    // shift that the CMD constraint is designed to cancel.
    let comm_len_factor: Vec<f64> = (0..k)
        .map(|c| {
            let mut r = seeded(derive(seed, 0xF00D + c as u64));
            0.5 + 1.2 * r.gen::<f64>()
        })
        .collect();

    let mut features = Matrix::zeros(params.n_nodes, params.n_features);
    for node in 0..params.n_nodes {
        let sig = &class_sig[labels[node]];
        let bias = &comm_bias[comm_of[node]];
        let nnz =
            ((params.nnz_per_node as f64 * comm_len_factor[comm_of[node]]).round() as usize).max(2);
        for _ in 0..nnz {
            let dim = match rng.gen_range(0..20u32) {
                0..=8 => sig[rng.gen_range(0..sig.len())], // 45% class signal
                9..=15 => bias[rng.gen_range(0..bias.len())], // 35% community shift
                _ => rng.gen_range(0..params.n_features),  // 20% noise
            };
            features[(node, dim)] = 1.0;
        }
    }
    // Row-normalise (standard Planetoid preprocessing) so activations stay
    // in a narrow range — the `[a, b]` boundedness CMD assumes.
    for r in 0..params.n_nodes {
        let row = features.row_mut(r);
        let sum: f32 = row.iter().sum();
        if sum > 0.0 {
            for v in row {
                *v /= sum;
            }
        }
    }

    let ds = Dataset {
        name: params.name.clone(),
        graph,
        features,
        labels,
        n_classes: params.n_classes,
        communities: comm_of,
    };
    debug_assert!(ds.validate().is_ok());
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SynthParams {
        SynthParams {
            name: "test".into(),
            n_nodes: 400,
            n_edges: 1200,
            n_classes: 5,
            n_features: 64,
            n_communities: 12,
            intra_ratio: 0.9,
            label_purity: 0.8,
            class_signature_dims: 12,
            nnz_per_node: 8,
        }
    }

    #[test]
    fn generates_valid_dataset_with_matched_counts() {
        let ds = generate(&small_params(), 0);
        ds.validate().expect("valid");
        assert_eq!(ds.n_nodes(), 400);
        assert_eq!(ds.n_features(), 64);
        assert_eq!(ds.n_classes, 5);
        // Edge count within 40% of target (dedup + rejection losses).
        let m = ds.n_edges() as f64;
        assert!(m > 1200.0 * 0.6 && m < 1200.0 * 1.5, "edges {m}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_params(), 42);
        let b = generate(&small_params(), 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_params(), 1);
        let b = generate(&small_params(), 2);
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn labels_are_homophilous() {
        let ds = generate(&small_params(), 3);
        let h = ds.graph.edge_homophily(&ds.labels);
        // label_purity 0.8 and intra_ratio 0.9 must yield clearly
        // homophilous edges (random would be 1/5 = 0.2).
        assert!(h > 0.45, "homophily {h} too low");
    }

    #[test]
    fn louvain_finds_the_planted_communities() {
        let ds = generate(&small_params(), 4);
        let labels = fedomd_graph::louvain(&ds.graph, &Default::default());
        let k = labels.iter().copied().max().unwrap() + 1;
        assert!(k >= 3, "Louvain found only {k} communities");
        let q = fedomd_graph::louvain::modularity(&ds.graph, &labels, 1.0);
        assert!(q > 0.3, "modularity {q} too low for a planted partition");
    }

    #[test]
    fn every_class_is_represented() {
        let ds = generate(&small_params(), 5);
        let counts = ds.class_counts();
        assert!(counts.iter().all(|&c| c > 0), "class missing: {counts:?}");
    }

    #[test]
    fn features_are_row_normalised_and_sparse() {
        let ds = generate(&small_params(), 6);
        for r in 0..ds.n_nodes() {
            let row = ds.features.row(r);
            let sum: f32 = row.iter().sum();
            let nnz = row.iter().filter(|&&v| v > 0.0).count();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-5, "row {r} sum {sum}");
            // nnz_per_node = 8 scaled by the community length factor (≤ 1.7).
            assert!(nnz <= 14, "row {r} has {nnz} nonzeros");
        }
    }

    #[test]
    fn planted_communities_are_recorded() {
        let ds = generate(&small_params(), 8);
        assert_eq!(ds.communities.len(), ds.n_nodes());
        let k = ds.communities.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 12, "every planted community must be non-empty");
    }

    #[test]
    fn many_party_preset_generates_at_scale() {
        // 300 communities also exercises the prefix-sum community pick
        // (the k > 256 fast path).
        let p = SynthParams::many_party(300);
        let ds = generate(&p, 0);
        ds.validate().expect("valid");
        assert_eq!(ds.n_nodes(), 300 * 16);
        let k = ds.communities.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 300);
        let h = ds.graph.edge_homophily(&ds.labels);
        assert!(h > 0.4, "homophily {h} too low for a planted graph");
    }

    #[test]
    fn feature_distribution_differs_across_communities() {
        // The Fig. 1 premise: per-community feature means must differ.
        let ds = generate(&small_params(), 7);
        let parts = fedomd_graph::louvain_cut(&ds.graph, 3, &Default::default());
        let means: Vec<Vec<f32>> = parts
            .iter()
            .map(|p| {
                let sub = ds.features.select_rows(&p.global_ids);
                fedomd_tensor::column_means(&sub)
            })
            .collect();
        let d01 = fedomd_tensor::stats::l2_distance(&means[0], &means[1]);
        let d02 = fedomd_tensor::stats::l2_distance(&means[0], &means[2]);
        assert!(
            d01 > 1e-3 && d02 > 1e-3,
            "parties have identical feature means"
        );
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn single_class_dataset_generates() {
        let p = SynthParams {
            name: "mono".into(),
            n_nodes: 60,
            n_edges: 120,
            n_classes: 1,
            n_features: 16,
            n_communities: 4,
            intra_ratio: 0.9,
            label_purity: 1.0,
            class_signature_dims: 4,
            nnz_per_node: 4,
        };
        let ds = generate(&p, 0);
        ds.validate().expect("valid");
        assert!(ds.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn one_community_per_node_is_allowed() {
        let p = SynthParams {
            name: "atomised".into(),
            n_nodes: 30,
            n_edges: 60,
            n_classes: 3,
            n_features: 8,
            n_communities: 30,
            intra_ratio: 0.5,
            label_purity: 0.8,
            class_signature_dims: 3,
            nnz_per_node: 3,
        };
        let ds = generate(&p, 1);
        ds.validate().expect("valid");
        assert_eq!(ds.n_nodes(), 30);
    }

    #[test]
    fn zero_intra_ratio_gives_only_cross_edges_plus_chains() {
        let p = SynthParams {
            name: "cross".into(),
            n_nodes: 80,
            n_edges: 200,
            n_classes: 2,
            n_features: 8,
            n_communities: 4,
            intra_ratio: 0.0,
            label_purity: 0.9,
            class_signature_dims: 3,
            nnz_per_node: 3,
        };
        let ds = generate(&p, 2);
        ds.validate().expect("valid");
        // With intra_ratio 0 the only intra edges are the spanning chains.
        assert!(ds.n_edges() > 0);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let p = SynthParams {
            name: "empty".into(),
            n_nodes: 0,
            n_edges: 0,
            n_classes: 1,
            n_features: 1,
            n_communities: 1,
            intra_ratio: 0.5,
            label_purity: 0.5,
            class_signature_dims: 1,
            nnz_per_node: 1,
        };
        let _ = generate(&p, 0);
    }
}
