//! Exhaustive interleaving checks for `fold_in_order`.
//!
//! The pipelined fold promises: whatever order `(id, payload)` pairs
//! arrive in — and whichever subset of the schedule actually arrives —
//! the fold is applied in strictly ascending schedule order, so the
//! folded state is `to_bits`-identical to the sequential batch path.
//! PR 9's proptests spot-check random orders; these tests are small-model
//! *exhaustive*: every arrival permutation of every arrival subset for
//! n ≤ 5 (326 runs at n = 5), with n = 6 (1957 runs) behind `--ignored`
//! for the nightly budget.
//!
//! The accumulator is deliberately order-sensitive (`s = s * 0.75 + x`
//! with repeating-fraction inputs), so any out-of-order fold changes the
//! bits, not just the story.

use fedomd_federated::pipeline::fold_in_order;

/// All permutations of `items` (Heap's algorithm).
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    fn heap(k: usize, a: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    let mut a = items.to_vec();
    let mut out = Vec::new();
    let n = a.len();
    heap(n, &mut a, &mut out);
    out
}

/// Every subset of `0..n`, as ascending id lists.
fn subsets(n: u32) -> Vec<Vec<u32>> {
    (0u32..1 << n)
        .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
        .collect()
}

/// An order-sensitive payload: 1/3-style repeating fractions make the
/// chained multiply-add non-commutative in f32.
fn val(id: u32) -> f32 {
    (id as f32 + 1.0) / 3.0
}

/// The sequential oracle: fold ascending ids directly, no threads.
fn oracle(arrived: &[u32]) -> (f32, Vec<u32>) {
    let mut acc = 0.0f32;
    let mut order = Vec::new();
    for &id in arrived {
        acc = acc * 0.75 + val(id);
        order.push(id);
    }
    (acc, order)
}

/// Runs `fold_in_order` with the full schedule `0..n`, delivering only
/// `perm`'s ids in `perm`'s order, and returns (accumulator, fold order).
fn run(n: u32, perm: &[u32]) -> (f32, Vec<u32>) {
    let schedule: Vec<u32> = (0..n).collect();
    let (state, ()) = fold_in_order(
        &schedule,
        (0.0f32, Vec::new()),
        |s: &mut (f32, Vec<u32>), id, x: f32| {
            s.0 = s.0 * 0.75 + x;
            s.1.push(id);
        },
        |tx| {
            for &id in perm {
                tx.send((id, val(id))).expect("fold thread alive");
            }
        },
    );
    state
}

fn sweep(n: u32) {
    for arrived in subsets(n) {
        let (want_acc, want_order) = oracle(&arrived);
        for perm in permutations(&arrived) {
            let (acc, order) = run(n, &perm);
            assert_eq!(
                acc.to_bits(),
                want_acc.to_bits(),
                "n={n} arrival order {perm:?}: accumulator diverged from \
                 the sequential fold"
            );
            assert_eq!(
                order, want_order,
                "n={n} arrival order {perm:?}: fold order not ascending"
            );
        }
    }
}

#[test]
fn all_arrival_orders_and_subsets_fold_identically_up_to_5() {
    for n in 1..=5 {
        sweep(n);
    }
}

#[test]
#[ignore = "1957 spawned folds; nightly budget"]
fn all_arrival_orders_and_subsets_fold_identically_at_6() {
    sweep(6);
}

#[test]
fn empty_arrival_set_folds_nothing() {
    let (acc, order) = run(4, &[]);
    assert_eq!(acc.to_bits(), 0.0f32.to_bits());
    assert!(order.is_empty());
}
