//! The federated-learning substrate of the FedOMD reproduction.
//!
//! Provides the in-process federation simulator — per-party [`ClientData`]
//! built by the Louvain cut, byte-accounted [`CommsLog`], the shared
//! round-loop machinery ([`engine`]) — plus the seven baselines the paper
//! compares against (its Table 4/5): FedMLP, FedProx, SCAFFOLD, LocGCN,
//! FedGCN, FedSage+, and FedLIT. FedOMD itself lives in `fedomd-core`,
//! built on the same machinery.
//!
//! Clients train in parallel on rayon workers inside every communication
//! round; all randomness is derived from the run seed, so a full federated
//! run is reproducible bit-for-bit.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod client;
pub mod comms;
pub mod config;
pub mod engine;
pub mod helpers;
pub mod heterogeneity;
pub mod pipeline;
pub mod secure_agg;

pub use client::{
    client_shard, setup_federation, setup_federation_planted, ClientData, FederationConfig,
};
pub use comms::{CommsLog, Direction, TrafficClass};
pub use config::{
    CohortConfig, CohortConfigError, PipelineConfig, RoundStats, RunResult, TrainConfig,
};
pub use engine::{
    run_generic_observed, run_generic_resumable, CheckpointSink, DriverState, GenericOpts,
    ModelKind, Persistence, ResumeState, StatsCache,
};
pub use helpers::UpdateAccumulator;
pub use secure_agg::{
    aggregate_masked, secure_weighted_sum, secure_weighted_sum_frames, MaskingContext,
};
