//! Quantifying the non-i.i.d.-ness of a federation — the measurable form
//! of the paper's Fig. 1 ("the feature space in each participant is not
//! identically distributed") and Fig. 4 (label skew).
//!
//! Three instruments:
//!
//! * [`label_skew`] — mean pairwise total-variation distance between party
//!   label distributions (0 = identical, →1 = disjoint).
//! * [`feature_shift`] — mean pairwise CMD distance between party *raw
//!   feature* distributions, using the same Eq. 11 metric FedOMD optimises
//!   on hidden features; this is the quantity the constraint shrinks.
//! * [`cross_edge_loss`] — fraction of global edges destroyed by the cut
//!   (what FedSage+ tries to compensate for).

use fedomd_autograd::cmd::{cmd_value, CmdTargets};

use crate::client::ClientData;

/// Mean pairwise total-variation distance between party label
/// distributions over `n_classes`.
///
/// # Panics
/// Panics with fewer than two clients.
pub fn label_skew(clients: &[ClientData], n_classes: usize) -> f64 {
    assert!(clients.len() >= 2, "label_skew: need at least two clients");
    let dists: Vec<Vec<f64>> = clients
        .iter()
        .map(|c| {
            let mut h = vec![0.0f64; n_classes];
            for &l in &c.labels {
                h[l] += 1.0;
            }
            let total: f64 = h.iter().sum();
            h.into_iter().map(|v| v / total.max(1.0)).collect()
        })
        .collect();
    pairwise_mean(dists.len(), |i, j| {
        dists[i]
            .iter()
            .zip(&dists[j])
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0
    })
}

/// Mean pairwise CMD distance (orders ≤ `max_order`, width 1) between the
/// parties' raw feature matrices.
pub fn feature_shift(clients: &[ClientData], max_order: u32) -> f64 {
    assert!(
        clients.len() >= 2,
        "feature_shift: need at least two clients"
    );
    let targets: Vec<CmdTargets> = clients
        .iter()
        .map(|c| CmdTargets::from_matrix(&c.input.x, max_order))
        .collect();
    pairwise_mean(clients.len(), |i, j| {
        // CMD of party i's features against party j's statistics.
        cmd_value(&clients[i].input.x, &targets[j], 1.0) as f64
    })
}

/// Fraction of global edges lost to the cut: `1 − Σ local edges / global`.
pub fn cross_edge_loss(clients: &[ClientData], global_edges: usize) -> f64 {
    if global_edges == 0 {
        return 0.0;
    }
    let local: usize = clients.iter().map(|c| c.edges.len()).sum();
    1.0 - local as f64 / global_edges as f64
}

fn pairwise_mean(n: usize, f: impl Fn(usize, usize) -> f64) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += f(i, j);
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_graph::SplitRatios;

    fn louvain_clients() -> (Vec<ClientData>, usize, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        let clients = setup_federation(&ds, &FederationConfig::mini(4, 0));
        (clients, ds.n_classes, ds.n_edges())
    }

    /// A federation cut at random (node i -> party i % m) is nearly i.i.d.
    fn random_clients(m: usize) -> (Vec<ClientData>, usize, usize) {
        use fedomd_graph::Splits;
        use fedomd_nn::GraphInput;
        use std::sync::Arc;
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        let clients = (0..m)
            .map(|p| {
                let nodes: Vec<usize> = (0..ds.n_nodes()).filter(|&u| u % m == p).collect();
                let (g, ids) = ds.graph.induced_subgraph(&nodes);
                let labels: Vec<usize> = ids.iter().map(|&i| ds.labels[i]).collect();
                let x = ds.features.select_rows(&ids);
                let edges = g.edges().to_vec();
                let s = Arc::new(fedomd_sparse::normalized_adjacency(g.n_nodes(), &edges));
                let splits = fedomd_graph::split_nodes(&labels, SplitRatios::mini(), p as u64);
                let _ = Splits::default();
                ClientData {
                    input: GraphInput::new(s, x),
                    labels,
                    splits,
                    global_ids: ids,
                    edges,
                }
            })
            .collect();
        (clients, ds.n_classes, ds.n_edges())
    }

    #[test]
    fn louvain_cut_is_more_skewed_than_random_cut() {
        let (louvain, k, _) = louvain_clients();
        let (random, _, _) = random_clients(4);
        let skew_l = label_skew(&louvain, k);
        let skew_r = label_skew(&random, k);
        assert!(
            skew_l > skew_r * 2.0,
            "Louvain skew {skew_l:.3} not clearly above random {skew_r:.3}"
        );
    }

    #[test]
    fn feature_shift_detects_the_community_dialects() {
        let (louvain, _, _) = louvain_clients();
        let (random, _, _) = random_clients(4);
        let shift_l = feature_shift(&louvain, 5);
        let shift_r = feature_shift(&random, 5);
        assert!(shift_l > 0.0);
        assert!(
            shift_l > shift_r,
            "Louvain feature shift {shift_l:.4} not above random {shift_r:.4}"
        );
    }

    #[test]
    fn cross_edge_loss_bounds() {
        let (louvain, _, global_edges) = louvain_clients();
        let loss = cross_edge_loss(&louvain, global_edges);
        assert!((0.0..=1.0).contains(&loss));
        // A community cut keeps most edges.
        assert!(loss < 0.6, "cut destroyed {loss:.2} of edges");
        // Random cut destroys more.
        let (random, _, ge) = random_clients(4);
        assert!(cross_edge_loss(&random, ge) > loss);
    }

    #[test]
    fn zero_edges_is_zero_loss() {
        let (louvain, _, _) = louvain_clients();
        assert_eq!(cross_edge_loss(&louvain, 0), 0.0);
    }
}
