//! The seven baselines of the paper's Tables 4/5, all exposed through the
//! uniform entry point [`run_baseline`].

pub mod fedlit;
pub mod fedsage;
pub mod scaffold;

use crate::client::ClientData;
use crate::config::{RunResult, TrainConfig};
use crate::engine::{run_generic_observed, GenericOpts, ModelKind};
use fedomd_telemetry::{NullObserver, RoundObserver};
use fedomd_transport::InProcChannel;

/// Every baseline algorithm (FedOMD itself lives in `fedomd-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// 2-layer MLP + FedAvg.
    FedMlp,
    /// FedMLP + proximal term (Li et al.).
    FedProx,
    /// FedMLP + control variates (Karimireddy et al.).
    Scaffold,
    /// Isolated local 2-layer GCNs, accuracy averaged.
    LocGcn,
    /// 2-layer GCN + FedAvg.
    FedGcn,
    /// Local SAGE + missing-neighbour generation (Zhang et al.).
    FedSagePlus,
    /// Latent link-type clustering with per-type propagation (Xie et al.).
    FedLit,
}

/// All baselines in the paper's table order.
pub const ALL_BASELINES: [Baseline; 7] = [
    Baseline::FedMlp,
    Baseline::Scaffold,
    Baseline::FedProx,
    Baseline::LocGcn,
    Baseline::FedGcn,
    Baseline::FedLit,
    Baseline::FedSagePlus,
];

impl Baseline {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::FedMlp => "FedMLP",
            Baseline::FedProx => "FedProx",
            Baseline::Scaffold => "SCAFFOLD",
            Baseline::LocGcn => "LocGCN",
            Baseline::FedGcn => "FedGCN",
            Baseline::FedSagePlus => "FedSage+",
            Baseline::FedLit => "FedLIT",
        }
    }

    /// Parses a table name (`"FedMLP"`, `"fedsage+"`, ...).
    pub fn parse(s: &str) -> Option<Baseline> {
        Some(match s.to_ascii_lowercase().as_str() {
            "fedmlp" => Baseline::FedMlp,
            "fedprox" => Baseline::FedProx,
            "scaffold" => Baseline::Scaffold,
            "locgcn" => Baseline::LocGcn,
            "fedgcn" => Baseline::FedGcn,
            "fedsage+" | "fedsage" | "fedsageplus" => Baseline::FedSagePlus,
            "fedlit" => Baseline::FedLit,
            _ => return None,
        })
    }
}

/// Runs one baseline end to end, without telemetry.
pub fn run_baseline(
    which: Baseline,
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
) -> RunResult {
    run_baseline_observed(which, clients, n_classes, cfg, &mut NullObserver)
}

/// Runs one baseline end to end, reporting round milestones to `obs`.
///
/// The FedAvg-family baselines run over the default in-process channel and
/// report full frame-level telemetry; the bespoke loops (SCAFFOLD,
/// FedSage+, FedLIT) report the round lifecycle, local steps, phases, and
/// aggregation milestones.
pub fn run_baseline_observed(
    which: Baseline,
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    let generic = |cfg: &TrainConfig, opts: &GenericOpts, obs: &mut dyn RoundObserver| {
        run_generic_observed(
            clients,
            n_classes,
            cfg,
            opts,
            &mut InProcChannel::new(),
            obs,
        )
    };
    match which {
        Baseline::FedMlp => generic(
            cfg,
            &GenericOpts {
                name: "FedMLP",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.0,
            },
            obs,
        ),
        Baseline::FedProx => {
            // The proximal term only acts once local weights drift from the
            // round's global snapshot; at one local epoch per round it is
            // identically zero. FedProx's own recipe (Li et al.) runs
            // multiple local epochs, so give it at least two.
            let cfg = TrainConfig {
                local_epochs: cfg.local_epochs.max(2),
                ..cfg.clone()
            };
            generic(
                &cfg,
                &GenericOpts {
                    name: "FedProx",
                    model: ModelKind::Mlp,
                    aggregate: true,
                    prox_mu: 0.01,
                },
                obs,
            )
        }
        Baseline::LocGcn => generic(
            cfg,
            &GenericOpts {
                name: "LocGCN",
                model: ModelKind::Gcn,
                aggregate: false,
                prox_mu: 0.0,
            },
            obs,
        ),
        Baseline::FedGcn => generic(
            cfg,
            &GenericOpts {
                name: "FedGCN",
                model: ModelKind::Gcn,
                aggregate: true,
                prox_mu: 0.0,
            },
            obs,
        ),
        Baseline::Scaffold => scaffold::run_scaffold_observed(clients, n_classes, cfg, obs),
        Baseline::FedSagePlus => fedsage::run_fedsage_plus_observed(clients, n_classes, cfg, obs),
        Baseline::FedLit => fedlit::run_fedlit_observed(clients, n_classes, cfg, obs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Baseline::FedSagePlus.name(), "FedSage+");
        assert_eq!(Baseline::Scaffold.name(), "SCAFFOLD");
        assert_eq!(ALL_BASELINES.len(), 7);
    }

    #[test]
    fn parse_roundtrips() {
        for b in ALL_BASELINES {
            assert_eq!(Baseline::parse(b.name()), Some(b), "{:?}", b);
        }
        assert_eq!(Baseline::parse("nope"), None);
    }
}
