//! The seven baselines of the paper's Tables 4/5, all exposed through the
//! uniform entry point [`run_baseline`].

pub mod fedlit;
pub mod fedsage;
pub mod scaffold;

use crate::client::ClientData;
use crate::config::{RunResult, TrainConfig};
use crate::engine::{run_generic_observed, GenericOpts, ModelKind};
use fedomd_telemetry::{NullObserver, RoundObserver};
use fedomd_transport::InProcChannel;

/// Every baseline algorithm (FedOMD itself lives in `fedomd-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// 2-layer MLP + FedAvg.
    FedMlp,
    /// FedMLP + proximal term (Li et al.).
    FedProx,
    /// FedMLP + control variates (Karimireddy et al.).
    Scaffold,
    /// Isolated local 2-layer GCNs, accuracy averaged.
    LocGcn,
    /// 2-layer GCN + FedAvg.
    FedGcn,
    /// Local SAGE + missing-neighbour generation (Zhang et al.).
    FedSagePlus,
    /// Latent link-type clustering with per-type propagation (Xie et al.).
    FedLit,
}

/// All baselines in the paper's table order.
pub const ALL_BASELINES: [Baseline; 7] = [
    Baseline::FedMlp,
    Baseline::Scaffold,
    Baseline::FedProx,
    Baseline::LocGcn,
    Baseline::FedGcn,
    Baseline::FedLit,
    Baseline::FedSagePlus,
];

impl Baseline {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::FedMlp => "FedMLP",
            Baseline::FedProx => "FedProx",
            Baseline::Scaffold => "SCAFFOLD",
            Baseline::LocGcn => "LocGCN",
            Baseline::FedGcn => "FedGCN",
            Baseline::FedSagePlus => "FedSage+",
            Baseline::FedLit => "FedLIT",
        }
    }

    /// Parses a table name (`"FedMLP"`, `"fedsage+"`, ...).
    pub fn parse(s: &str) -> Option<Baseline> {
        Some(match s.to_ascii_lowercase().as_str() {
            "fedmlp" => Baseline::FedMlp,
            "fedprox" => Baseline::FedProx,
            "scaffold" => Baseline::Scaffold,
            "locgcn" => Baseline::LocGcn,
            "fedgcn" => Baseline::FedGcn,
            "fedsage+" | "fedsage" | "fedsageplus" => Baseline::FedSagePlus,
            "fedlit" => Baseline::FedLit,
            _ => return None,
        })
    }

    /// The generic-engine options for the FedAvg-family baselines, `None`
    /// for the bespoke loops (SCAFFOLD, FedSage+, FedLIT). Baselines with
    /// options run on the shared engine and therefore support run
    /// checkpoint/resume.
    pub fn generic_opts(self) -> Option<GenericOpts> {
        Some(match self {
            Baseline::FedMlp => GenericOpts {
                name: "FedMLP",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.0,
            },
            Baseline::FedProx => GenericOpts {
                name: "FedProx",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.01,
            },
            Baseline::LocGcn => GenericOpts {
                name: "LocGCN",
                model: ModelKind::Gcn,
                aggregate: false,
                prox_mu: 0.0,
            },
            Baseline::FedGcn => GenericOpts {
                name: "FedGCN",
                model: ModelKind::Gcn,
                aggregate: true,
                prox_mu: 0.0,
            },
            Baseline::Scaffold | Baseline::FedSagePlus | Baseline::FedLit => return None,
        })
    }

    /// The baseline-specific training-schedule adjustment. FedProx's
    /// proximal term only acts once local weights drift from the round's
    /// global snapshot; at one local epoch per round it is identically
    /// zero, so FedProx's own recipe (Li et al.) gets at least two.
    pub fn adjust_config(self, cfg: &TrainConfig) -> TrainConfig {
        match self {
            Baseline::FedProx => TrainConfig {
                local_epochs: cfg.local_epochs.max(2),
                ..cfg.clone()
            },
            _ => cfg.clone(),
        }
    }
}

/// Runs one baseline end to end, without telemetry.
pub fn run_baseline(
    which: Baseline,
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
) -> RunResult {
    run_baseline_observed(which, clients, n_classes, cfg, &mut NullObserver)
}

/// Runs one baseline end to end, reporting round milestones to `obs`.
///
/// The FedAvg-family baselines run over the default in-process channel and
/// report full frame-level telemetry; the bespoke loops (SCAFFOLD,
/// FedSage+, FedLIT) report the round lifecycle, local steps, phases, and
/// aggregation milestones.
pub fn run_baseline_observed(
    which: Baseline,
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    if let Some(opts) = which.generic_opts() {
        return run_generic_observed(
            clients,
            n_classes,
            &which.adjust_config(cfg),
            &opts,
            &mut InProcChannel::new(),
            obs,
        );
    }
    match which {
        Baseline::Scaffold => scaffold::run_scaffold_observed(clients, n_classes, cfg, obs),
        Baseline::FedSagePlus => fedsage::run_fedsage_plus_observed(clients, n_classes, cfg, obs),
        Baseline::FedLit => fedlit::run_fedlit_observed(clients, n_classes, cfg, obs),
        // LINT: allow(panic) the `generic_opts` guard above returned for
        // every generic variant; only the three bespoke loops reach here.
        _ => unreachable!("generic baselines handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Baseline::FedSagePlus.name(), "FedSage+");
        assert_eq!(Baseline::Scaffold.name(), "SCAFFOLD");
        assert_eq!(ALL_BASELINES.len(), 7);
    }

    #[test]
    fn parse_roundtrips() {
        for b in ALL_BASELINES {
            assert_eq!(Baseline::parse(b.name()), Some(b), "{:?}", b);
        }
        assert_eq!(Baseline::parse("nope"), None);
    }

    #[test]
    fn generic_opts_cover_exactly_the_fedavg_family() {
        for b in ALL_BASELINES {
            match b {
                Baseline::Scaffold | Baseline::FedSagePlus | Baseline::FedLit => {
                    assert!(b.generic_opts().is_none(), "{:?} is bespoke", b)
                }
                _ => assert_eq!(b.generic_opts().expect("generic").name, b.name()),
            }
        }
    }

    #[test]
    fn only_fedprox_adjusts_the_schedule() {
        let cfg = TrainConfig::mini(0);
        assert_eq!(Baseline::FedProx.adjust_config(&cfg).local_epochs, 2);
        assert_eq!(
            Baseline::FedGcn.adjust_config(&cfg).local_epochs,
            cfg.local_epochs
        );
    }
}
