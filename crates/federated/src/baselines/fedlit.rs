//! FedLIT (Xie et al. 2023, paper ref. 34): federated node classification
//! under latent link-type heterogeneity.
//!
//! Mechanism (simplified faithfully, DESIGN.md §3): edges are soft-typed by
//! a federated k-means over edge embeddings `|x_u − x_v|`; each latent type
//! `t` gets its own normalised propagation operator `Ŝ_t` and its own
//! weights, and layers sum over types:
//! `H = ReLU(Σ_t Ŝ_t·X·W⁰_t)`, `logits = Σ_t Ŝ_t·H·W¹_t`.
//! Centroids are aggregated on the server between k-means iterations (the
//! `N·f²`-ish extra server cost in the paper's Table 3 row), then weights
//! are trained with plain FedAvg.
//!
//! The paper observes FedLIT needs "massive samples to cluster latent link
//! types" — with tiny parties the per-type subgraphs become sparse and
//! unstable, which this implementation reproduces.

use fedomd_metrics::Stopwatch;
use std::sync::Arc;

use rayon::prelude::*;

use fedomd_autograd::{Tape, Workspace};
use fedomd_nn::{Adam, ForwardOut, GraphInput, Model};
use fedomd_sparse::{normalized_adjacency, Csr};
use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::{xavier_uniform, Matrix};

use crate::client::ClientData;
use crate::comms::{Direction, TrafficClass};
use crate::config::{RunResult, TrainConfig};
use crate::engine::RoundDriver;
use crate::helpers::{fedavg, local_step};
use fedomd_telemetry::{NullObserver, Phase, PhaseStopwatch, RoundEvent, RoundObserver};

/// Number of latent link types.
const N_TYPES: usize = 3;
/// Federated k-means iterations.
const KMEANS_ITERS: usize = 4;

/// Edge embedding `|x_u − x_v|`.
fn edge_embedding(x: &Matrix, u: usize, v: usize) -> Vec<f32> {
    x.row(u)
        .iter()
        .zip(x.row(v))
        .map(|(a, b)| (a - b).abs())
        .collect()
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Federated k-means over all clients' edge embeddings: clients assign
/// locally, upload (sum, count) per centroid, server averages. Returns per
/// client the type of each local edge.
/// Per-client k-means scratch: (edge-type assignment, per-centroid sums).
type LocalKmeans = (Vec<usize>, Vec<(Vec<f64>, usize)>);

fn federated_edge_kmeans(clients: &[ClientData], seed: u64) -> Vec<Vec<usize>> {
    let f = clients[0].input.n_features();
    // Initialise centroids from a deterministic spread of one client's edges.
    let mut rng = seeded(derive(seed, 0xE000));
    let mut centroids: Vec<Vec<f32>> = (0..N_TYPES)
        .map(|_| {
            (0..f)
                .map(|_| 0.05 * fedomd_tensor::init::gaussian(&mut rng).abs())
                .collect()
        })
        .collect();

    let mut assignments: Vec<Vec<usize>> = clients.iter().map(|c| vec![0; c.edges.len()]).collect();

    for _ in 0..KMEANS_ITERS {
        // Local assignment + local sums.
        let locals: Vec<LocalKmeans> = clients
            .par_iter()
            .map(|c| {
                let mut assign = vec![0usize; c.edges.len()];
                let mut sums: Vec<(Vec<f64>, usize)> =
                    (0..N_TYPES).map(|_| (vec![0.0; f], 0)).collect();
                for (e, &(u, v)) in c.edges.iter().enumerate() {
                    let emb = edge_embedding(&c.input.x, u, v);
                    let t = (0..N_TYPES)
                        .min_by(|&a, &b| {
                            // LINT: allow(panic) arithmetic invariants:
                            // squared distances of finite embeddings are
                            // finite (so the partial_cmp is total), and
                            // N_TYPES is a positive constant (so min_by
                            // over the range is never empty).
                            sq_dist(&emb, &centroids[a])
                                .partial_cmp(&sq_dist(&emb, &centroids[b]))
                                .expect("finite distances")
                        })
                        .expect("N_TYPES > 0");
                    assign[e] = t;
                    sums[t].1 += 1;
                    for (s, x) in sums[t].0.iter_mut().zip(&emb) {
                        *s += *x as f64;
                    }
                }
                (assign, sums)
            })
            .collect();

        // Server: merge sums into new centroids.
        for t in 0..N_TYPES {
            let mut total = vec![0.0f64; f];
            let mut count = 0usize;
            for (_, sums) in &locals {
                count += sums[t].1;
                for (a, b) in total.iter_mut().zip(&sums[t].0) {
                    *a += *b;
                }
            }
            if count > 0 {
                centroids[t] = total
                    .into_iter()
                    .map(|v| (v / count as f64) as f32)
                    .collect();
            }
        }
        assignments = locals.into_iter().map(|(a, _)| a).collect();
    }
    assignments
}

/// Per-type propagation operators for one client (self-loops everywhere so
/// every type's operator is well defined even with zero edges of that type).
fn type_operators(client: &ClientData, assign: &[usize]) -> Vec<Arc<Csr>> {
    let n = client.n_nodes();
    (0..N_TYPES)
        .map(|t| {
            let edges: Vec<(usize, usize)> = client
                .edges
                .iter()
                .zip(assign)
                .filter(|(_, &a)| a == t)
                .map(|(&e, _)| e)
                .collect();
            Arc::new(normalized_adjacency(n, &edges))
        })
        .collect()
}

/// The per-type two-layer GCN of FedLIT.
struct FedLitModel {
    ops: Vec<Arc<Csr>>,
    w0: Vec<Matrix>,
    w1: Vec<Matrix>,
}

impl FedLitModel {
    fn new(ops: Vec<Arc<Csr>>, f: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let w0 = (0..ops.len())
            .map(|_| xavier_uniform(f, hidden, &mut rng))
            .collect();
        let w1 = (0..ops.len())
            .map(|_| xavier_uniform(hidden, classes, &mut rng))
            .collect();
        Self { ops, w0, w1 }
    }
}

impl Model for FedLitModel {
    fn forward(&self, tape: &mut Tape, input: &GraphInput) -> ForwardOut {
        let x = tape.constant_copied(&input.x);
        let mut param_vars = Vec::with_capacity(2 * self.ops.len());

        let mut h_sum = None;
        let mut w0_vars = Vec::with_capacity(self.ops.len());
        for (op, w0) in self.ops.iter().zip(&self.w0) {
            let w = tape.param_copied(w0);
            w0_vars.push(w);
            let sx = tape.spmm(op.clone(), x);
            let term = tape.matmul(sx, w);
            h_sum = Some(match h_sum {
                None => term,
                Some(acc) => tape.add(acc, term),
            });
        }
        // LINT: allow(panic) `self.ops` holds one operator per edge type
        // and N_TYPES is a positive constant, so the accumulator is Some.
        let h = tape.relu(h_sum.expect("at least one type"));

        let mut logit_sum = None;
        let mut w1_vars = Vec::with_capacity(self.ops.len());
        for (op, w1) in self.ops.iter().zip(&self.w1) {
            let w = tape.param_copied(w1);
            w1_vars.push(w);
            let sh = tape.spmm(op.clone(), h);
            let term = tape.matmul(sh, w);
            logit_sum = Some(match logit_sum {
                None => term,
                Some(acc) => tape.add(acc, term),
            });
        }
        // LINT: allow(panic) as above: the per-type loop ran at least once.
        let logits = logit_sum.expect("at least one type");

        param_vars.extend(w0_vars);
        param_vars.extend(w1_vars);
        ForwardOut {
            logits,
            hidden: vec![h],
            param_vars,
            ortho_weight_vars: Vec::new(),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        self.w0.iter().chain(&self.w1).cloned().collect()
    }

    fn set_params(&mut self, params: &[Matrix]) {
        let t = self.ops.len();
        assert_eq!(
            params.len(),
            2 * t,
            "FedLitModel::set_params: expected {} matrices",
            2 * t
        );
        for (i, w) in self.w0.iter_mut().enumerate() {
            assert_eq!(
                params[i].shape(),
                w.shape(),
                "FedLitModel::set_params: w0 shape"
            );
            *w = params[i].clone();
        }
        for (i, w) in self.w1.iter_mut().enumerate() {
            assert_eq!(
                params[t + i].shape(),
                w.shape(),
                "FedLitModel::set_params: w1 shape"
            );
            *w = params[t + i].clone();
        }
    }
}

/// Runs FedLIT to completion, without telemetry.
pub fn run_fedlit(clients: &[ClientData], n_classes: usize, cfg: &TrainConfig) -> RunResult {
    run_fedlit_observed(clients, n_classes, cfg, &mut NullObserver)
}

/// Runs FedLIT to completion, reporting round milestones to `obs`.
pub fn run_fedlit_observed(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    assert!(!clients.is_empty(), "run_fedlit: no clients");
    let m = clients.len();
    let f = clients[0].input.n_features();
    let mut driver = RoundDriver::new(cfg);
    driver.announce("FedLIT", m, obs);

    // Federated link-type clustering.
    let sw = PhaseStopwatch::start(Phase::Aggregation);
    let start = Stopwatch::start();
    let assignments = federated_edge_kmeans(clients, cfg.seed);
    driver.timer.add("server", start.elapsed());
    sw.finish(obs);
    for (c, _) in clients.iter().zip(&assignments) {
        // Each k-means iteration ships N_TYPES centroid sums (f floats each).
        driver.comms.record_scalars(
            Direction::Uplink,
            TrafficClass::Stats,
            KMEANS_ITERS * N_TYPES * f,
        );
        driver.comms.record_scalars(
            Direction::Downlink,
            TrafficClass::Stats,
            KMEANS_ITERS * N_TYPES * f,
        );
        let _ = c;
    }

    let mut models: Vec<Box<dyn Model>> = clients
        .iter()
        .zip(&assignments)
        .map(|(c, assign)| {
            let ops = type_operators(c, assign);
            Box::new(FedLitModel::new(
                ops,
                f,
                cfg.hidden_dim,
                n_classes,
                derive(cfg.seed, 0xE100),
            )) as Box<dyn Model>
        })
        .collect();
    let mut optimizers: Vec<Adam> = models
        .iter()
        .map(|_| Adam::new(cfg.lr, cfg.weight_decay))
        .collect();
    let n_scalars = models[0].n_scalars();
    let mut workspaces: Vec<Workspace> = models.iter().map(|_| Workspace::new()).collect();

    for round in 0..cfg.rounds {
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let start = Stopwatch::start();
        let losses: Vec<f32> = models
            .par_iter_mut()
            .zip(optimizers.par_iter_mut())
            .zip(clients.par_iter())
            .zip(workspaces.par_iter_mut())
            .map(|(((model, opt), client), ws)| {
                let mut loss = 0.0;
                for _ in 0..cfg.local_epochs {
                    loss = local_step(model, client, opt, ws, |_, _| Vec::new(), |_| {});
                }
                loss
            })
            .collect();
        driver.timer.add("client", start.elapsed());
        for (client, &loss) in losses.iter().enumerate() {
            obs.on_event(&RoundEvent::LocalStepDone {
                client: client as u32,
                epoch: (cfg.local_epochs.max(1) - 1) as u32,
                loss: loss as f64,
                ce: loss as f64,
                ortho: 0.0,
                cmd: 0.0,
            });
        }
        sw.finish(obs);

        let sw = PhaseStopwatch::start(Phase::Aggregation);
        let start = Stopwatch::start();
        let sets: Vec<Vec<Matrix>> = models.iter().map(|mo| mo.params()).collect();
        let global = fedavg(&sets, &vec![1.0; m]);
        for mo in models.iter_mut() {
            mo.set_params(&global);
        }
        driver.timer.add("server", start.elapsed());
        sw.finish(obs);
        obs.on_event(&RoundEvent::AggregationDone { participants: m });
        for _ in 0..m {
            driver
                .comms
                .record_scalars(Direction::Uplink, TrafficClass::Weights, n_scalars);
            driver
                .comms
                .record_scalars(Direction::Downlink, TrafficClass::Weights, n_scalars);
        }

        let mean_loss = losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64;
        driver.end_round_observed(round, mean_loss, &models, clients, obs);
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed("FedLIT", obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};

    fn mini_clients() -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        (
            setup_federation(&ds, &FederationConfig::mini(3, 0)),
            ds.n_classes,
        )
    }

    #[test]
    fn kmeans_assigns_every_edge_a_type() {
        let (clients, _) = mini_clients();
        let assigns = federated_edge_kmeans(&clients, 0);
        assert_eq!(assigns.len(), clients.len());
        for (c, a) in clients.iter().zip(&assigns) {
            assert_eq!(a.len(), c.edges.len());
            assert!(a.iter().all(|&t| t < N_TYPES));
        }
    }

    #[test]
    fn type_operators_cover_all_types() {
        let (clients, _) = mini_clients();
        let assigns = federated_edge_kmeans(&clients, 0);
        let ops = type_operators(&clients[0], &assigns[0]);
        assert_eq!(ops.len(), N_TYPES);
        for op in &ops {
            assert_eq!(op.rows(), clients[0].n_nodes());
            // Self-loops guarantee nnz >= n even for empty types.
            assert!(op.nnz() >= clients[0].n_nodes());
        }
    }

    #[test]
    fn fedlit_model_forward_shapes() {
        let (clients, k) = mini_clients();
        let assigns = federated_edge_kmeans(&clients, 0);
        let ops = type_operators(&clients[0], &assigns[0]);
        let f = clients[0].input.n_features();
        let model = FedLitModel::new(ops, f, 16, k, 0);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &clients[0].input);
        assert_eq!(tape.value(out.logits).shape(), (clients[0].n_nodes(), k));
        assert_eq!(out.param_vars.len(), 2 * N_TYPES);
    }

    #[test]
    fn fedlit_runs_and_learns_something() {
        let (clients, k) = mini_clients();
        let cfg = TrainConfig {
            rounds: 30,
            patience: 25,
            ..TrainConfig::mini(0)
        };
        let r = run_fedlit(&clients, k, &cfg);
        assert!(r.test_acc.is_finite());
        assert!(
            r.test_acc > 1.0 / k as f64,
            "acc {} at or below chance",
            r.test_acc
        );
        assert!(
            r.comms.stats_uplink_bytes > 0,
            "centroid traffic not accounted"
        );
    }
}
