//! FedSage+ (Zhang et al. 2021, paper ref. 38): local GraphSAGE training
//! over graphs *augmented with generated missing neighbours*.
//!
//! Faithful simplified mechanism (DESIGN.md §3):
//!
//! 1. **Impair** — each client hides a fraction of its nodes, producing
//!    supervision for "how many neighbours am I missing and what do they
//!    look like".
//! 2. **NeighGen** — a linear generator (count head + feature head) is
//!    trained on the impaired graph; the "+" federation of the original
//!    paper (cross-client feature gradients) becomes FedAvg over the
//!    generator weights.
//! 3. **Mend** — the generator runs on the intact local graph; nodes with
//!    high predicted missing-count receive synthetic neighbours with the
//!    predicted features.
//! 4. **Train** — FedAvg over [`GraphSage`] on the mended graphs.
//!
//! Under the paper's 1 % label rate the generator is trained from very few
//! reliable nodes, which is exactly the failure mode §5.2 attributes to
//! FedSage+ ("demand ... massive samples to ... maintain sampling
//! effectiveness").

use fedomd_metrics::Stopwatch;
use std::sync::Arc;

use rayon::prelude::*;

use fedomd_autograd::{Tape, Workspace};
use fedomd_nn::{Adam, GraphSage, Model, Optimizer};
use fedomd_sparse::row_normalized_adjacency;
use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::{xavier_uniform, Matrix};

use crate::client::ClientData;
use crate::comms::{Direction, TrafficClass};
use crate::config::{RunResult, TrainConfig};
use crate::engine::RoundDriver;
use crate::helpers::{fedavg, local_step};
use fedomd_telemetry::{NullObserver, Phase, PhaseStopwatch, RoundEvent, RoundObserver};

/// Fraction of nodes hidden to create generator supervision.
const HIDE_FRACTION: f64 = 0.25;
/// Generator training epochs.
const GEN_EPOCHS: usize = 30;
/// Maximum synthetic neighbours generated per node (the paper's `g`).
const MAX_GEN_PER_NODE: usize = 2;

/// The linear missing-neighbour generator: a count head `f → 1` and a
/// feature head `f → f`.
struct NeighGen {
    w_count: Matrix,
    w_feat: Matrix,
}

impl NeighGen {
    fn new(f: usize, seed: u64) -> Self {
        let mut rng = seeded(seed);
        Self {
            w_count: xavier_uniform(f, 1, &mut rng),
            w_feat: xavier_uniform(f, f, &mut rng),
        }
    }

    fn params(&self) -> Vec<Matrix> {
        vec![self.w_count.clone(), self.w_feat.clone()]
    }

    fn set_params(&mut self, p: &[Matrix]) {
        self.w_count = p[0].clone();
        self.w_feat = p[1].clone();
    }

    /// One Adam step on the impaired-graph supervision; returns the loss.
    fn train_step(
        &mut self,
        opt: &mut Adam,
        x_impaired: &Matrix,
        target_counts: &Matrix,
        target_feats: &Matrix,
    ) -> f32 {
        let n = x_impaired.rows().max(1) as f32;
        let mut tape = Tape::new();
        let x = tape.constant(x_impaired.clone());
        let wc = tape.param(self.w_count.clone());
        let wf = tape.param(self.w_feat.clone());
        let pred_c = tape.matmul(x, wc);
        let pred_f = tape.matmul(x, wf);
        let lc = tape.sq_diff(pred_c, target_counts);
        let lf = tape.sq_diff(pred_f, target_feats);
        let lc = tape.scale(lc, 1.0 / n);
        let lf = tape.scale(lf, 1.0 / n);
        let loss = tape.add(lc, lf);
        tape.backward(loss);
        // LINT: allow(panic) both params were registered on this tape and
        // participate in `loss`, so `backward` always writes their grads.
        let grads = vec![
            tape.grad(wc).cloned().expect("wc grad"),
            tape.grad(wf).cloned().expect("wf grad"),
        ];
        let mut params = self.params();
        opt.step(&mut params, &grads);
        self.set_params(&params);
        tape.scalar(loss)
    }

    /// Predicted (counts, features) on the intact graph.
    fn predict(&self, x: &Matrix) -> (Matrix, Matrix) {
        (
            fedomd_tensor::gemm::matmul(x, &self.w_count),
            fedomd_tensor::gemm::matmul(x, &self.w_feat),
        )
    }
}

/// Generator supervision from hiding a node subset: for each kept node,
/// how many of its neighbours were hidden and their mean feature vector.
fn impair(client: &ClientData, seed: u64) -> (Matrix, Matrix, Matrix) {
    let n = client.n_nodes();
    let mut rng = seeded(seed);
    use rand::Rng;
    let hidden: Vec<bool> = (0..n).map(|_| rng.gen_bool(HIDE_FRACTION)).collect();

    let f = client.input.n_features();
    let mut counts = Matrix::zeros(n, 1);
    let mut feats = Matrix::zeros(n, f);
    for &(u, v) in &client.edges {
        for (a, b) in [(u, v), (v, u)] {
            if !hidden[a] && hidden[b] {
                counts[(a, 0)] += 1.0;
                let row = client.input.x.row(b).to_vec();
                for (fv, xv) in feats.row_mut(a).iter_mut().zip(&row) {
                    *fv += xv;
                }
            }
        }
    }
    for r in 0..n {
        let c = counts[(r, 0)];
        if c > 0.0 {
            for fv in feats.row_mut(r) {
                *fv /= c;
            }
        }
    }
    // Inputs are the intact features of the *kept* nodes; hidden nodes get
    // zeroed supervision so they contribute nothing.
    let mut x = (*client.input.x).clone();
    for r in 0..n {
        if hidden[r] {
            for v in x.row_mut(r) {
                *v = 0.0;
            }
            counts[(r, 0)] = 0.0;
            for v in feats.row_mut(r) {
                *v = 0.0;
            }
        }
    }
    (x, counts, feats)
}

/// The mended client: original data plus synthetic neighbours, with the
/// row-stochastic aggregator SAGE uses.
fn mend(client: &ClientData, gen: &NeighGen, seed: u64) -> (ClientData, Arc<fedomd_sparse::Csr>) {
    let n = client.n_nodes();
    let f = client.input.n_features();
    let (counts, feats) = gen.predict(&client.input.x);
    let mut rng = seeded(seed);

    let mut new_feats: Vec<Vec<f32>> = Vec::new();
    let mut new_edges: Vec<(usize, usize)> = client.edges.clone();
    for u in 0..n {
        let want = counts[(u, 0)].round().max(0.0) as usize;
        for _ in 0..want.min(MAX_GEN_PER_NODE) {
            let idx = n + new_feats.len();
            let mut feat = feats.row(u).to_vec();
            for v in &mut feat {
                *v += 0.01 * fedomd_tensor::init::gaussian(&mut rng);
            }
            new_feats.push(feat);
            new_edges.push((u, idx));
        }
    }

    let total = n + new_feats.len();
    let mut x = Matrix::zeros(total, f);
    for r in 0..n {
        x.row_mut(r).copy_from_slice(client.input.x.row(r));
    }
    for (i, feat) in new_feats.iter().enumerate() {
        x.row_mut(n + i).copy_from_slice(feat);
    }
    let mut labels = client.labels.clone();
    labels.extend(std::iter::repeat_n(0, new_feats.len())); // never in any mask

    let s = Arc::new(fedomd_sparse::normalized_adjacency(total, &new_edges));
    let agg = Arc::new(row_normalized_adjacency(total, &new_edges));
    let input = fedomd_nn::GraphInput::new(s, x);
    (
        ClientData {
            input,
            labels,
            splits: client.splits.clone(),
            global_ids: client.global_ids.clone(),
            edges: new_edges,
        },
        agg,
    )
}

/// Runs FedSage+ to completion, without telemetry.
pub fn run_fedsage_plus(clients: &[ClientData], n_classes: usize, cfg: &TrainConfig) -> RunResult {
    run_fedsage_plus_observed(clients, n_classes, cfg, &mut NullObserver)
}

/// Runs FedSage+ to completion, reporting round milestones to `obs`.
pub fn run_fedsage_plus_observed(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    assert!(!clients.is_empty(), "run_fedsage_plus: no clients");
    let m = clients.len();
    let f = clients[0].input.n_features();
    let mut driver = RoundDriver::new(cfg);
    driver.announce("FedSage+", m, obs);

    // --- Phase 1+2: federated NeighGen training ---
    let gen_start = Stopwatch::start();
    let supervision: Vec<(Matrix, Matrix, Matrix)> = clients
        .par_iter()
        .enumerate()
        .map(|(i, c)| impair(c, derive(cfg.seed, 0xC100 + i as u64)))
        .collect();
    let mut gens: Vec<NeighGen> = (0..m)
        .map(|_| NeighGen::new(f, derive(cfg.seed, 0xC200)))
        .collect();
    let mut gen_opts: Vec<Adam> = (0..m).map(|_| Adam::new(cfg.lr, 0.0)).collect();
    for _ in 0..GEN_EPOCHS {
        gens.par_iter_mut()
            .zip(gen_opts.par_iter_mut())
            .zip(supervision.par_iter())
            .for_each(|((g, opt), (x, tc, tf))| {
                g.train_step(opt, x, tc, tf);
            });
        // The "+": federate the generator itself.
        let sets: Vec<Vec<Matrix>> = gens.iter().map(|g| g.params()).collect();
        let global = fedavg(&sets, &vec![1.0; m]);
        for g in &mut gens {
            g.set_params(&global);
        }
        let gen_scalars = f + f * f;
        for _ in 0..m {
            driver
                .comms
                .record_scalars(Direction::Uplink, TrafficClass::Weights, gen_scalars);
            driver
                .comms
                .record_scalars(Direction::Downlink, TrafficClass::Weights, gen_scalars);
        }
    }
    driver.timer.add("client", gen_start.elapsed());

    // --- Phase 3: mend local graphs ---
    let mended: Vec<(ClientData, Arc<fedomd_sparse::Csr>)> = clients
        .par_iter()
        .zip(gens.par_iter())
        .enumerate()
        .map(|(i, (c, g))| mend(c, g, derive(cfg.seed, 0xC300 + i as u64)))
        .collect();
    let mended_clients: Vec<ClientData> = mended.iter().map(|(c, _)| c.clone()).collect();

    // --- Phase 4: FedAvg over GraphSage on the mended graphs ---
    let mut models: Vec<Box<dyn Model>> = mended
        .iter()
        .map(|(_, agg)| {
            let mut rng = seeded(derive(cfg.seed, 0xC400));
            Box::new(
                GraphSage::new(f, cfg.hidden_dim, n_classes, &mut rng)
                    .with_mean_aggregator(agg.clone()),
            ) as Box<dyn Model>
        })
        .collect();
    let mut optimizers: Vec<Adam> = models
        .iter()
        .map(|_| Adam::new(cfg.lr, cfg.weight_decay))
        .collect();
    let n_scalars = models[0].n_scalars();
    let mut workspaces: Vec<Workspace> = models.iter().map(|_| Workspace::new()).collect();

    for round in 0..cfg.rounds {
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let start = Stopwatch::start();
        let losses: Vec<f32> = models
            .par_iter_mut()
            .zip(optimizers.par_iter_mut())
            .zip(mended_clients.par_iter())
            .zip(workspaces.par_iter_mut())
            .map(|(((model, opt), client), ws)| {
                let mut loss = 0.0;
                for _ in 0..cfg.local_epochs {
                    loss = local_step(model, client, opt, ws, |_, _| Vec::new(), |_| {});
                }
                loss
            })
            .collect();
        driver.timer.add("client", start.elapsed());
        for (client, &loss) in losses.iter().enumerate() {
            obs.on_event(&RoundEvent::LocalStepDone {
                client: client as u32,
                epoch: (cfg.local_epochs.max(1) - 1) as u32,
                loss: loss as f64,
                ce: loss as f64,
                ortho: 0.0,
                cmd: 0.0,
            });
        }
        sw.finish(obs);

        let sw = PhaseStopwatch::start(Phase::Aggregation);
        let start = Stopwatch::start();
        let sets: Vec<Vec<Matrix>> = models.iter().map(|mo| mo.params()).collect();
        let global = fedavg(&sets, &vec![1.0; m]);
        for mo in models.iter_mut() {
            mo.set_params(&global);
        }
        driver.timer.add("server", start.elapsed());
        sw.finish(obs);
        obs.on_event(&RoundEvent::AggregationDone { participants: m });
        for _ in 0..m {
            driver
                .comms
                .record_scalars(Direction::Uplink, TrafficClass::Weights, n_scalars);
            driver
                .comms
                .record_scalars(Direction::Downlink, TrafficClass::Weights, n_scalars);
        }

        let mean_loss = losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64;
        driver.end_round_observed(round, mean_loss, &models, &mended_clients, obs);
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed("FedSage+", obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};

    fn mini_clients() -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        (
            setup_federation(&ds, &FederationConfig::mini(3, 0)),
            ds.n_classes,
        )
    }

    #[test]
    fn impair_produces_consistent_supervision() {
        let (clients, _) = mini_clients();
        let (x, counts, feats) = impair(&clients[0], 1);
        let n = clients[0].n_nodes();
        assert_eq!(x.rows(), n);
        assert_eq!(counts.shape(), (n, 1));
        assert_eq!(feats.rows(), n);
        // Some nodes should have hidden neighbours.
        assert!(counts.sum() > 0.0, "no supervision generated");
        // Counts are non-negative integers.
        assert!(counts
            .as_slice()
            .iter()
            .all(|&c| c >= 0.0 && c.fract() == 0.0));
    }

    #[test]
    fn mend_adds_nodes_and_edges() {
        let (clients, _) = mini_clients();
        let gen = NeighGen::new(clients[0].input.n_features(), 0);
        // Force positive predicted counts by biasing the count head.
        let mut g = gen;
        g.w_count = Matrix::full(clients[0].input.n_features(), 1, 1.0);
        let (mended, agg) = mend(&clients[0], &g, 2);
        assert!(mended.n_nodes() >= clients[0].n_nodes());
        assert!(mended.edges.len() >= clients[0].edges.len());
        assert_eq!(agg.rows(), mended.n_nodes());
        // Original masks survive untouched.
        assert_eq!(mended.splits.train, clients[0].splits.train);
    }

    #[test]
    fn fedsage_runs_and_learns_something() {
        let (clients, k) = mini_clients();
        let cfg = TrainConfig {
            rounds: 30,
            patience: 25,
            ..TrainConfig::mini(0)
        };
        let r = run_fedsage_plus(&clients, k, &cfg);
        assert!(r.test_acc.is_finite());
        assert!(
            r.test_acc > 1.0 / k as f64,
            "acc {} at or below chance",
            r.test_acc
        );
        assert!(r.comms.uplink_bytes > 0);
    }
}
