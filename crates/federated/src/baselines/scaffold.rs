//! SCAFFOLD (Karimireddy et al. 2020, paper ref. 16): FedAvg over the MLP
//! with control variates correcting client drift.
//!
//! Per round, client `i` minimises its loss with the corrected gradient
//! `g − c_i + c`; after `K` local steps it refreshes its control variate
//! with option II of the paper,
//! `c_i⁺ = c_i − c + (w_global − w_i)/(K·η)`, and the server updates
//! `c ← c + mean_i(c_i⁺ − c_i)`. Uplink carries weights *and* the control
//! deltas, which is why SCAFFOLD's server cost row in the paper's Table 3
//! carries the extra `N·f²` term.

use fedomd_metrics::Stopwatch;

use rayon::prelude::*;

use fedomd_autograd::Workspace;
use fedomd_nn::{Model, Optimizer, Sgd};
use fedomd_tensor::rng::derive;
use fedomd_tensor::Matrix;

use crate::client::ClientData;
use crate::comms::{Direction, TrafficClass};
use crate::config::{RunResult, TrainConfig};
use crate::engine::{build_model, ModelKind, RoundDriver};
use crate::helpers::{fedavg, local_step};
use fedomd_telemetry::{NullObserver, Phase, PhaseStopwatch, RoundEvent, RoundObserver};

/// Runs SCAFFOLD to completion, without telemetry.
pub fn run_scaffold(clients: &[ClientData], n_classes: usize, cfg: &TrainConfig) -> RunResult {
    run_scaffold_observed(clients, n_classes, cfg, &mut NullObserver)
}

/// Runs SCAFFOLD to completion, reporting round milestones to `obs`.
pub fn run_scaffold_observed(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    assert!(!clients.is_empty(), "run_scaffold: no clients");
    let m = clients.len();
    let mut models: Vec<Box<dyn Model>> = clients
        .iter()
        .map(|c| {
            build_model(
                ModelKind::Mlp,
                c,
                n_classes,
                cfg.hidden_dim,
                derive(cfg.seed, 0xB000),
            )
        })
        .collect();
    // SCAFFOLD's control-variate refresh (option II) assumes SGD-style
    // local steps — `c_i⁺ = c_i − c + (w_global − w_i)/(K·η)` reads the
    // accumulated gradient out of the weight delta, which adaptive
    // optimisers (Adam) break badly. Momentum-SGD at 3× the federation's
    // base rate keeps the refresh meaningful (momentum folds into an
    // effective step size) while training at a pace comparable to the
    // Adam-based baselines.
    let sgd_lr = cfg.lr * 3.0;
    let mut optimizers: Vec<Sgd> = models
        .iter()
        .map(|_| Sgd::with_momentum(sgd_lr, 0.9, cfg.weight_decay))
        .collect();

    let zeros_like = |params: &[Matrix]| -> Vec<Matrix> {
        params
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect()
    };
    let template = models[0].params();
    // Server control variate c and per-client c_i.
    let mut server_c = zeros_like(&template);
    let mut client_c: Vec<Vec<Matrix>> = (0..m).map(|_| zeros_like(&template)).collect();

    let mut driver = RoundDriver::new(cfg);
    driver.announce("SCAFFOLD", m, obs);
    let n_scalars = models[0].n_scalars();
    let k_steps = cfg.local_epochs.max(1);
    let mut workspaces: Vec<Workspace> = models.iter().map(|_| Workspace::new()).collect();

    for round in 0..cfg.rounds {
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        let global = models[0].params();
        let sw = PhaseStopwatch::start(Phase::LocalTrain);
        let start = Stopwatch::start();
        let server_c_ref = &server_c;
        let global_ref = &global;

        // Parallel local training with corrected gradients; returns the
        // refreshed control variate deltas.
        let outcomes: Vec<(f32, Vec<Matrix>)> = models
            .par_iter_mut()
            .zip(optimizers.par_iter_mut())
            .zip(clients.par_iter())
            .zip(client_c.par_iter_mut())
            .zip(workspaces.par_iter_mut())
            .map(|((((model, opt), client), ci), ws)| {
                let mut loss = 0.0;
                for _ in 0..k_steps {
                    loss = local_step(
                        model,
                        client,
                        opt,
                        ws,
                        |_, _| Vec::new(),
                        |grads| {
                            for ((g, c_i), c) in grads.iter_mut().zip(ci.iter()).zip(server_c_ref) {
                                for ((gv, &cv_i), &cv) in g
                                    .as_mut_slice()
                                    .iter_mut()
                                    .zip(c_i.as_slice())
                                    .zip(c.as_slice())
                                {
                                    *gv += cv - cv_i;
                                }
                            }
                        },
                    );
                }
                // Option II refresh: c_i⁺ = c_i − c + (w_global − w_i)/(Kη).
                let inv = 1.0 / (k_steps as f32 * opt.learning_rate());
                let params = model.params();
                let mut delta = Vec::with_capacity(ci.len());
                for ((c_i, c), (g, w)) in ci
                    .iter_mut()
                    .zip(server_c_ref)
                    .zip(global_ref.iter().zip(&params))
                {
                    let mut d = Matrix::zeros(c_i.rows(), c_i.cols());
                    let ci_s = c_i.as_mut_slice();
                    let (c_s, g_s, w_s) = (c.as_slice(), g.as_slice(), w.as_slice());
                    for (idx, d_v) in d.as_mut_slice().iter_mut().enumerate() {
                        let new = ci_s[idx] - c_s[idx] + (g_s[idx] - w_s[idx]) * inv;
                        *d_v = new - ci_s[idx];
                        ci_s[idx] = new;
                    }
                    delta.push(d);
                }
                (loss, delta)
            })
            .collect();
        driver.timer.add("client", start.elapsed());
        for (client, (loss, _)) in outcomes.iter().enumerate() {
            obs.on_event(&RoundEvent::LocalStepDone {
                client: client as u32,
                epoch: (k_steps - 1) as u32,
                loss: *loss as f64,
                ce: *loss as f64,
                ortho: 0.0,
                cmd: 0.0,
            });
        }
        sw.finish(obs);

        // Server: aggregate weights and control deltas.
        let sw = PhaseStopwatch::start(Phase::Aggregation);
        let start = Stopwatch::start();
        let param_sets: Vec<Vec<Matrix>> = models.iter().map(|mo| mo.params()).collect();
        let new_global = fedavg(&param_sets, &vec![1.0; m]);
        for (_, delta) in &outcomes {
            for (c, d) in server_c.iter_mut().zip(delta) {
                fedomd_tensor::ops::axpy(c, 1.0 / m as f32, d);
            }
        }
        for model in models.iter_mut() {
            model.set_params(&new_global);
        }
        driver.timer.add("server", start.elapsed());
        sw.finish(obs);
        obs.on_event(&RoundEvent::AggregationDone { participants: m });
        for _ in 0..m {
            // Weights up/down plus control-variate deltas up and c down.
            driver
                .comms
                .record_scalars(Direction::Uplink, TrafficClass::Weights, 2 * n_scalars);
            driver
                .comms
                .record_scalars(Direction::Downlink, TrafficClass::Weights, 2 * n_scalars);
        }

        let mean_loss =
            outcomes.iter().map(|(l, _)| *l as f64).sum::<f64>() / outcomes.len() as f64;
        driver.end_round_observed(round, mean_loss, &models, clients, obs);
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed("SCAFFOLD", obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};

    #[test]
    fn scaffold_learns_above_chance() {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
        let cfg = TrainConfig {
            rounds: 40,
            patience: 30,
            ..TrainConfig::mini(0)
        };
        let r = run_scaffold(&clients, ds.n_classes, &cfg);
        assert!(r.test_acc > 1.0 / ds.n_classes as f64, "acc {}", r.test_acc);
        assert!(r.test_acc.is_finite());
        // Double traffic versus plain FedAvg.
        assert!(r.comms.uplink_bytes > 0);
    }

    #[test]
    fn scaffold_is_deterministic() {
        let ds = generate(&spec(DatasetName::CoraMini), 1);
        let clients = setup_federation(&ds, &FederationConfig::mini(2, 1));
        let cfg = TrainConfig {
            rounds: 8,
            ..TrainConfig::mini(1)
        };
        let a = run_scaffold(&clients, ds.n_classes, &cfg);
        let b = run_scaffold(&clients, ds.n_classes, &cfg);
        assert_eq!(a.test_acc, b.test_acc);
    }
}
