//! Train/fold overlap: the in-process half of pipelined rounds.
//!
//! The phase-sequential round loop puts a hard barrier between the rayon
//! training sweep and aggregation: every client trains, *then* the server
//! folds every upload. [`fold_in_order`] removes the barrier without
//! giving up bit-identity. Rayon workers hand `(client_id, payload)` to a
//! dedicated fold thread over a channel the moment they finish; the fold
//! thread buffers out-of-order arrivals in a reorder window (a `BTreeMap`
//! keyed by sender id) and folds **strictly in the caller's expected
//! ascending-id order** — the exact order the sequential loop folds in —
//! so the accumulated result is `to_bits`-identical to the barrier path
//! while the server-side fold work overlaps the still-training stragglers.
//!
//! Deadlock freedom: the fold thread *always* drains the channel into the
//! reorder window, never blocking on "the next expected id" — so a worker
//! can never be stuck behind a fold that is itself waiting on that
//! worker's pool slot. The window holds at most the out-of-order gap
//! (worst case the whole cohort minus one when client 0 finishes last,
//! typically a handful of payloads).

use std::collections::BTreeMap;

use crossbeam::channel;

/// Re-exported sender type the `produce` closure pushes finished payloads
/// through: `(sender_id, payload)` pairs, any arrival order.
pub type FoldSender<T> = channel::Sender<(u32, T)>;

/// Runs `produce` (typically a rayon sweep) concurrently with a fold
/// thread that consumes its `(id, payload)` sends and applies `fold` in
/// strictly ascending `expected` order, buffering early arrivals in a
/// reorder window. Returns the folded state and `produce`'s own result.
///
/// `expected` must be sorted ascending and duplicate-free — it is the
/// fold schedule (e.g. the round's cohort ids). A payload whose id is
/// not reachable through the schedule (or that arrives after a gap id
/// that never shows up) is folded at close, still in ascending id order,
/// so the total fold order over whatever actually arrived is ascending —
/// the same order a batch collect sorted by sender would produce.
pub fn fold_in_order<T, S, R, F, P>(expected: &[u32], state: S, mut fold: F, produce: P) -> (S, R)
where
    T: Send,
    S: Send,
    F: FnMut(&mut S, u32, T) + Send,
    P: FnOnce(&FoldSender<T>) -> R,
{
    debug_assert!(
        expected.windows(2).all(|w| w[0] < w[1]),
        "fold_in_order: expected ids must be ascending and distinct"
    );
    // Hand-off only: the fold thread drains every send into its window
    // immediately, so the queue never backs a blocked worker.
    let (tx, rx) = channel::bounded::<(u32, T)>(2);
    std::thread::scope(|scope| {
        let folder = scope.spawn(move || {
            let mut state = state;
            let mut window: BTreeMap<u32, T> = BTreeMap::new();
            let mut next = 0usize;
            while let Ok((id, item)) = rx.recv() {
                window.insert(id, item);
                // Fold the contiguous arrived prefix of the schedule.
                while next < expected.len() {
                    let Some(item) = window.remove(&expected[next]) else {
                        break;
                    };
                    fold(&mut state, expected[next], item);
                    next += 1;
                }
            }
            // Producer done: whatever still waits behind a gap (an
            // expected id that never arrived) folds now, ascending.
            while let Some((id, item)) = window.pop_first() {
                fold(&mut state, id, item);
            }
            state
        });
        let produced = produce(&tx);
        // Closing the channel is what ends the fold thread's recv loop.
        drop(tx);
        let state = folder
            .join()
            // LINT: allow(panic) a panic on the fold thread (e.g. a
            // protocol-invariant violation inside `fold`) must propagate,
            // not vanish into a half-folded result.
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (state, produced)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Sends `items` in the given order, returns the fold log.
    fn fold_log(expected: &[u32], arrivals: &[u32]) -> Vec<u32> {
        let (log, ()) = fold_in_order(
            expected,
            Vec::new(),
            |log: &mut Vec<u32>, id, ()| log.push(id),
            |tx| {
                for &id in arrivals {
                    tx.send((id, ())).expect("fold thread alive");
                }
            },
        );
        log
    }

    #[test]
    fn folds_reversed_arrivals_in_ascending_order() {
        assert_eq!(fold_log(&[0, 1, 2, 3], &[3, 2, 1, 0]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparse_schedules_fold_in_schedule_order() {
        assert_eq!(fold_log(&[1, 4, 7], &[7, 1, 4]), vec![1, 4, 7]);
    }

    #[test]
    fn a_missing_expected_id_does_not_strand_later_arrivals() {
        // Id 1 never arrives: 0 folds on arrival, 2 and 3 wait behind the
        // gap and drain ascending at close.
        assert_eq!(fold_log(&[0, 1, 2, 3], &[2, 0, 3]), vec![0, 2, 3]);
    }

    #[test]
    fn empty_production_returns_the_initial_state() {
        assert_eq!(fold_log(&[0, 1, 2], &[]), Vec::<u32>::new());
    }

    #[test]
    fn produce_result_passes_through() {
        let (sum, answer) = fold_in_order(
            &[0, 1],
            0u64,
            |acc: &mut u64, _id, v: u64| *acc += v,
            |tx| {
                tx.send((1, 10)).unwrap();
                tx.send((0, 7)).unwrap();
                42usize
            },
        );
        assert_eq!(sum, 17);
        assert_eq!(answer, 42);
    }

    #[test]
    fn parallel_producers_still_fold_ascending() {
        use rayon::prelude::*;
        let expected: Vec<u32> = (0..64).collect();
        let (log, ()) = fold_in_order(
            &expected,
            Vec::new(),
            |log: &mut Vec<u32>, id, ()| log.push(id),
            |tx| {
                expected.par_iter().for_each(|&id| {
                    tx.send((id, ())).expect("fold thread alive");
                });
            },
        );
        assert_eq!(log, expected);
    }

    proptest! {
        /// Any arrival permutation of any subset of the schedule folds in
        /// ascending id order — the sequential oracle's order.
        #[test]
        fn fold_order_is_ascending_for_any_arrival_order(
            ids in proptest::collection::vec(0u32..32, 0..16),
            seed in 0u64..1000,
        ) {
            let mut expected: Vec<u32> = ids.clone();
            expected.sort_unstable();
            expected.dedup();
            // A cheap seeded shuffle for the arrival order.
            let mut arrivals = expected.clone();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            for i in (1..arrivals.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                arrivals.swap(i, (s % (i as u64 + 1)) as usize);
            }
            prop_assert_eq!(fold_log(&expected, &arrivals), expected);
        }

        /// Float accumulation through the pipeline is bit-identical to a
        /// sequential ascending fold, whatever the arrival order.
        #[test]
        fn sum_is_bit_identical_to_the_sequential_oracle(
            vals in proptest::collection::vec(-1e6f64..1e6, 1..12),
            seed in 0u64..1000,
        ) {
            let expected: Vec<u32> = (0..vals.len() as u32).collect();
            let mut arrivals: Vec<u32> = expected.clone();
            let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1);
            for i in (1..arrivals.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                arrivals.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let (piped, ()) = fold_in_order(
                &expected,
                0.0f64,
                |acc: &mut f64, _id, v: f64| *acc += v,
                |tx| {
                    for &id in &arrivals {
                        tx.send((id, vals[id as usize])).expect("fold thread alive");
                    }
                },
            );
            let sequential: f64 = vals.iter().sum();
            prop_assert_eq!(piped.to_bits(), sequential.to_bits());
        }
    }
}
