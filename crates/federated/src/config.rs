//! Training configuration and run results shared by every algorithm.

use crate::comms::CommsLog;
use fedomd_metrics::Timer;

/// Federated training hyper-parameters (paper §5.1 defaults via
/// [`TrainConfig::paper`], fast defaults via [`TrainConfig::mini`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum communication rounds (paper: 1000 epochs, interval 1 — one
    /// local epoch per round).
    pub rounds: usize,
    /// Local epochs per round (paper communication interval = 1).
    pub local_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Early-stopping patience in rounds on validation accuracy
    /// (paper: 200).
    pub patience: usize,
    /// Hidden width for all models (paper: 64).
    pub hidden_dim: usize,
    /// Run seed; drives init, scheduling, and any stochastic baseline step.
    pub seed: u64,
    /// Evaluate every this many rounds (1 reproduces the paper's per-round
    /// convergence curves).
    pub eval_every: usize,
}

impl TrainConfig {
    /// Paper-faithful settings (1000 rounds, patience 200).
    pub fn paper(seed: u64) -> Self {
        Self {
            rounds: 1000,
            local_epochs: 1,
            lr: 0.01,
            weight_decay: 1e-4,
            patience: 200,
            hidden_dim: 64,
            seed,
            eval_every: 1,
        }
    }

    /// Fast settings for the mini datasets (same shape, fewer rounds).
    pub fn mini(seed: u64) -> Self {
        Self {
            rounds: 120,
            local_epochs: 1,
            lr: 0.03,
            weight_decay: 1e-4,
            patience: 40,
            hidden_dim: 32,
            seed,
            eval_every: 2,
        }
    }
}

/// Accuracy snapshot at one evaluated round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStats {
    /// Communication round index (0-based).
    pub round: usize,
    /// Mean training loss across clients.
    pub train_loss: f64,
    /// Test-size-weighted validation accuracy across clients.
    pub val_acc: f64,
    /// Test-size-weighted test accuracy across clients.
    pub test_acc: f64,
}

/// Outcome of one federated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Test accuracy at the best-validation round (the number the paper
    /// tables report).
    pub test_acc: f64,
    /// Best validation accuracy.
    pub val_acc: f64,
    /// Round at which the best validation accuracy occurred.
    pub best_round: usize,
    /// Per-evaluation history (the paper's Fig. 5 curves).
    pub history: Vec<RoundStats>,
    /// Total traffic.
    pub comms: CommsLog,
    /// Wall-clock buckets: `"client"`, `"server"`, `"inference"`.
    pub timing: Timer,
}

impl RunResult {
    /// True when validation accuracy improved at some point beyond the
    /// first evaluation (a cheap convergence sanity check).
    pub fn improved(&self) -> bool {
        self.history
            .first()
            .map(|first| self.val_acc > first.val_acc + 1e-9)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = TrainConfig::paper(0);
        assert_eq!(c.rounds, 1000);
        assert_eq!(c.patience, 200);
        assert!((c.weight_decay - 1e-4).abs() < 1e-12);
        assert_eq!(c.hidden_dim, 64);
        assert_eq!(c.local_epochs, 1);
    }

    #[test]
    fn improved_detection() {
        let base = RunResult {
            algorithm: "x".into(),
            test_acc: 0.5,
            val_acc: 0.6,
            best_round: 10,
            history: vec![
                RoundStats {
                    round: 0,
                    train_loss: 2.0,
                    val_acc: 0.2,
                    test_acc: 0.2,
                },
                RoundStats {
                    round: 1,
                    train_loss: 1.0,
                    val_acc: 0.6,
                    test_acc: 0.5,
                },
            ],
            comms: CommsLog::new(),
            timing: Timer::new(),
        };
        assert!(base.improved());
        let mut flat = base.clone();
        flat.val_acc = 0.2;
        assert!(!flat.improved());
    }
}
