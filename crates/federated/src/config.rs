//! Training configuration and run results shared by every algorithm.

use std::fmt;

use crate::comms::CommsLog;
use fedomd_metrics::Timer;
use fedomd_tensor::rng::{derive, seeded};
use rand::Rng;

/// Salt separating the cohort-sampling RNG stream from every other
/// derived stream in the run.
const COHORT_SALT: u64 = 0xC0_4074;

/// Per-round client sampling — FedAvg-style partial participation.
///
/// Each round the driver samples `max(min_cohort, round(sample_frac · m))`
/// of the `m` clients (capped at `m`); only the sampled cohort
/// forwards, exchanges statistics, trains, and uploads weights, while the
/// aggregated global model is still broadcast to *all* clients so pooled
/// evaluation always sees a synchronised federation. The cohort is a pure
/// function of `(seed, round)` — independent of the run seed — so resumed
/// runs replay the same cohorts and the same seed always samples the same
/// clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CohortConfig {
    /// Fraction of clients sampled per round; `>= 1.0` means full
    /// participation (the sampler returns `0..m` exactly).
    pub sample_frac: f64,
    /// Lower bound on the cohort size; [`Self::validate`] rejects bounds
    /// that exceed the federation size.
    pub min_cohort: usize,
    /// Seed of the sampling stream.
    pub seed: u64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl CohortConfig {
    /// Full participation: every client trains every round.
    pub fn full() -> Self {
        Self {
            sample_frac: 1.0,
            min_cohort: 1,
            seed: 0,
        }
    }

    /// Samples `sample_frac` of the clients per round.
    pub fn fraction(sample_frac: f64, seed: u64) -> Self {
        Self {
            sample_frac,
            min_cohort: 1,
            seed,
        }
    }

    /// True when sampling is disabled (every client participates).
    pub fn is_full(&self) -> bool {
        self.sample_frac >= 1.0
    }

    /// Checks the sampling parameters against a federation of `m`
    /// clients. Every run entry point — the in-process trainers, the TCP
    /// server, and the TCP client — calls this before the first round, so
    /// a misconfigured federation fails loudly up front instead of
    /// silently training on an accidental cohort.
    pub fn validate(&self, m: usize) -> Result<(), CohortConfigError> {
        if !self.sample_frac.is_finite() {
            return Err(CohortConfigError::NonFiniteSampleFrac {
                got: self.sample_frac,
            });
        }
        if self.sample_frac <= 0.0 {
            return Err(CohortConfigError::NonPositiveSampleFrac {
                got: self.sample_frac,
            });
        }
        if self.min_cohort == 0 {
            return Err(CohortConfigError::ZeroMinCohort);
        }
        if self.min_cohort > m {
            return Err(CohortConfigError::MinCohortExceedsParties {
                min_cohort: self.min_cohort,
                parties: m,
            });
        }
        Ok(())
    }

    /// Cohort size for a federation of `m` clients. Assumes a config that
    /// passed [`Self::validate`] but stays total regardless: the result is
    /// always in `1..=m` (for `m > 0`), so a direct call can never produce
    /// an out-of-range cohort.
    pub fn cohort_size(&self, m: usize) -> usize {
        if self.is_full() || m == 0 {
            return m;
        }
        let target = (self.sample_frac * m as f64).round() as usize;
        target.max(self.min_cohort).clamp(1, m)
    }

    /// The round's cohort: sorted, distinct client ids. A partial
    /// Fisher–Yates shuffle seeded by `(self.seed, round)` alone, so the
    /// same seed always samples the same cohort for a given round.
    pub fn sample(&self, round: u64, m: usize) -> Vec<usize> {
        if self.is_full() || m == 0 {
            return (0..m).collect();
        }
        let k = self.cohort_size(m);
        let mut ids: Vec<usize> = (0..m).collect();
        let mut rng = seeded(derive(derive(self.seed, COHORT_SALT), round));
        for j in 0..k {
            let pick = rng.gen_range(j..m);
            ids.swap(j, pick);
        }
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

/// Why a [`CohortConfig`] was rejected.
///
/// Invalid sampling parameters used to be silently clamped into range
/// inside [`CohortConfig::cohort_size`] — a NaN or negative
/// `sample_frac` quietly became a 1-client cohort. They are now rejected
/// up front by [`CohortConfig::validate`] at every run entry point, and
/// over TCP the server refuses to even start a run with them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CohortConfigError {
    /// `sample_frac` is NaN or infinite.
    NonFiniteSampleFrac {
        /// The rejected value.
        got: f64,
    },
    /// `sample_frac <= 0` asks to sample nobody.
    NonPositiveSampleFrac {
        /// The rejected value.
        got: f64,
    },
    /// `min_cohort == 0` — every round needs at least one participant.
    ZeroMinCohort,
    /// `min_cohort` exceeds the federation size.
    MinCohortExceedsParties {
        /// The configured lower bound.
        min_cohort: usize,
        /// The federation size it was validated against.
        parties: usize,
    },
}

impl fmt::Display for CohortConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CohortConfigError::NonFiniteSampleFrac { got } => {
                write!(f, "cohort sample_frac must be finite, got {got}")
            }
            CohortConfigError::NonPositiveSampleFrac { got } => {
                write!(f, "cohort sample_frac must be positive, got {got}")
            }
            CohortConfigError::ZeroMinCohort => {
                write!(f, "cohort min_cohort must be at least 1")
            }
            CohortConfigError::MinCohortExceedsParties {
                min_cohort,
                parties,
            } => {
                write!(
                    f,
                    "cohort min_cohort {min_cohort} exceeds the federation size {parties}"
                )
            }
        }
    }
}

impl std::error::Error for CohortConfigError {}

/// Round-pipelining switches.
///
/// With `enabled`, the round drivers overlap client training with
/// server-side streaming folds: in-process, rayon workers hand each
/// finished update to a dedicated fold thread over a bounded channel;
/// over TCP, the server folds per-connection frames on arrival instead
/// of buffering the whole cohort. Either way the fold order stays
/// ascending sender id (out-of-order arrivals wait in a reorder
/// window), so a pipelined run is bit-identical to the sequential one —
/// the flag changes wall-clock and server memory, never the numbers.
/// That is also why it is excluded from the TCP run-config digest: a
/// pipelined server accepts sequential clients and vice versa.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Fold uploads while later clients are still training (default off:
    /// the phase-sequential path is the seed-pinned reference).
    pub enabled: bool,
}

impl PipelineConfig {
    /// Fold-on-arrival on.
    pub fn on() -> Self {
        Self { enabled: true }
    }
}

/// Federated training hyper-parameters (paper §5.1 defaults via
/// [`TrainConfig::paper`], fast defaults via [`TrainConfig::mini`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum communication rounds (paper: 1000 epochs, interval 1 — one
    /// local epoch per round).
    pub rounds: usize,
    /// Local epochs per round (paper communication interval = 1).
    pub local_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Early-stopping patience in rounds on validation accuracy
    /// (paper: 200).
    pub patience: usize,
    /// Hidden width for all models (paper: 64).
    pub hidden_dim: usize,
    /// Run seed; drives init, scheduling, and any stochastic baseline step.
    pub seed: u64,
    /// Evaluate every this many rounds (1 reproduces the paper's per-round
    /// convergence curves).
    pub eval_every: usize,
    /// Per-round client sampling (default: full participation).
    pub cohort: CohortConfig,
    /// Train/fold overlap (default: off, the phase-sequential path).
    pub pipeline: PipelineConfig,
}

impl TrainConfig {
    /// Paper-faithful settings (1000 rounds, patience 200).
    pub fn paper(seed: u64) -> Self {
        Self {
            rounds: 1000,
            local_epochs: 1,
            lr: 0.01,
            weight_decay: 1e-4,
            patience: 200,
            hidden_dim: 64,
            seed,
            eval_every: 1,
            cohort: CohortConfig::full(),
            pipeline: PipelineConfig::default(),
        }
    }

    /// Fast settings for the mini datasets (same shape, fewer rounds).
    pub fn mini(seed: u64) -> Self {
        Self {
            rounds: 120,
            local_epochs: 1,
            lr: 0.03,
            weight_decay: 1e-4,
            patience: 40,
            hidden_dim: 32,
            seed,
            eval_every: 2,
            cohort: CohortConfig::full(),
            pipeline: PipelineConfig::default(),
        }
    }

    /// Checks the parts of the schedule that depend on the federation
    /// size `m` (currently the cohort sampling parameters). Run entry
    /// points call this before the first round.
    pub fn validate(&self, m: usize) -> Result<(), CohortConfigError> {
        self.cohort.validate(m)
    }
}

/// Accuracy snapshot at one evaluated round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStats {
    /// Communication round index (0-based).
    pub round: usize,
    /// Mean training loss across clients.
    pub train_loss: f64,
    /// Test-size-weighted validation accuracy across clients.
    pub val_acc: f64,
    /// Test-size-weighted test accuracy across clients.
    pub test_acc: f64,
}

/// Outcome of one federated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Test accuracy at the best-validation round (the number the paper
    /// tables report).
    pub test_acc: f64,
    /// Best validation accuracy.
    pub val_acc: f64,
    /// Round at which the best validation accuracy occurred.
    pub best_round: usize,
    /// Per-evaluation history (the paper's Fig. 5 curves).
    pub history: Vec<RoundStats>,
    /// Total traffic.
    pub comms: CommsLog,
    /// Wall-clock buckets: `"client"`, `"server"`, `"inference"`.
    pub timing: Timer,
}

impl RunResult {
    /// True when validation accuracy improved at some point beyond the
    /// first evaluation (a cheap convergence sanity check).
    pub fn improved(&self) -> bool {
        self.history
            .first()
            .map(|first| self.val_acc > first.val_acc + 1e-9)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = TrainConfig::paper(0);
        assert_eq!(c.rounds, 1000);
        assert_eq!(c.patience, 200);
        assert!((c.weight_decay - 1e-4).abs() < 1e-12);
        assert_eq!(c.hidden_dim, 64);
        assert_eq!(c.local_epochs, 1);
    }

    #[test]
    fn improved_detection() {
        let base = RunResult {
            algorithm: "x".into(),
            test_acc: 0.5,
            val_acc: 0.6,
            best_round: 10,
            history: vec![
                RoundStats {
                    round: 0,
                    train_loss: 2.0,
                    val_acc: 0.2,
                    test_acc: 0.2,
                },
                RoundStats {
                    round: 1,
                    train_loss: 1.0,
                    val_acc: 0.6,
                    test_acc: 0.5,
                },
            ],
            comms: CommsLog::new(),
            timing: Timer::new(),
        };
        assert!(base.improved());
        let mut flat = base.clone();
        flat.val_acc = 0.2;
        assert!(!flat.improved());
    }

    #[test]
    fn same_seed_samples_the_same_cohort() {
        let cohort = CohortConfig::fraction(0.1, 42);
        for round in [0u64, 1, 7, 999] {
            assert_eq!(cohort.sample(round, 1000), cohort.sample(round, 1000));
        }
        // Different rounds (and different seeds) draw different cohorts.
        assert_ne!(cohort.sample(0, 1000), cohort.sample(1, 1000));
        let other = CohortConfig::fraction(0.1, 43);
        assert_ne!(cohort.sample(0, 1000), other.sample(0, 1000));
    }

    #[test]
    fn full_participation_is_the_identity_cohort() {
        let full = CohortConfig::full();
        let m = 17;
        assert_eq!(full.sample(3, m), (0..m).collect::<Vec<_>>());
        // Any frac >= 1 short-circuits, bit-for-bit back-compat.
        let over = CohortConfig::fraction(1.5, 9);
        assert_eq!(over.sample(3, m), (0..m).collect::<Vec<_>>());
    }

    #[test]
    fn cohorts_are_sorted_distinct_and_sized() {
        let cohort = CohortConfig {
            sample_frac: 0.25,
            min_cohort: 3,
            seed: 7,
        };
        for round in 0u64..20 {
            let ids = cohort.sample(round, 40);
            assert_eq!(ids.len(), 10);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
            assert!(ids.iter().all(|&i| i < 40));
        }
        // min_cohort floors the size even for tiny fractions.
        let tiny = CohortConfig {
            sample_frac: 0.001,
            min_cohort: 3,
            seed: 7,
        };
        assert_eq!(tiny.sample(0, 40).len(), 3);
        // ...but never exceeds the federation.
        assert_eq!(tiny.sample(0, 2).len(), 1.max(tiny.min_cohort.min(2)));
    }

    #[test]
    fn validate_rejects_nan_negative_and_zero_sample_fracs() {
        assert!(matches!(
            CohortConfig::fraction(f64::NAN, 0).validate(10),
            Err(CohortConfigError::NonFiniteSampleFrac { got }) if got.is_nan()
        ));
        assert!(matches!(
            CohortConfig::fraction(f64::INFINITY, 0).validate(10),
            Err(CohortConfigError::NonFiniteSampleFrac { .. })
        ));
        assert_eq!(
            CohortConfig::fraction(-1.0, 0).validate(10),
            Err(CohortConfigError::NonPositiveSampleFrac { got: -1.0 })
        );
        assert_eq!(
            CohortConfig::fraction(0.0, 0).validate(10),
            Err(CohortConfigError::NonPositiveSampleFrac { got: 0.0 })
        );
    }

    #[test]
    fn validate_rejects_bad_min_cohorts() {
        let big = CohortConfig {
            sample_frac: 0.5,
            min_cohort: 11,
            seed: 0,
        };
        assert_eq!(
            big.validate(10),
            Err(CohortConfigError::MinCohortExceedsParties {
                min_cohort: 11,
                parties: 10,
            })
        );
        assert_eq!(big.validate(11), Ok(()));
        let zero = CohortConfig {
            sample_frac: 0.5,
            min_cohort: 0,
            seed: 0,
        };
        assert_eq!(zero.validate(10), Err(CohortConfigError::ZeroMinCohort));
    }

    #[test]
    fn validate_accepts_presets_and_errors_display_their_numbers() {
        assert_eq!(CohortConfig::full().validate(1), Ok(()));
        assert_eq!(TrainConfig::paper(0).validate(5), Ok(()));
        assert_eq!(CohortConfig::fraction(0.3, 9).validate(3), Ok(()));
        let msg = CohortConfigError::MinCohortExceedsParties {
            min_cohort: 9,
            parties: 4,
        }
        .to_string();
        assert!(msg.contains('9') && msg.contains('4'), "got: {msg}");
        let msg = CohortConfigError::NonFiniteSampleFrac { got: f64::NAN }.to_string();
        assert!(msg.contains("NaN"), "got: {msg}");
    }
}
