//! Training configuration and run results shared by every algorithm.

use crate::comms::CommsLog;
use fedomd_metrics::Timer;
use fedomd_tensor::rng::{derive, seeded};
use rand::Rng;

/// Salt separating the cohort-sampling RNG stream from every other
/// derived stream in the run.
const COHORT_SALT: u64 = 0xC0_4074;

/// Per-round client sampling — FedAvg-style partial participation.
///
/// Each round the driver samples `max(min_cohort, round(sample_frac · m))`
/// of the `m` clients (clamped to `1..=m`); only the sampled cohort
/// forwards, exchanges statistics, trains, and uploads weights, while the
/// aggregated global model is still broadcast to *all* clients so pooled
/// evaluation always sees a synchronised federation. The cohort is a pure
/// function of `(seed, round)` — independent of the run seed — so resumed
/// runs replay the same cohorts and the same seed always samples the same
/// clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CohortConfig {
    /// Fraction of clients sampled per round; `>= 1.0` means full
    /// participation (the sampler returns `0..m` exactly).
    pub sample_frac: f64,
    /// Lower bound on the cohort size (clamped to the federation size).
    pub min_cohort: usize,
    /// Seed of the sampling stream.
    pub seed: u64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl CohortConfig {
    /// Full participation: every client trains every round.
    pub fn full() -> Self {
        Self {
            sample_frac: 1.0,
            min_cohort: 1,
            seed: 0,
        }
    }

    /// Samples `sample_frac` of the clients per round.
    pub fn fraction(sample_frac: f64, seed: u64) -> Self {
        Self {
            sample_frac,
            min_cohort: 1,
            seed,
        }
    }

    /// True when sampling is disabled (every client participates).
    pub fn is_full(&self) -> bool {
        self.sample_frac >= 1.0
    }

    /// Cohort size for a federation of `m` clients.
    pub fn cohort_size(&self, m: usize) -> usize {
        if self.is_full() || m == 0 {
            return m;
        }
        let target = (self.sample_frac.max(0.0) * m as f64).round() as usize;
        target.max(self.min_cohort.min(m)).clamp(1, m)
    }

    /// The round's cohort: sorted, distinct client ids. A partial
    /// Fisher–Yates shuffle seeded by `(self.seed, round)` alone, so the
    /// same seed always samples the same cohort for a given round.
    pub fn sample(&self, round: u64, m: usize) -> Vec<usize> {
        if self.is_full() || m == 0 {
            return (0..m).collect();
        }
        let k = self.cohort_size(m);
        let mut ids: Vec<usize> = (0..m).collect();
        let mut rng = seeded(derive(derive(self.seed, COHORT_SALT), round));
        for j in 0..k {
            let pick = rng.gen_range(j..m);
            ids.swap(j, pick);
        }
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

/// Federated training hyper-parameters (paper §5.1 defaults via
/// [`TrainConfig::paper`], fast defaults via [`TrainConfig::mini`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum communication rounds (paper: 1000 epochs, interval 1 — one
    /// local epoch per round).
    pub rounds: usize,
    /// Local epochs per round (paper communication interval = 1).
    pub local_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Early-stopping patience in rounds on validation accuracy
    /// (paper: 200).
    pub patience: usize,
    /// Hidden width for all models (paper: 64).
    pub hidden_dim: usize,
    /// Run seed; drives init, scheduling, and any stochastic baseline step.
    pub seed: u64,
    /// Evaluate every this many rounds (1 reproduces the paper's per-round
    /// convergence curves).
    pub eval_every: usize,
    /// Per-round client sampling (default: full participation).
    pub cohort: CohortConfig,
}

impl TrainConfig {
    /// Paper-faithful settings (1000 rounds, patience 200).
    pub fn paper(seed: u64) -> Self {
        Self {
            rounds: 1000,
            local_epochs: 1,
            lr: 0.01,
            weight_decay: 1e-4,
            patience: 200,
            hidden_dim: 64,
            seed,
            eval_every: 1,
            cohort: CohortConfig::full(),
        }
    }

    /// Fast settings for the mini datasets (same shape, fewer rounds).
    pub fn mini(seed: u64) -> Self {
        Self {
            rounds: 120,
            local_epochs: 1,
            lr: 0.03,
            weight_decay: 1e-4,
            patience: 40,
            hidden_dim: 32,
            seed,
            eval_every: 2,
            cohort: CohortConfig::full(),
        }
    }
}

/// Accuracy snapshot at one evaluated round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStats {
    /// Communication round index (0-based).
    pub round: usize,
    /// Mean training loss across clients.
    pub train_loss: f64,
    /// Test-size-weighted validation accuracy across clients.
    pub val_acc: f64,
    /// Test-size-weighted test accuracy across clients.
    pub test_acc: f64,
}

/// Outcome of one federated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Test accuracy at the best-validation round (the number the paper
    /// tables report).
    pub test_acc: f64,
    /// Best validation accuracy.
    pub val_acc: f64,
    /// Round at which the best validation accuracy occurred.
    pub best_round: usize,
    /// Per-evaluation history (the paper's Fig. 5 curves).
    pub history: Vec<RoundStats>,
    /// Total traffic.
    pub comms: CommsLog,
    /// Wall-clock buckets: `"client"`, `"server"`, `"inference"`.
    pub timing: Timer,
}

impl RunResult {
    /// True when validation accuracy improved at some point beyond the
    /// first evaluation (a cheap convergence sanity check).
    pub fn improved(&self) -> bool {
        self.history
            .first()
            .map(|first| self.val_acc > first.val_acc + 1e-9)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = TrainConfig::paper(0);
        assert_eq!(c.rounds, 1000);
        assert_eq!(c.patience, 200);
        assert!((c.weight_decay - 1e-4).abs() < 1e-12);
        assert_eq!(c.hidden_dim, 64);
        assert_eq!(c.local_epochs, 1);
    }

    #[test]
    fn improved_detection() {
        let base = RunResult {
            algorithm: "x".into(),
            test_acc: 0.5,
            val_acc: 0.6,
            best_round: 10,
            history: vec![
                RoundStats {
                    round: 0,
                    train_loss: 2.0,
                    val_acc: 0.2,
                    test_acc: 0.2,
                },
                RoundStats {
                    round: 1,
                    train_loss: 1.0,
                    val_acc: 0.6,
                    test_acc: 0.5,
                },
            ],
            comms: CommsLog::new(),
            timing: Timer::new(),
        };
        assert!(base.improved());
        let mut flat = base.clone();
        flat.val_acc = 0.2;
        assert!(!flat.improved());
    }

    #[test]
    fn same_seed_samples_the_same_cohort() {
        let cohort = CohortConfig::fraction(0.1, 42);
        for round in [0u64, 1, 7, 999] {
            assert_eq!(cohort.sample(round, 1000), cohort.sample(round, 1000));
        }
        // Different rounds (and different seeds) draw different cohorts.
        assert_ne!(cohort.sample(0, 1000), cohort.sample(1, 1000));
        let other = CohortConfig::fraction(0.1, 43);
        assert_ne!(cohort.sample(0, 1000), other.sample(0, 1000));
    }

    #[test]
    fn full_participation_is_the_identity_cohort() {
        let full = CohortConfig::full();
        let m = 17;
        assert_eq!(full.sample(3, m), (0..m).collect::<Vec<_>>());
        // Any frac >= 1 short-circuits, bit-for-bit back-compat.
        let over = CohortConfig::fraction(1.5, 9);
        assert_eq!(over.sample(3, m), (0..m).collect::<Vec<_>>());
    }

    #[test]
    fn cohorts_are_sorted_distinct_and_sized() {
        let cohort = CohortConfig {
            sample_frac: 0.25,
            min_cohort: 3,
            seed: 7,
        };
        for round in 0u64..20 {
            let ids = cohort.sample(round, 40);
            assert_eq!(ids.len(), 10);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
            assert!(ids.iter().all(|&i| i < 40));
        }
        // min_cohort floors the size even for tiny fractions.
        let tiny = CohortConfig {
            sample_frac: 0.001,
            min_cohort: 3,
            seed: 7,
        };
        assert_eq!(tiny.sample(0, 40).len(), 3);
        // ...but never exceeds the federation.
        assert_eq!(tiny.sample(0, 2).len(), 1.max(tiny.min_cohort.min(2)));
    }
}
