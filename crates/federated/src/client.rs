//! Per-party data and the federation setup (Louvain cut → client bundles).

use std::sync::Arc;

use fedomd_data::Dataset;
use fedomd_graph::{
    assign_parties, extract_parties, louvain_cut, rebalance_empty_parties, split_nodes,
    LouvainConfig, PartySubgraph, SplitRatios, Splits,
};
use fedomd_nn::GraphInput;
use fedomd_sparse::normalized_adjacency;
use fedomd_tensor::rng::derive;

/// Everything one party owns: its local subgraph, features, labels, and
/// train/val/test split (local node ids throughout).
#[derive(Clone)]
pub struct ClientData {
    /// Graph input: local `Ŝ`, `X`, cached `Ŝ·X`.
    pub input: GraphInput,
    /// Local labels.
    pub labels: Vec<usize>,
    /// Local train/val/test node indices.
    pub splits: Splits,
    /// Mapping `local id → global id` in the original dataset.
    pub global_ids: Vec<usize>,
    /// Local undirected edge list (for baselines that re-derive operators).
    pub edges: Vec<(usize, usize)>,
}

impl ClientData {
    /// Number of local nodes.
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }
}

/// How to cut the global dataset into parties.
#[derive(Clone, Copy, Debug)]
pub struct FederationConfig {
    /// Number of parties `M`.
    pub n_parties: usize,
    /// Louvain resolution (paper Fig. 7 sweeps this).
    pub resolution: f64,
    /// Split ratios (paper: 1 % / 20 % / 20 %).
    pub ratios: SplitRatios,
    /// Seed controlling Louvain tie-breaking and splits.
    pub seed: u64,
}

impl FederationConfig {
    /// The paper's default setup for `m` parties.
    pub fn paper(m: usize, seed: u64) -> Self {
        Self {
            n_parties: m,
            resolution: 1.0,
            ratios: SplitRatios::paper(),
            seed,
        }
    }

    /// The mini-scale setup: same cut, scale-adjusted label rate (see
    /// [`SplitRatios::mini`]).
    pub fn mini(m: usize, seed: u64) -> Self {
        Self {
            ratios: SplitRatios::mini(),
            ..Self::paper(m, seed)
        }
    }
}

/// Cuts `dataset` into `cfg.n_parties` clients: Louvain at the configured
/// resolution, greedy community→party packing, induced subgraphs, per-party
/// stratified splits.
pub fn setup_federation(dataset: &Dataset, cfg: &FederationConfig) -> Vec<ClientData> {
    let louvain_cfg = LouvainConfig {
        resolution: cfg.resolution,
        seed: derive(cfg.seed, 0x10),
        ..Default::default()
    };
    let parties = louvain_cut(&dataset.graph, cfg.n_parties, &louvain_cfg);
    bundle_parties(dataset, cfg, parties)
}

/// Cuts `dataset` along its **planted** communities (`dataset.communities`)
/// instead of re-discovering them with Louvain: greedy community→party
/// packing, bulk subgraph extraction, per-party stratified splits.
///
/// This is the affordable path to thousand-party federations — Louvain on
/// a graph wide enough for 5000 parties dominates setup, while the planted
/// cut is linear in nodes and edges. `cfg.resolution` is ignored (there is
/// nothing to rediscover); splits and tie-breaking still follow
/// `cfg.seed`, so the cut is deterministic per seed.
///
/// Panics when the dataset has no community vector (real-world datasets
/// without planted structure should go through [`setup_federation`]).
pub fn setup_federation_planted(dataset: &Dataset, cfg: &FederationConfig) -> Vec<ClientData> {
    assert_eq!(
        dataset.communities.len(),
        dataset.n_nodes(),
        "dataset {:?} has no planted communities; use setup_federation",
        dataset.name
    );
    let party_of_comm = assign_parties(&dataset.communities, cfg.n_parties);
    let mut node_party: Vec<usize> = dataset
        .communities
        .iter()
        .map(|&c| party_of_comm[c])
        .collect();
    rebalance_empty_parties(&mut node_party, cfg.n_parties);
    let parties = extract_parties(&dataset.graph, &node_party, cfg.n_parties);
    bundle_parties(dataset, cfg, parties)
}

/// Turns party subgraphs into full client bundles: local labels/features,
/// normalised operator, stratified splits.
fn bundle_parties(
    dataset: &Dataset,
    cfg: &FederationConfig,
    parties: Vec<PartySubgraph>,
) -> Vec<ClientData> {
    parties
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let labels: Vec<usize> = p.global_ids.iter().map(|&g| dataset.labels[g]).collect();
            let features = dataset.features.select_rows(&p.global_ids);
            let edges = p.graph.edges().to_vec();
            let s = Arc::new(normalized_adjacency(p.graph.n_nodes(), &edges));
            let input = GraphInput::new(s, features);
            let splits = split_nodes(&labels, cfg.ratios, derive(cfg.seed, 0x20 + i as u64));
            ClientData {
                input,
                labels,
                splits,
                global_ids: p.global_ids,
                edges,
            }
        })
        .collect()
}

/// One client's shard of the federation: the `ClientData` that
/// [`setup_federation`] would hand to party `id`, or `None` when `id` is
/// out of range.
///
/// A multi-process `fedomd-client` calls this with its own id so every
/// process regenerates the identical Louvain cut from the shared
/// `(dataset, cfg)` and keeps only its slice — no shard files need to be
/// distributed, and the cut is bitwise the one the in-process simulator
/// uses (the deterministic-per-seed property of the cut itself).
pub fn client_shard(dataset: &Dataset, cfg: &FederationConfig, id: usize) -> Option<ClientData> {
    if id >= cfg.n_parties {
        return None;
    }
    setup_federation(dataset, cfg).into_iter().nth(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_data::{generate, spec, DatasetName};

    fn mini() -> Dataset {
        generate(&spec(DatasetName::CoraMini), 0)
    }

    #[test]
    fn setup_produces_m_nonempty_clients() {
        let ds = mini();
        let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
        assert_eq!(clients.len(), 3);
        for c in &clients {
            assert!(c.n_nodes() > 0);
            assert_eq!(c.input.n_nodes(), c.n_nodes());
            assert!(!c.splits.train.is_empty(), "client has no train nodes");
            assert!(!c.splits.test.is_empty(), "client has no test nodes");
        }
    }

    #[test]
    fn clients_partition_the_node_set() {
        let ds = mini();
        let clients = setup_federation(&ds, &FederationConfig::mini(5, 1));
        let mut seen = vec![false; ds.n_nodes()];
        for c in &clients {
            for &g in &c.global_ids {
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_and_features_are_consistent_with_global() {
        let ds = mini();
        let clients = setup_federation(&ds, &FederationConfig::mini(3, 2));
        for c in &clients {
            for (local, &global) in c.global_ids.iter().enumerate() {
                assert_eq!(c.labels[local], ds.labels[global]);
                assert_eq!(c.input.x.row(local), ds.features.row(global));
            }
        }
    }

    #[test]
    fn label_distribution_is_non_iid() {
        // The paper's Fig. 4 premise: party label histograms differ.
        let ds = mini();
        let clients = setup_federation(&ds, &FederationConfig::mini(3, 3));
        let hist = |c: &ClientData| {
            let mut h = vec![0f64; ds.n_classes];
            for &l in &c.labels {
                h[l] += 1.0;
            }
            let total: f64 = h.iter().sum();
            h.into_iter().map(|v| v / total).collect::<Vec<_>>()
        };
        let h0 = hist(&clients[0]);
        let h1 = hist(&clients[1]);
        let tv: f64 = h0.iter().zip(&h1).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        assert!(
            tv > 0.1,
            "total-variation distance {tv} too small to be non-i.i.d."
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = mini();
        let a = setup_federation(&ds, &FederationConfig::mini(4, 9));
        let b = setup_federation(&ds, &FederationConfig::mini(4, 9));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.global_ids, y.global_ids);
            assert_eq!(x.splits.train, y.splits.train);
        }
    }

    #[test]
    fn client_shard_matches_the_full_federation_slice() {
        let ds = mini();
        let cfg = FederationConfig::mini(3, 5);
        let all = setup_federation(&ds, &cfg);
        for (i, expect) in all.iter().enumerate() {
            let shard = client_shard(&ds, &cfg, i).expect("in-range id");
            assert_eq!(shard.global_ids, expect.global_ids);
            assert_eq!(shard.labels, expect.labels);
            assert_eq!(shard.splits.train, expect.splits.train);
            assert_eq!(shard.splits.val, expect.splits.val);
            assert_eq!(shard.splits.test, expect.splits.test);
        }
        assert!(client_shard(&ds, &cfg, 3).is_none());
    }

    #[test]
    fn planted_cut_covers_all_nodes_and_is_non_iid() {
        let ds = generate(&fedomd_data::SynthParams::many_party(40), 0);
        let clients = setup_federation_planted(&ds, &FederationConfig::mini(40, 0));
        assert_eq!(clients.len(), 40);
        let mut seen = vec![false; ds.n_nodes()];
        for c in &clients {
            assert!(c.n_nodes() > 0, "planted cut left an empty party");
            for &g in &c.global_ids {
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Parties cut along communities inherit skewed label histograms.
        let hist = |c: &ClientData| {
            let mut h = vec![0f64; ds.n_classes];
            for &l in &c.labels {
                h[l] += 1.0;
            }
            let total: f64 = h.iter().sum();
            h.into_iter().map(|v| v / total).collect::<Vec<_>>()
        };
        let h0 = hist(&clients[0]);
        let h1 = hist(&clients[1]);
        let tv: f64 = h0.iter().zip(&h1).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        assert!(tv > 0.1, "planted parties look i.i.d. (tv {tv})");
    }

    #[test]
    fn planted_cut_is_deterministic_per_seed() {
        let ds = generate(&fedomd_data::SynthParams::many_party(25), 3);
        let a = setup_federation_planted(&ds, &FederationConfig::mini(25, 7));
        let b = setup_federation_planted(&ds, &FederationConfig::mini(25, 7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.global_ids, y.global_ids);
            assert_eq!(x.splits.train, y.splits.train);
        }
    }

    #[test]
    #[should_panic(expected = "no planted communities")]
    fn planted_cut_rejects_datasets_without_communities() {
        let mut ds = mini();
        ds.communities.clear();
        let _ = setup_federation_planted(&ds, &FederationConfig::mini(3, 0));
    }

    #[test]
    fn higher_resolution_gives_more_fragmented_parties() {
        let ds = mini();
        let lo = FederationConfig {
            resolution: 0.5,
            ..FederationConfig::mini(3, 4)
        };
        let hi = FederationConfig {
            resolution: 20.0,
            ..FederationConfig::mini(3, 4)
        };
        let edges = |cfg: &FederationConfig| -> usize {
            setup_federation(&ds, cfg)
                .iter()
                .map(|c| c.edges.len())
                .sum()
        };
        // More, smaller communities ⇒ more cross-party edges dropped.
        assert!(edges(&hi) <= edges(&lo));
    }
}
