//! Secure aggregation by pairwise additive masking.
//!
//! The paper's setting (§1, Fig. 2) has parties "upload their model
//! parameters with encryption" so the server only learns the aggregate.
//! This module implements the standard pairwise-mask construction
//! (Bonawitz et al.-style, without dropout recovery): every ordered pair
//! of clients `(i, j)` derives a shared mask stream from a common seed;
//! client `i` *adds* the stream for `j > i` and *subtracts* it for
//! `j < i`, so all masks cancel exactly in the server's sum while each
//! individual upload is indistinguishable from noise.
//!
//! FedOMD's statistics exchange (means and central moments) is a sum of
//! per-client vectors scaled by `n_i / Σn`, so the same masking protects
//! it — which is why the trainer can treat the protocol output as "the
//! server's" without any party revealing its raw statistics.

use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::Matrix;
use rand::Rng;

/// A participant's view of the masking session: its index, the total
/// party count, and the session seed shared out-of-band.
#[derive(Clone, Copy, Debug)]
pub struct MaskingContext {
    /// This client's index in `0..n_parties`.
    pub client: usize,
    /// Number of participating clients.
    pub n_parties: usize,
    /// Session seed all pairs derive their shared streams from (stands in
    /// for the Diffie–Hellman agreement of the real protocol).
    pub session_seed: u64,
    /// Round number (fresh masks every round).
    pub round: u64,
}

impl MaskingContext {
    fn pair_seed(&self, a: usize, b: usize) -> u64 {
        let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
        derive(self.session_seed, (self.round << 32) ^ (lo << 16) ^ hi)
    }

    /// Masks a flat parameter vector in place.
    ///
    /// # Panics
    /// Panics when `client >= n_parties`.
    pub fn mask(&self, values: &mut Matrix) {
        assert!(self.client < self.n_parties, "client index out of range");
        for other in 0..self.n_parties {
            if other == self.client {
                continue;
            }
            let sign = if other > self.client { 1.0f32 } else { -1.0 };
            let mut rng = seeded(self.pair_seed(self.client, other));
            for v in values.as_mut_slice() {
                // Uniform masks in a fixed range: cancellation is exact in
                // f32 because the identical stream is added and subtracted.
                *v += sign * rng.gen_range(-1.0f32..1.0);
            }
        }
    }
}

/// Server-side aggregation of masked uploads: a plain weighted sum. The
/// pairwise masks cancel; nothing to remove.
///
/// # Panics
/// Panics on arity/shape mismatch or empty input.
pub fn aggregate_masked(uploads: &[Matrix], weights: &[f32]) -> Matrix {
    assert!(!uploads.is_empty(), "aggregate_masked: no uploads");
    assert_eq!(
        uploads.len(),
        weights.len(),
        "aggregate_masked: weight arity"
    );
    let mut out = Matrix::zeros(uploads[0].rows(), uploads[0].cols());
    for (u, &w) in uploads.iter().zip(weights) {
        assert_eq!(u.shape(), out.shape(), "aggregate_masked: shape mismatch");
        fedomd_tensor::ops::axpy(&mut out, w, u);
    }
    out
}

/// Convenience: masks every client's copy and aggregates, returning the
/// same result (up to float error) as the plaintext weighted sum. Used by
/// tests and the `secure_fedavg` example path.
pub fn secure_weighted_sum(
    values: &[Matrix],
    weights: &[f32],
    session_seed: u64,
    round: u64,
) -> Matrix {
    let n = values.len();
    let masked: Vec<Matrix> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            // Weighted inputs are masked *after* scaling so the masks (which
            // are unweighted) still cancel: client i uploads w_i·v_i + m_i.
            let mut m = fedomd_tensor::ops::scale(v, weights[i]);
            MaskingContext {
                client: i,
                n_parties: n,
                session_seed,
                round,
            }
            .mask(&mut m);
            m
        })
        .collect();
    aggregate_masked(&masked, &vec![1.0; n])
}

/// The frame-transported variant of [`secure_weighted_sum`]: each client's
/// masked, pre-weighted upload is encoded as a `WeightUpdate` frame, sent
/// over `chan`, and the server aggregates whatever arrives (with pairwise
/// masking, a dropped client leaves its partners' masks uncancelled — the
/// reason the real protocol needs dropout recovery; callers on lossy
/// channels should check that all parties arrived).
///
/// Returns the aggregate and the sender ids that contributed. Because the
/// `f32` wire codec is bit-exact, on a fault-free channel the result is
/// bit-identical to [`secure_weighted_sum`].
pub fn secure_weighted_sum_frames(
    values: &[Matrix],
    weights: &[f32],
    session_seed: u64,
    round: u64,
    chan: &mut dyn fedomd_transport::Channel,
) -> (Matrix, Vec<u32>) {
    use fedomd_transport::{Envelope, Payload, Tensor};
    let n = values.len();
    assert!(n > 0, "secure_weighted_sum_frames: no values");
    for (i, v) in values.iter().enumerate() {
        let mut m = fedomd_tensor::ops::scale(v, weights[i]);
        MaskingContext {
            client: i,
            n_parties: n,
            session_seed,
            round,
        }
        .mask(&mut m);
        chan.upload(Envelope {
            round,
            sender: i as u32,
            payload: Payload::WeightUpdate {
                params: vec![Tensor::from(&m)],
            },
        });
    }
    let received = chan.server_collect(round);
    assert!(
        !received.is_empty(),
        "secure_weighted_sum_frames: every upload was dropped"
    );
    let mut senders = Vec::with_capacity(received.len());
    let uploads: Vec<Matrix> = received
        .into_iter()
        .map(|env| {
            senders.push(env.sender);
            match env.payload {
                // LINT: allow(panic) protocol invariant of the masking
                // round: every masked upload is exactly one WeightUpdate
                // tensor by construction (see `mask_upload`); anything
                // else is a routing bug the simulation wants loud.
                Payload::WeightUpdate { mut params } => params
                    .pop()
                    .expect("one tensor per masked upload")
                    .into_matrix(),
                other => panic!("expected WeightUpdate, got {}", other.kind()),
            }
        })
        .collect();
    (
        aggregate_masked(&uploads, &vec![1.0; uploads.len()]),
        senders,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_tensor::rng::seeded;

    fn randm(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng)
    }

    #[test]
    fn masks_cancel_exactly_in_the_sum() {
        let values: Vec<Matrix> = (0..4).map(|i| randm(3, 5, i)).collect();
        let weights = vec![0.25f32; 4];
        let secure = secure_weighted_sum(&values, &weights, 99, 0);
        let mut plain = Matrix::zeros(3, 5);
        for (v, &w) in values.iter().zip(&weights) {
            fedomd_tensor::ops::axpy(&mut plain, w, v);
        }
        secure.assert_close(&plain, 1e-4);
    }

    #[test]
    fn single_upload_is_noise_like() {
        // A masked upload must not resemble the underlying values: the
        // correlation with the plaintext should be far from 1.
        let v = randm(10, 10, 1);
        let mut masked = v.clone();
        MaskingContext {
            client: 0,
            n_parties: 5,
            session_seed: 7,
            round: 0,
        }
        .mask(&mut masked);
        let diff = fedomd_tensor::ops::sub(&masked, &v);
        // Four pairwise masks, each uniform(-1,1): the perturbation's
        // energy must be substantial relative to the signal.
        assert!(diff.frobenius_norm() > 0.5 * v.frobenius_norm());
    }

    #[test]
    fn fresh_masks_every_round() {
        let v = randm(4, 4, 2);
        let mask_at = |round: u64| {
            let mut m = v.clone();
            MaskingContext {
                client: 0,
                n_parties: 3,
                session_seed: 5,
                round,
            }
            .mask(&mut m);
            m
        };
        assert_ne!(mask_at(0), mask_at(1));
    }

    #[test]
    fn two_party_masks_are_antisymmetric() {
        // Client 0 adds what client 1 subtracts.
        let zero = Matrix::zeros(2, 3);
        let mut a = zero.clone();
        let mut b = zero.clone();
        MaskingContext {
            client: 0,
            n_parties: 2,
            session_seed: 3,
            round: 1,
        }
        .mask(&mut a);
        MaskingContext {
            client: 1,
            n_parties: 2,
            session_seed: 3,
            round: 1,
        }
        .mask(&mut b);
        let sum = fedomd_tensor::ops::add(&a, &b);
        assert!(
            sum.max_abs() < 1e-6,
            "masks do not cancel: {}",
            sum.max_abs()
        );
    }

    #[test]
    #[should_panic(expected = "client index out of range")]
    fn out_of_range_client_rejected() {
        let mut v = Matrix::zeros(1, 1);
        MaskingContext {
            client: 3,
            n_parties: 3,
            session_seed: 0,
            round: 0,
        }
        .mask(&mut v);
    }

    #[test]
    fn framed_secure_sum_matches_direct_bit_for_bit() {
        use fedomd_transport::Channel;
        let values: Vec<Matrix> = (0..4).map(|i| randm(3, 5, 10 + i)).collect();
        let weights = vec![0.1f32, 0.2, 0.3, 0.4];
        let direct = secure_weighted_sum(&values, &weights, 42, 3);
        let mut chan = fedomd_transport::InProcChannel::new();
        let (framed, senders) = secure_weighted_sum_frames(&values, &weights, 42, 3, &mut chan);
        assert_eq!(senders, vec![0, 1, 2, 3]);
        // Masked f32 values roundtrip the wire bit-exactly, and the
        // server sums in the same sender order, so the aggregates are
        // bit-identical — masking still cancels after framing.
        assert_eq!(framed, direct);
        // And the masked frames really crossed a channel.
        assert_eq!(chan.stats().delivered_frames, 4);
    }

    #[test]
    fn framed_secure_sum_reports_missing_parties() {
        use fedomd_transport::{Channel, FaultConfig, SimNetChannel};
        let values: Vec<Matrix> = (0..3).map(|i| randm(2, 2, 20 + i)).collect();
        let weights = vec![1.0f32; 3];
        // Find a fault seed that drops at least one of the three uploads.
        for seed in 0..64 {
            let cfg = FaultConfig {
                seed,
                drop_prob: 0.4,
                max_retries: 0,
                ..Default::default()
            };
            let mut chan = SimNetChannel::new(cfg);
            if chan.stats().dropped_frames == 0 {
                let (_, senders) =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        secure_weighted_sum_frames(&values, &weights, 7, 0, &mut chan)
                    })) {
                        Ok(ok) => ok,
                        Err(_) => continue, // every upload dropped: also a loss case
                    };
                if senders.len() < 3 {
                    // The caller can see the dropout and abort the round.
                    assert!(chan.stats().dropped_frames > 0);
                    return;
                }
            }
        }
        panic!("no fault seed in 0..64 dropped an upload at p=0.4 — simnet faults broken");
    }
}
