//! Byte-level communication accounting.
//!
//! The paper's Table 3 argues that FedOMD's statistics exchange is
//! negligible next to the weight exchange ("only a few statistical data of
//! local features are required..., causing negligible communication
//! costs"); this log measures exactly that. Scalars are `f32`, 4 bytes.

/// Accumulated traffic of one federated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommsLog {
    /// Client → server bytes.
    pub uplink_bytes: u64,
    /// Server → client bytes.
    pub downlink_bytes: u64,
    /// Client → server bytes spent on *statistics* (FedOMD's means and
    /// central moments) — a sub-bucket of `uplink_bytes`.
    pub stats_uplink_bytes: u64,
    /// Communication rounds completed.
    pub rounds: u64,
}

const SCALAR_BYTES: u64 = 4;

impl CommsLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client uploading `n_scalars` model weights.
    pub fn upload_weights(&mut self, n_scalars: usize) {
        self.uplink_bytes += n_scalars as u64 * SCALAR_BYTES;
    }

    /// Records a client downloading `n_scalars` model weights.
    pub fn download_weights(&mut self, n_scalars: usize) {
        self.downlink_bytes += n_scalars as u64 * SCALAR_BYTES;
    }

    /// Records a client uploading `n_scalars` of statistics (counted both
    /// in the uplink total and the stats sub-bucket).
    pub fn upload_stats(&mut self, n_scalars: usize) {
        let b = n_scalars as u64 * SCALAR_BYTES;
        self.uplink_bytes += b;
        self.stats_uplink_bytes += b;
    }

    /// Records server → client statistics broadcast.
    pub fn download_stats(&mut self, n_scalars: usize) {
        self.downlink_bytes += n_scalars as u64 * SCALAR_BYTES;
    }

    /// Marks one communication round finished.
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Fraction of uplink spent on statistics (0 when no uplink).
    pub fn stats_fraction(&self) -> f64 {
        if self.uplink_bytes == 0 {
            0.0
        } else {
            self.stats_uplink_bytes as f64 / self.uplink_bytes as f64
        }
    }

    /// Merges another log (e.g. per-client partial logs).
    pub fn merge(&mut self, other: &CommsLog) {
        self.uplink_bytes += other.uplink_bytes;
        self.downlink_bytes += other.downlink_bytes;
        self.stats_uplink_bytes += other.stats_uplink_bytes;
        self.rounds = self.rounds.max(other.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_traffic_counts_four_bytes_per_scalar() {
        let mut log = CommsLog::new();
        log.upload_weights(100);
        log.download_weights(50);
        assert_eq!(log.uplink_bytes, 400);
        assert_eq!(log.downlink_bytes, 200);
        assert_eq!(log.total_bytes(), 600);
        assert_eq!(log.stats_uplink_bytes, 0);
    }

    #[test]
    fn stats_are_a_sub_bucket_of_uplink() {
        let mut log = CommsLog::new();
        log.upload_weights(1000);
        log.upload_stats(10);
        assert_eq!(log.uplink_bytes, 4040);
        assert_eq!(log.stats_uplink_bytes, 40);
        assert!((log.stats_fraction() - 40.0 / 4040.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_rounds() {
        let mut a = CommsLog::new();
        a.upload_weights(1);
        a.end_round();
        a.end_round();
        let mut b = CommsLog::new();
        b.upload_stats(2);
        b.end_round();
        a.merge(&b);
        assert_eq!(a.uplink_bytes, 4 + 8);
        assert_eq!(a.rounds, 2);
    }

    #[test]
    fn empty_log_fraction_is_zero() {
        assert_eq!(CommsLog::new().stats_fraction(), 0.0);
    }
}
