//! Byte-level communication accounting.
//!
//! The paper's Table 3 argues that FedOMD's statistics exchange is
//! negligible next to the weight exchange ("only a few statistical data of
//! local features are required..., causing negligible communication
//! costs"); this log measures exactly that.
//!
//! All recording funnels through one entry point, [`CommsLog::record`]:
//! a [`Direction`] (which way the bytes flew), a [`TrafficClass`] (model
//! weights vs. distribution statistics — the split Table 3 is about), and
//! a byte count. Two byte sources exist:
//!
//! * the size of an actual encoded transport frame (header + payload +
//!   checksum) as produced by `fedomd-transport` — what the transported
//!   training loops record, always ≥ the scalar estimate;
//! * the scalar estimate [`CommsLog::record_scalars`] (`4 × n_scalars`) —
//!   for baselines that have not moved onto a channel.

/// Which way bytes crossed the star topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    Uplink,
    /// Server → client.
    Downlink,
}

/// What the bytes carried, at the granularity the paper's Table 3 cares
/// about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Model parameters (weight updates, global model broadcasts).
    Weights,
    /// Distribution statistics (FedOMD's means and central moments,
    /// FedLIT's centroids, ...).
    Stats,
}

/// Accumulated traffic of one federated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommsLog {
    /// Client → server bytes.
    pub uplink_bytes: u64,
    /// Server → client bytes.
    pub downlink_bytes: u64,
    /// Client → server bytes spent on *statistics* (FedOMD's means and
    /// central moments) — a sub-bucket of `uplink_bytes`.
    pub stats_uplink_bytes: u64,
    /// Communication rounds completed.
    pub rounds: u64,
    /// Messages lost in transit (dropped, or late past the round
    /// deadline). Always 0 on the in-process channel; fed from the
    /// simulated network's fault counters.
    pub dropped_messages: u64,
}

const SCALAR_BYTES: u64 = 4;

impl CommsLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic — the single entry point every recorder
    /// funnels through. Statistics uplink is additionally counted in the
    /// `stats_uplink_bytes` sub-bucket (downlink statistics are not
    /// sub-bucketed: Table 3's claim is about client upload cost).
    pub fn record(&mut self, dir: Direction, class: TrafficClass, bytes: u64) {
        match dir {
            Direction::Uplink => {
                self.uplink_bytes += bytes;
                if class == TrafficClass::Stats {
                    self.stats_uplink_bytes += bytes;
                }
            }
            Direction::Downlink => self.downlink_bytes += bytes,
        }
    }

    /// Records `n_scalars` values at the scalar estimate of 4 bytes each
    /// (for paths that do not ship real encoded frames).
    pub fn record_scalars(&mut self, dir: Direction, class: TrafficClass, n_scalars: usize) {
        self.record(dir, class, n_scalars as u64 * SCALAR_BYTES);
    }

    /// Overwrites the dropped-message count with the transport's current
    /// cumulative fault counter (idempotent; called once per round).
    pub fn sync_dropped(&mut self, transport_dropped_frames: u64) {
        self.dropped_messages = transport_dropped_frames;
    }

    /// Marks one communication round finished.
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Fraction of uplink spent on statistics (0 when no uplink).
    pub fn stats_fraction(&self) -> f64 {
        if self.uplink_bytes == 0 {
            0.0
        } else {
            self.stats_uplink_bytes as f64 / self.uplink_bytes as f64
        }
    }

    /// Merges another log, e.g. per-client partial logs of the *same* run:
    /// byte and drop counters add up (each log saw disjoint traffic), while
    /// `rounds` takes the max (the logs describe the same round sequence,
    /// not consecutive ones).
    pub fn merge(&mut self, other: &CommsLog) {
        self.uplink_bytes += other.uplink_bytes;
        self.downlink_bytes += other.downlink_bytes;
        self.stats_uplink_bytes += other.stats_uplink_bytes;
        self.rounds = self.rounds.max(other.rounds);
        self.dropped_messages += other.dropped_messages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_recording_counts_four_bytes_per_scalar() {
        let mut log = CommsLog::new();
        log.record_scalars(Direction::Uplink, TrafficClass::Weights, 100);
        log.record_scalars(Direction::Downlink, TrafficClass::Weights, 50);
        assert_eq!(log.uplink_bytes, 400);
        assert_eq!(log.downlink_bytes, 200);
        assert_eq!(log.total_bytes(), 600);
        assert_eq!(log.stats_uplink_bytes, 0);
    }

    #[test]
    fn stats_are_a_sub_bucket_of_uplink() {
        let mut log = CommsLog::new();
        log.record_scalars(Direction::Uplink, TrafficClass::Weights, 1000);
        log.record_scalars(Direction::Uplink, TrafficClass::Stats, 10);
        assert_eq!(log.uplink_bytes, 4040);
        assert_eq!(log.stats_uplink_bytes, 40);
        assert!((log.stats_fraction() - 40.0 / 4040.0).abs() < 1e-12);
    }

    #[test]
    fn downlink_stats_do_not_touch_the_uplink_sub_bucket() {
        let mut log = CommsLog::new();
        log.record(Direction::Downlink, TrafficClass::Stats, 66);
        assert_eq!(log.downlink_bytes, 66);
        assert_eq!(log.uplink_bytes, 0);
        assert_eq!(log.stats_uplink_bytes, 0);
    }

    #[test]
    fn record_counts_whole_frames() {
        // 100 scalars plus framing (header, shapes, checksum).
        let frame_bytes = 426u64;
        let mut log = CommsLog::new();
        log.record(Direction::Uplink, TrafficClass::Weights, frame_bytes);
        log.record(Direction::Uplink, TrafficClass::Stats, 66);
        log.record(Direction::Downlink, TrafficClass::Weights, frame_bytes);
        log.record(Direction::Downlink, TrafficClass::Stats, 66);
        assert_eq!(log.uplink_bytes, 492);
        assert_eq!(log.stats_uplink_bytes, 66);
        assert_eq!(log.downlink_bytes, 492);
        // A frame is never smaller than the scalar estimate of its payload.
        assert!(frame_bytes > 100 * SCALAR_BYTES);
    }

    #[test]
    fn merge_sums_bytes_and_drops_but_maxes_rounds() {
        let mut a = CommsLog::new();
        a.record_scalars(Direction::Uplink, TrafficClass::Weights, 1);
        a.end_round();
        a.end_round();
        a.sync_dropped(3);
        let mut b = CommsLog::new();
        b.record_scalars(Direction::Uplink, TrafficClass::Stats, 2);
        b.end_round();
        b.sync_dropped(2);
        a.merge(&b);
        // Bytes sum: the two logs measured disjoint traffic of one run.
        assert_eq!(a.uplink_bytes, 4 + 8);
        assert_eq!(a.stats_uplink_bytes, 8);
        // Rounds max: both logs watched the same round sequence.
        assert_eq!(a.rounds, 2);
        // Drops sum, like bytes.
        assert_eq!(a.dropped_messages, 5);
    }

    #[test]
    fn sync_dropped_is_idempotent_per_cumulative_counter() {
        let mut log = CommsLog::new();
        log.sync_dropped(4);
        log.sync_dropped(4); // same cumulative value: no double count
        assert_eq!(log.dropped_messages, 4);
        log.sync_dropped(7);
        assert_eq!(log.dropped_messages, 7);
    }

    #[test]
    fn empty_log_fraction_is_zero() {
        assert_eq!(CommsLog::new().stats_fraction(), 0.0);
    }

    #[test]
    fn zero_uplink_with_stats_bucket_untouched() {
        // A purely local run (no aggregation) must report a 0/0 stats
        // fraction as 0, not NaN.
        let mut log = CommsLog::new();
        log.end_round();
        assert_eq!(log.uplink_bytes, 0);
        assert_eq!(log.stats_fraction(), 0.0);
        assert!(log.stats_fraction().is_finite());
    }
}
