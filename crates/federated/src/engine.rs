//! The shared round loop and the generic FedAvg-family runner.
//!
//! [`RoundDriver`] centralises what every algorithm needs per round —
//! evaluation, early stopping on validation accuracy, history for the
//! convergence curves (paper Fig. 5), communication and wall-clock
//! accounting — so each algorithm implements only its round body.
//! [`run_generic_observed`] is the complete runner for the FedAvg family
//! (FedMLP, FedProx, LocGCN, FedGCN); SCAFFOLD, FedSage+, FedLIT, and
//! FedOMD build their own bodies on the same driver.
//!
//! Every milestone of a run — round starts, per-client local steps, frame
//! sends and drops, aggregation, evaluation, early stopping — is reported
//! to a [`RoundObserver`] (`fedomd-telemetry`). Observers are pure sinks:
//! a run with any observer is bit-identical to the same run with
//! [`NullObserver`], which the golden tests pin. Per-round client sampling
//! ([`crate::CohortConfig`]) restricts training and uploads to a seeded
//! cohort, and the server folds each arriving weight update into a
//! streaming [`crate::helpers::UpdateAccumulator`] so aggregation memory
//! stays O(model) at any cohort size. The `FedRun` builder in
//! `fedomd-core` is the user-facing entry point.

use fedomd_metrics::Stopwatch;

use rayon::prelude::*;

use fedomd_autograd::Workspace;
use fedomd_nn::{Adam, AdamState, Gcn, Mlp, Model};
use fedomd_tensor::rng::{derive, seeded};
use fedomd_tensor::Matrix;

use crate::client::ClientData;
use crate::comms::{CommsLog, Direction, TrafficClass};
use crate::config::{RoundStats, RunResult, TrainConfig};
use crate::helpers::{evaluate, local_step, UpdateAccumulator};
use crate::pipeline::fold_in_order;
use fedomd_telemetry::{
    NullObserver, ObservedChannel, Phase, PhaseStopwatch, RoundEvent, RoundObserver,
};
use fedomd_transport::{
    from_tensors, to_tensors, Channel, ChannelState, Envelope, Payload, SERVER_SENDER,
};

/// Which local architecture the generic runner instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// 2-layer MLP (FedMLP / FedProx / SCAFFOLD family).
    Mlp,
    /// 2-layer GCN (LocGCN / FedGCN family).
    Gcn,
}

/// Options of the generic FedAvg-family runner.
#[derive(Clone, Copy, Debug)]
pub struct GenericOpts {
    /// Algorithm name stamped on the result.
    pub name: &'static str,
    /// Local architecture.
    pub model: ModelKind,
    /// Aggregate weights at the server each round (false = LocGCN's
    /// isolated local training).
    pub aggregate: bool,
    /// FedProx proximal coefficient `μ` (0 disables the term).
    pub prox_mu: f32,
}

/// The [`RoundDriver`]'s persistent bookkeeping, exportable for run
/// checkpoints. The wall-clock timer is deliberately excluded — elapsed
/// time is not reproducible, and the bit-identity guarantee covers
/// everything else.
#[derive(Clone, Debug, PartialEq)]
pub struct DriverState {
    /// Accuracy/loss history of the evaluated rounds so far.
    pub history: Vec<RoundStats>,
    /// Best validation accuracy seen (`-inf` before the first eval).
    pub best_val: f64,
    /// Test accuracy at the best-validation round.
    pub best_test: f64,
    /// Round of the best validation accuracy.
    pub best_round: usize,
    /// Eval-rounds elapsed since the last improvement (early stopping).
    pub rounds_since_improve: usize,
    /// Whether early stopping has already triggered.
    pub stopped: bool,
    /// Communication accounting so far.
    pub comms: CommsLog,
}

/// FedOMD's cached global statistics (means + central moments per hidden
/// layer), in plain vector form so a checkpoint can carry them without
/// this crate knowing the trainer's own types.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsCache {
    /// Per hidden layer: the global feature means.
    pub means: Vec<Vec<f32>>,
    /// Per hidden layer, per order (2..=K): the global central moments.
    pub moments: Vec<Vec<Vec<f32>>>,
}

/// Everything a run needs to continue from a round boundary exactly as if
/// it had never stopped. Captured after round `next_round - 1` completed
/// (history recorded, comms synced, no frames in flight).
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeState {
    /// The round the resumed loop enters first.
    pub next_round: usize,
    /// Per-client model parameters.
    pub params: Vec<Vec<Matrix>>,
    /// Per-client Adam state, aligned with `params`.
    pub optim: Vec<AdamState>,
    /// Per-client optimiser step counters, for models whose behaviour
    /// depends on the step index beyond their parameters (OrthoGcn's
    /// periodic Newton–Schulz). Always zero for the stateless generic
    /// models (MLP, GCN).
    pub model_steps: Vec<u64>,
    /// Driver bookkeeping (history, early stopping, comms).
    pub driver: DriverState,
    /// Transport state (fault-stream cursor + cumulative counters).
    pub channel: ChannelState,
    /// Last aggregated global model, when the algorithm tracks one
    /// separately from the per-client copies (FedOMD Phase 4).
    pub global: Option<Vec<Matrix>>,
    /// Last global statistics exchange (FedOMD Phases 2–3).
    pub stats: Option<StatsCache>,
}

/// Where periodic [`ResumeState`] snapshots go. Implemented by
/// `fedomd-core`'s file checkpointer; kept as a trait here so the round
/// loops stay ignorant of serialisation and paths.
pub trait CheckpointSink {
    /// Snapshot period in rounds (0 disables saving).
    fn every(&self) -> usize;

    /// Persists one snapshot. Implementations report
    /// `RoundEvent::CheckpointSaved` through `obs` once the snapshot is
    /// durable.
    fn save(&mut self, state: ResumeState, obs: &mut dyn RoundObserver);
}

/// Checkpoint/resume wiring of a resumable run; `Default` is a plain
/// one-shot run (nothing restored, nothing saved).
#[derive(Default)]
pub struct Persistence<'a> {
    /// Snapshot to restore before the first round (the loop then enters at
    /// [`ResumeState::next_round`]).
    pub resume: Option<ResumeState>,
    /// Periodic snapshot destination.
    pub sink: Option<&'a mut dyn CheckpointSink>,
}

/// Round-loop bookkeeping shared by every algorithm.
pub struct RoundDriver {
    cfg: TrainConfig,
    history: Vec<RoundStats>,
    best_val: f64,
    best_test: f64,
    best_round: usize,
    rounds_since_improve: usize,
    stopped: bool,
    /// Communication log (algorithms update it directly).
    pub comms: CommsLog,
    /// Wall-clock buckets (algorithms update it directly).
    pub timer: fedomd_metrics::Timer,
}

impl RoundDriver {
    /// A fresh driver for one run.
    pub fn new(cfg: &TrainConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            history: Vec::new(),
            best_val: f64::NEG_INFINITY,
            best_test: 0.0,
            best_round: 0,
            rounds_since_improve: 0,
            stopped: false,
            comms: CommsLog::new(),
            timer: fedomd_metrics::Timer::new(),
        }
    }

    /// A driver continuing from a checkpointed [`DriverState`]. The timer
    /// restarts from zero: wall-clock is the one run artefact that cannot
    /// be (and is not promised to be) bit-identical across a resume.
    pub fn resume(cfg: &TrainConfig, state: DriverState) -> Self {
        Self {
            cfg: cfg.clone(),
            history: state.history,
            best_val: state.best_val,
            best_test: state.best_test,
            best_round: state.best_round,
            rounds_since_improve: state.rounds_since_improve,
            stopped: state.stopped,
            comms: state.comms,
            timer: fedomd_metrics::Timer::new(),
        }
    }

    /// Snapshots the persistent bookkeeping for a run checkpoint.
    pub fn snapshot(&self) -> DriverState {
        DriverState {
            history: self.history.clone(),
            best_val: self.best_val,
            best_test: self.best_test,
            best_round: self.best_round,
            rounds_since_improve: self.rounds_since_improve,
            stopped: self.stopped,
            comms: self.comms,
        }
    }

    /// True once early stopping has triggered.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Emits the run-start event for an algorithm driving this round loop.
    pub fn announce(&self, algorithm: &str, n_clients: usize, obs: &mut dyn RoundObserver) {
        obs.on_event(&RoundEvent::RunStarted {
            algorithm: algorithm.to_string(),
            n_clients,
            max_rounds: self.cfg.rounds,
        });
    }

    /// True when `round` is on the evaluation schedule.
    pub fn eval_due(&self, round: usize) -> bool {
        round.is_multiple_of(self.cfg.eval_every)
    }

    /// Ends a round: evaluates on schedule, updates the early-stopping
    /// state, records history, and reports `EvalDone` / `EarlyStopped` /
    /// `RoundFinished` to `obs`. Call once per communication round.
    pub fn end_round_observed(
        &mut self,
        round: usize,
        mean_train_loss: f64,
        models: &[Box<dyn Model>],
        clients: &[ClientData],
        obs: &mut dyn RoundObserver,
    ) {
        let eval = if self.eval_due(round) {
            let sw = PhaseStopwatch::start(Phase::Eval);
            let start = Stopwatch::start();
            let accs = evaluate(models, clients);
            self.timer.add("inference", start.elapsed());
            sw.finish(obs);
            Some(accs)
        } else {
            None
        };
        self.end_round_metrics(round, mean_train_loss, eval, obs);
    }

    /// [`Self::end_round_observed`] for a driver that does not own the
    /// models: the caller supplies the already-computed pooled
    /// `(val_acc, test_acc)` for scheduled rounds (`None` otherwise).
    ///
    /// This is the multi-process server's entry point — clients evaluate
    /// locally and ship integer counts, the server divides the pooled
    /// sums — and [`Self::end_round_observed`] delegates here, so the two
    /// paths share every line of history/early-stopping bookkeeping.
    pub fn end_round_metrics(
        &mut self,
        round: usize,
        mean_train_loss: f64,
        eval: Option<(f64, f64)>,
        obs: &mut dyn RoundObserver,
    ) {
        self.comms.end_round();
        if let Some((val, test)) = eval {
            obs.on_event(&RoundEvent::EvalDone {
                round: round as u64,
                val_acc: val,
                test_acc: test,
            });
            self.history.push(RoundStats {
                round,
                train_loss: mean_train_loss,
                val_acc: val,
                test_acc: test,
            });
            if val > self.best_val + 1e-12 {
                self.best_val = val;
                self.best_test = test;
                self.best_round = round;
                self.rounds_since_improve = 0;
            } else {
                self.rounds_since_improve += self.cfg.eval_every;
                if self.rounds_since_improve >= self.cfg.patience {
                    self.stopped = true;
                    obs.on_event(&RoundEvent::EarlyStopped {
                        round: round as u64,
                    });
                }
            }
        }
        obs.on_event(&RoundEvent::RoundFinished {
            round: round as u64,
            uplink_bytes: self.comms.uplink_bytes,
            downlink_bytes: self.comms.downlink_bytes,
            dropped_messages: self.comms.dropped_messages,
        });
    }

    /// [`Self::end_round_observed`] without telemetry.
    pub fn end_round(
        &mut self,
        round: usize,
        mean_train_loss: f64,
        models: &[Box<dyn Model>],
        clients: &[ClientData],
    ) {
        self.end_round_observed(round, mean_train_loss, models, clients, &mut NullObserver);
    }

    /// Finalises into a [`RunResult`], reporting `RunFinished` to `obs`.
    pub fn finish_observed(self, algorithm: &str, obs: &mut dyn RoundObserver) -> RunResult {
        obs.on_event(&RoundEvent::RunFinished {
            algorithm: algorithm.to_string(),
            test_acc: self.best_test,
            val_acc: self.best_val.max(0.0),
            best_round: self.best_round as u64,
            rounds: self.comms.rounds,
        });
        RunResult {
            algorithm: algorithm.to_string(),
            test_acc: self.best_test,
            val_acc: self.best_val.max(0.0),
            best_round: self.best_round,
            history: self.history,
            comms: self.comms,
            timing: self.timer,
        }
    }

    /// [`Self::finish_observed`] without telemetry.
    pub fn finish(self, algorithm: &str) -> RunResult {
        self.finish_observed(algorithm, &mut NullObserver)
    }
}

/// Folds one uplink envelope into the server's streaming accumulator.
fn fold_weight_update(agg: &mut UpdateAccumulator, env: Envelope) {
    match env.payload {
        Payload::WeightUpdate { params } => agg.push(&from_tensors(params), 1.0),
        // LINT: allow(panic) protocol invariant: clients in the FedAvg
        // family upload nothing but `WeightUpdate`; another payload on
        // the server's uplink is a routing bug that must fail loudly.
        other => panic!("server expected WeightUpdate, got {}", other.kind()),
    }
}

/// Reports each sampled client's per-epoch losses to the observer.
fn emit_local_steps(epoch_losses: &[Option<Vec<f32>>], obs: &mut dyn RoundObserver) {
    for (client, losses) in epoch_losses
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.as_ref().map(|l| (i, l)))
    {
        for (epoch, &loss) in losses.iter().enumerate() {
            obs.on_event(&RoundEvent::LocalStepDone {
                client: client as u32,
                epoch: epoch as u32,
                loss: loss as f64,
                ce: loss as f64,
                ortho: 0.0,
                cmd: 0.0,
            });
        }
    }
}

/// Builds one local model of the requested kind for client `i`.
pub fn build_model(
    kind: ModelKind,
    client: &ClientData,
    n_classes: usize,
    hidden: usize,
    seed: u64,
) -> Box<dyn Model> {
    let mut rng = seeded(seed);
    let f = client.input.n_features();
    match kind {
        ModelKind::Mlp => Box::new(Mlp::new(f, hidden, n_classes, &mut rng)),
        ModelKind::Gcn => Box::new(Gcn::new(f, hidden, n_classes, &mut rng)),
    }
}

/// Runs a FedAvg-family algorithm with every weight exchange travelling as
/// encoded frames over `chan` and every milestone reported to `obs`.
///
/// Each aggregation round: the sampled cohort uploads `WeightUpdate`
/// frames, the server aggregates **whatever arrived** (partial
/// aggregation when the channel dropped clients), and broadcasts
/// `GlobalModel` frames to every client; a client whose downlink frame
/// was lost keeps its local weights for the round. An entirely-lost round
/// (no uploads arrive) leaves every model local. Byte accounting in
/// [`CommsLog`] is the size of the actual encoded frames.
pub fn run_generic_observed(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    opts: &GenericOpts,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
) -> RunResult {
    run_generic_resumable(
        clients,
        n_classes,
        cfg,
        opts,
        chan,
        obs,
        Persistence::default(),
    )
}

/// [`run_generic_observed`] with checkpoint/resume wiring: restores
/// `persist.resume` (model parameters, Adam moments, driver bookkeeping,
/// channel fault-stream cursor) before the loop, enters at the restored
/// round, and hands `persist.sink` a [`ResumeState`] snapshot every
/// `sink.every()` rounds. A resumed run is bit-identical to the same run
/// left uninterrupted.
pub fn run_generic_resumable(
    clients: &[ClientData],
    n_classes: usize,
    cfg: &TrainConfig,
    opts: &GenericOpts,
    chan: &mut dyn Channel,
    obs: &mut dyn RoundObserver,
    mut persist: Persistence<'_>,
) -> RunResult {
    assert!(!clients.is_empty(), "run_generic: no clients");
    let cohort = cfg.validate(clients.len());
    assert!(cohort.is_ok(), "run_generic: {}", cohort.unwrap_err());
    let mut models: Vec<Box<dyn Model>> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            // Aggregating algorithms start from a common global init
            // (paper Phase 1: the server distributes W₀); LocGCN trains
            // independent local models from independent inits.
            let seed = if opts.aggregate {
                derive(cfg.seed, 0xA000)
            } else {
                derive(cfg.seed, 0xA000 + 1 + i as u64)
            };
            build_model(opts.model, c, n_classes, cfg.hidden_dim, seed)
        })
        .collect();
    let mut optimizers: Vec<Adam> = models
        .iter()
        .map(|_| Adam::new(cfg.lr, cfg.weight_decay))
        .collect();
    // One buffer pool per client, reused across every epoch of every round.
    let mut workspaces: Vec<Workspace> = models.iter().map(|_| Workspace::new()).collect();

    let mut driver;
    let start_round;
    if let Some(resume) = persist.resume.take() {
        assert_eq!(
            resume.params.len(),
            models.len(),
            "resume: checkpoint has {} clients, federation has {}",
            resume.params.len(),
            models.len()
        );
        for (m, p) in models.iter_mut().zip(&resume.params) {
            m.set_params(p);
        }
        for (m, &steps) in models.iter_mut().zip(&resume.model_steps) {
            m.set_steps(steps as usize);
        }
        for (opt, st) in optimizers.iter_mut().zip(resume.optim) {
            opt.set_state(st);
        }
        chan.restore_state(&resume.channel);
        driver = RoundDriver::resume(cfg, resume.driver);
        start_round = resume.next_round;
    } else {
        driver = RoundDriver::new(cfg);
        start_round = 0;
    }
    driver.announce(opts.name, clients.len(), obs);
    if start_round > 0 {
        obs.on_event(&RoundEvent::Resumed {
            round: start_round as u64,
        });
    }
    let mut chan = ObservedChannel::new(chan);

    for round in start_round..cfg.rounds {
        // A checkpoint taken after early stopping resumes already-stopped.
        if driver.stopped() {
            break;
        }
        obs.on_event(&RoundEvent::RoundStarted {
            round: round as u64,
        });
        // The round's cohort: pure function of (cohort seed, round).
        let m = clients.len();
        let mut in_cohort = vec![false; m];
        for &i in &cfg.cohort.sample(round as u64, m) {
            in_cohort[i] = true;
        }
        let global_snapshot: Vec<Matrix> = if opts.prox_mu > 0.0 {
            models[0].params()
        } else {
            Vec::new()
        };

        let prox_mu = opts.prox_mu;
        let local_epochs = cfg.local_epochs;
        let global_ref = &global_snapshot;
        // One sampled client's full local-training turn for this round;
        // shared verbatim between the phase-sequential sweep and the
        // pipelined overlap sweep so the two paths compute identical bits.
        let train_client = |model: &mut Box<dyn Model>,
                            opt: &mut Adam,
                            client: &ClientData,
                            ws: &mut Workspace|
         -> Vec<f32> {
            let mut losses = Vec::with_capacity(local_epochs);
            for _ in 0..local_epochs {
                losses.push(local_step(
                    model,
                    client,
                    opt,
                    ws,
                    |tape, out| {
                        if prox_mu <= 0.0 {
                            return Vec::new();
                        }
                        out.param_vars
                            .iter()
                            .zip(global_ref)
                            .map(|(&v, g)| {
                                let d = tape.sq_diff(v, g);
                                tape.scale(d, prox_mu)
                            })
                            .collect()
                    },
                    |_| {},
                ));
            }
            losses
        };

        let pipelined = cfg.pipeline.enabled && opts.aggregate;
        let epoch_losses: Vec<Option<Vec<f32>>>;
        let mut piped_agg: Option<UpdateAccumulator> = None;
        if pipelined {
            // Train/fold overlap: rayon workers hand their finished
            // parameters to a dedicated fold thread the moment they leave
            // `train_client`, and the fold thread performs the *same*
            // upload → collect → fold channel call sequence, in the same
            // ascending cohort order, as the sequential branch below —
            // `fold_in_order`'s reorder window absorbs out-of-order
            // finishes. Identical calls in identical order mean identical
            // bits (even a fault-simulating channel draws the same
            // decisions), only the wall-clock overlaps.
            let cohort_ids: Vec<u32> = in_cohort
                .iter()
                .enumerate()
                .filter_map(|(i, &active)| active.then_some(i as u32))
                .collect();
            let sw = PhaseStopwatch::start(Phase::FoldOverlap);
            let start = Stopwatch::start();
            let comms = &mut driver.comms;
            let chan_ref = &mut chan;
            let (agg, losses) = fold_in_order(
                &cohort_ids,
                UpdateAccumulator::new(),
                |agg: &mut UpdateAccumulator, id, params| {
                    let bytes = chan_ref.upload(Envelope {
                        round: round as u64,
                        sender: id,
                        payload: Payload::WeightUpdate { params },
                    });
                    comms.record(Direction::Uplink, TrafficClass::Weights, bytes as u64);
                    for env in chan_ref.server_collect(round as u64) {
                        fold_weight_update(agg, env);
                    }
                },
                |tx| -> Vec<Option<Vec<f32>>> {
                    models
                        .par_iter_mut()
                        .zip(optimizers.par_iter_mut())
                        .zip(clients.par_iter())
                        .zip(workspaces.par_iter_mut())
                        .zip(in_cohort.par_iter())
                        .enumerate()
                        .map(|(i, ((((model, opt), client), ws), &active))| {
                            if !active {
                                return None;
                            }
                            let losses = train_client(model, opt, client, ws);
                            // LINT: allow(panic) the fold thread provably
                            // outlives the sweep: the scoped receiver drains
                            // until every sender drops, so a failed send
                            // here is a harness bug that must fail loudly.
                            tx.send((i as u32, to_tensors(&model.params())))
                                .expect("fold thread outlives the training sweep");
                            Some(losses)
                        })
                        .collect()
                },
            );
            piped_agg = Some(agg);
            epoch_losses = losses;
            driver.timer.add("client", start.elapsed());
            emit_local_steps(&epoch_losses, obs);
            sw.finish(obs);
        } else {
            let sw = PhaseStopwatch::start(Phase::LocalTrain);
            let start = Stopwatch::start();
            epoch_losses = models
                .par_iter_mut()
                .zip(optimizers.par_iter_mut())
                .zip(clients.par_iter())
                .zip(workspaces.par_iter_mut())
                .zip(in_cohort.par_iter())
                .map(|((((model, opt), client), ws), &active)| {
                    if !active {
                        return None;
                    }
                    Some(train_client(model, opt, client, ws))
                })
                .collect();
            driver.timer.add("client", start.elapsed());
            emit_local_steps(&epoch_losses, obs);
            sw.finish(obs);
        }

        if opts.aggregate {
            let start = Stopwatch::start();
            let sw = PhaseStopwatch::start(Phase::Comms);
            // Interleaved upload → collect → fold: the server folds each
            // arriving update into a streaming accumulator, so the uplink
            // queue holds at most one payload and aggregation memory is
            // O(model) regardless of cohort size. Fold order is ascending
            // sender (uploads happen in client order; a collect returns
            // sender-sorted envelopes), so the float summation order is
            // deterministic and matches a one-shot batch collect. On the
            // pipelined path all of that already happened during the
            // overlap; only the straggler drain below remains.
            let mut agg = piped_agg.take().unwrap_or_default();
            if !pipelined {
                for (i, mo) in models.iter().enumerate() {
                    if !in_cohort[i] {
                        continue;
                    }
                    let bytes = chan.upload(Envelope {
                        round: round as u64,
                        sender: i as u32,
                        payload: Payload::WeightUpdate {
                            params: to_tensors(&mo.params()),
                        },
                    });
                    driver
                        .comms
                        .record(Direction::Uplink, TrafficClass::Weights, bytes as u64);
                    for env in chan.server_collect(round as u64) {
                        fold_weight_update(&mut agg, env);
                    }
                }
            }
            // Straggler drain for channel impls that buffer past the
            // first post-upload collect.
            for env in chan.server_collect(round as u64) {
                fold_weight_update(&mut agg, env);
            }
            chan.flush_into(obs);
            sw.finish(obs);
            let participants = agg.pushed();
            let sw = PhaseStopwatch::start(Phase::Aggregation);
            let global = agg.finish();
            sw.finish(obs);
            if let Some(global) = global {
                obs.on_event(&RoundEvent::AggregationDone { participants });
                let sw = PhaseStopwatch::start(Phase::Comms);
                for (i, m) in models.iter_mut().enumerate() {
                    let bytes = chan.download(
                        i as u32,
                        Envelope {
                            round: round as u64,
                            sender: SERVER_SENDER,
                            payload: Payload::GlobalModel {
                                params: to_tensors(&global),
                            },
                        },
                    );
                    driver
                        .comms
                        .record(Direction::Downlink, TrafficClass::Weights, bytes as u64);
                    for env in chan.client_collect(i as u32, round as u64) {
                        if let Payload::GlobalModel { params } = env.payload {
                            m.set_params(&from_tensors(params));
                        }
                    }
                }
                chan.flush_into(obs);
                sw.finish(obs);
            } else {
                obs.on_event(&RoundEvent::AggregationDone { participants: 0 });
            }
            driver.comms.sync_dropped(chan.stats().dropped_frames);
            driver.timer.add("server", start.elapsed());
        }

        // Mean of each sampled client's last-epoch loss. `filter_map`
        // instead of unwrapping `last()` keeps this panic-free even under
        // a (nonsensical but representable) `local_epochs == 0` config.
        let active: Vec<f64> = epoch_losses
            .iter()
            .filter_map(|l| l.as_ref().and_then(|l| l.last()).map(|&x| x as f64))
            .collect();
        let mean_loss = if active.is_empty() {
            f64::NAN
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        };
        driver.end_round_observed(round, mean_loss, &models, clients, obs);
        if let Some(sink) = persist.sink.as_mut() {
            if sink.every() > 0 && (round + 1).is_multiple_of(sink.every()) {
                let state = ResumeState {
                    next_round: round + 1,
                    params: models.iter().map(|m| m.params()).collect(),
                    optim: optimizers.iter().map(Adam::state).collect(),
                    model_steps: models.iter().map(|m| m.steps() as u64).collect(),
                    driver: driver.snapshot(),
                    channel: chan.export_state(),
                    global: None,
                    stats: None,
                };
                sink.save(state, obs);
            }
        }
        if driver.stopped() {
            break;
        }
    }
    driver.finish_observed(opts.name, obs)
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_transport::InProcChannel;

    fn clients(m: usize) -> (Vec<ClientData>, usize) {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        (
            setup_federation(&ds, &FederationConfig::mini(m, 0)),
            ds.n_classes,
        )
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            rounds: 60,
            patience: 40,
            ..TrainConfig::mini(0)
        }
    }

    // Test-local shorthands over the one real entry point (the public
    // builder lives in `fedomd-core`, which depends on this crate).
    fn run_generic(
        clients: &[ClientData],
        n_classes: usize,
        cfg: &TrainConfig,
        opts: &GenericOpts,
    ) -> RunResult {
        run_generic_with(clients, n_classes, cfg, opts, &mut InProcChannel::new())
    }

    fn run_generic_with(
        clients: &[ClientData],
        n_classes: usize,
        cfg: &TrainConfig,
        opts: &GenericOpts,
        chan: &mut dyn Channel,
    ) -> RunResult {
        run_generic_observed(clients, n_classes, cfg, opts, chan, &mut NullObserver)
    }

    #[test]
    fn driver_reports_early_stop_and_evals_to_the_observer() {
        use fedomd_telemetry::MemoryObserver;
        let (cl, k) = clients(2);
        // Tiny patience against a generous cap: the run must stop early,
        // and the driver must say so through the observer.
        let cfg = TrainConfig {
            rounds: 80,
            patience: 2,
            eval_every: 1,
            ..TrainConfig::mini(0)
        };
        let mut mem = MemoryObserver::new();
        let r = run_generic_observed(
            &cl,
            k,
            &cfg,
            &GenericOpts {
                name: "FedMLP",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.0,
            },
            &mut InProcChannel::new(),
            &mut mem,
        );
        assert!(
            (r.comms.rounds as usize) < cfg.rounds,
            "run must stop early"
        );
        assert_eq!(mem.count("early_stopped"), 1);
        assert_eq!(mem.count("eval_done"), r.history.len());
        assert_eq!(mem.count("round_started") as u64, r.comms.rounds);
        assert_eq!(mem.count("run_finished"), 1);
    }

    #[test]
    fn fedgcn_like_run_learns() {
        let (cl, k) = clients(3);
        let r = run_generic(
            &cl,
            k,
            &quick_cfg(),
            &GenericOpts {
                name: "FedGCN",
                model: ModelKind::Gcn,
                aggregate: true,
                prox_mu: 0.0,
            },
        );
        assert!(
            r.test_acc > 1.2 / k as f64,
            "accuracy {} barely above chance",
            r.test_acc
        );
        assert!(r.improved(), "validation accuracy never improved");
        assert!(r.comms.total_bytes() > 0);
        assert!(!r.history.is_empty());
    }

    #[test]
    fn locgcn_run_has_no_traffic() {
        let (cl, k) = clients(3);
        let r = run_generic(
            &cl,
            k,
            &quick_cfg(),
            &GenericOpts {
                name: "LocGCN",
                model: ModelKind::Gcn,
                aggregate: false,
                prox_mu: 0.0,
            },
        );
        assert_eq!(r.comms.uplink_bytes, 0);
        assert_eq!(r.comms.downlink_bytes, 0);
        assert!(r.test_acc > 0.0);
    }

    #[test]
    fn prox_run_completes_with_sane_accuracy() {
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 15;
        let r = run_generic(
            &cl,
            k,
            &cfg,
            &GenericOpts {
                name: "FedProx",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.01,
            },
        );
        assert!(r.test_acc.is_finite());
        assert!((0.0..=1.0).contains(&r.test_acc));
        assert_eq!(r.algorithm, "FedProx");
    }

    #[test]
    fn prox_term_slows_drift_from_global() {
        // With a huge μ the proximal pull keeps the weights pinned to the
        // shared init, so after many rounds the training loss must stay
        // above the unconstrained (μ = 0) run's.
        let (cl, k) = clients(2);
        // Multiple local epochs so the weights actually drift from the
        // snapshot within a round (with one epoch the term is zero).
        let cfg = TrainConfig {
            rounds: 30,
            patience: 30,
            eval_every: 1,
            local_epochs: 3,
            ..TrainConfig::mini(0)
        };
        let loss_with = |mu: f32| {
            let r = run_generic(
                &cl,
                k,
                &cfg,
                &GenericOpts {
                    name: "x",
                    model: ModelKind::Mlp,
                    aggregate: true,
                    prox_mu: mu,
                },
            );
            r.history.last().expect("history").train_loss
        };
        assert!(loss_with(1000.0) > loss_with(0.0));
    }

    #[test]
    fn early_stopping_truncates_history() {
        let (cl, k) = clients(2);
        let cfg = TrainConfig {
            rounds: 200,
            patience: 6,
            eval_every: 1,
            ..TrainConfig::mini(0)
        };
        let r = run_generic(
            &cl,
            k,
            &cfg,
            &GenericOpts {
                name: "FedMLP",
                model: ModelKind::Mlp,
                aggregate: true,
                prox_mu: 0.0,
            },
        );
        assert!(
            (r.history.len() as u64) < 200,
            "patience 6 should stop well before 200 rounds (ran {})",
            r.history.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 10;
        let opts = GenericOpts {
            name: "FedMLP",
            model: ModelKind::Mlp,
            aggregate: true,
            prox_mu: 0.0,
        };
        let a = run_generic(&cl, k, &cfg, &opts);
        let b = run_generic(&cl, k, &cfg, &opts);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.val_acc, y.val_acc);
        }
    }

    #[test]
    fn sampled_cohort_runs_and_replays() {
        use crate::config::CohortConfig;
        let (cl, k) = clients(4);
        let mut cfg = quick_cfg();
        cfg.rounds = 10;
        cfg.patience = 40;
        cfg.cohort = CohortConfig::fraction(0.5, 3);
        let opts = GenericOpts {
            name: "FedMLP",
            model: ModelKind::Mlp,
            aggregate: true,
            prox_mu: 0.0,
        };
        let a = run_generic(&cl, k, &cfg, &opts);
        let b = run_generic(&cl, k, &cfg, &opts);
        assert!(a.test_acc.is_finite());
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.history, b.history);
        assert_eq!(a.comms, b.comms);
        // Half the cohort uploads per round vs full participation.
        let full = run_generic(
            &cl,
            k,
            &TrainConfig {
                cohort: CohortConfig::full(),
                ..cfg.clone()
            },
            &opts,
        );
        assert!(a.comms.uplink_bytes < full.comms.uplink_bytes);
    }

    #[test]
    fn faultless_simnet_matches_inproc_bit_for_bit() {
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 12;
        let opts = GenericOpts {
            name: "FedGCN",
            model: ModelKind::Gcn,
            aggregate: true,
            prox_mu: 0.0,
        };
        let a = run_generic(&cl, k, &cfg, &opts);
        let mut sim = SimNetChannel::new(FaultConfig::default());
        let b = run_generic_with(&cl, k, &cfg, &opts, &mut sim);
        // Same frames, same arrival order, no drops: everything —
        // accuracies, history, and even the byte accounting — must agree.
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.val_acc, b.val_acc);
        assert_eq!(a.history, b.history);
        assert_eq!(a.comms, b.comms);
        assert_eq!(b.comms.dropped_messages, 0);
    }

    #[test]
    fn lossy_simnet_degrades_to_partial_aggregation() {
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 40;
        let opts = GenericOpts {
            name: "FedGCN",
            model: ModelKind::Gcn,
            aggregate: true,
            prox_mu: 0.0,
        };
        let fault = FaultConfig {
            seed: 5,
            drop_prob: 0.25,
            max_retries: 1,
            ..Default::default()
        };
        let run = |fault: FaultConfig| {
            let mut sim = SimNetChannel::new(fault);
            run_generic_with(&cl, k, &cfg, &opts, &mut sim)
        };
        let r = run(fault.clone());
        assert!(
            r.comms.dropped_messages > 0,
            "25% loss with 1 retry over 40 rounds must drop something"
        );
        // The round degrades, it does not die: training still converges
        // to something clearly above chance.
        assert!(
            r.test_acc > 1.0 / k as f64,
            "accuracy {} at or below chance",
            r.test_acc
        );
        // And the whole faulty run replays exactly from the same seed.
        let r2 = run(fault);
        assert_eq!(r.test_acc, r2.test_acc);
        assert_eq!(r.comms, r2.comms);
    }

    #[test]
    fn pipelined_rounds_match_the_sequential_path_bit_for_bit() {
        use crate::config::{CohortConfig, PipelineConfig};
        let (cl, k) = clients(4);
        let mut cfg = quick_cfg();
        cfg.rounds = 10;
        let opts = GenericOpts {
            name: "FedGCN",
            model: ModelKind::Gcn,
            aggregate: true,
            prox_mu: 0.0,
        };
        for cohort in [CohortConfig::full(), CohortConfig::fraction(0.5, 3)] {
            cfg.cohort = cohort;
            let seq = run_generic(&cl, k, &cfg, &opts);
            let piped = run_generic(
                &cl,
                k,
                &TrainConfig {
                    pipeline: PipelineConfig::on(),
                    ..cfg.clone()
                },
                &opts,
            );
            // Fold-on-arrival replays the exact channel call sequence of
            // the sequential loop, so everything — accuracies, history,
            // byte accounting — must agree to the bit.
            assert_eq!(seq.test_acc, piped.test_acc);
            assert_eq!(seq.val_acc, piped.val_acc);
            assert_eq!(seq.best_round, piped.best_round);
            assert_eq!(seq.history, piped.history);
            assert_eq!(seq.comms, piped.comms);
        }
    }

    #[test]
    fn pipelined_rounds_match_sequential_under_a_lossy_channel() {
        use crate::config::PipelineConfig;
        use fedomd_transport::{FaultConfig, SimNetChannel};
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 20;
        let opts = GenericOpts {
            name: "FedGCN",
            model: ModelKind::Gcn,
            aggregate: true,
            prox_mu: 0.0,
        };
        let fault = FaultConfig {
            seed: 5,
            drop_prob: 0.25,
            max_retries: 1,
            ..Default::default()
        };
        let run = |cfg: &TrainConfig| {
            let mut sim = SimNetChannel::new(fault.clone());
            run_generic_with(&cl, k, cfg, &opts, &mut sim)
        };
        let seq = run(&cfg);
        let piped = run(&TrainConfig {
            pipeline: PipelineConfig::on(),
            ..cfg.clone()
        });
        // Identical channel calls in identical order ⇒ the fault stream
        // draws the same drop decisions, so even a degraded partial round
        // replays exactly.
        assert!(seq.comms.dropped_messages > 0, "fault config must bite");
        assert_eq!(seq.test_acc, piped.test_acc);
        assert_eq!(seq.history, piped.history);
        assert_eq!(seq.comms, piped.comms);
    }

    #[test]
    fn frame_accounting_is_at_least_the_scalar_estimate() {
        let (cl, k) = clients(3);
        let mut cfg = quick_cfg();
        cfg.rounds = 8;
        let opts = GenericOpts {
            name: "FedGCN",
            model: ModelKind::Gcn,
            aggregate: true,
            prox_mu: 0.0,
        };
        let r = run_generic(&cl, k, &cfg, &opts);
        let n_scalars =
            build_model(ModelKind::Gcn, &cl[0], k, cfg.hidden_dim, 0).n_scalars() as u64;
        // Every round each of the 3 clients uploads its full model; the
        // frame encoding can only add bytes (headers, shapes, checksum) on
        // top of the raw 4-bytes-per-scalar payload the old accounting
        // assumed.
        let scalar_estimate = r.comms.rounds * cl.len() as u64 * n_scalars * 4;
        assert!(
            r.comms.uplink_bytes > scalar_estimate,
            "frame bytes {} not above scalar estimate {}",
            r.comms.uplink_bytes,
            scalar_estimate
        );
        assert!(r.comms.downlink_bytes > scalar_estimate);
    }
}
