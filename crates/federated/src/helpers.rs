//! Shared machinery for every federated algorithm: prediction, weighted
//! evaluation, the FedAvg reduction (batch [`fedavg`] and streaming
//! [`UpdateAccumulator`]), and the single-client training step.

use fedomd_autograd::{Tape, Var, Workspace};
use fedomd_metrics::accuracy::argmax_row;
use fedomd_nn::{ForwardOut, Model, Optimizer};
use fedomd_tensor::Matrix;
use rayon::prelude::*;

use crate::client::ClientData;

/// Forward pass without gradient bookkeeping; returns the logits matrix.
pub fn predict(model: &dyn Model, client: &ClientData) -> Matrix {
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, &client.input);
    tape.value(out.logits).clone()
}

/// `(correct, total)` over the given local node indices.
pub fn count_correct(logits: &Matrix, labels: &[usize], mask: &[usize]) -> (usize, usize) {
    let correct = mask
        .iter()
        .filter(|&&r| argmax_row(logits.row(r)) == labels[r])
        .count();
    (correct, mask.len())
}

/// Pooled (node-weighted) validation and test accuracy across all clients.
///
/// This realises the paper's "average accuracy across parties" as the
/// pooled accuracy over every party's val/test nodes, which is the stable
/// variant under heavily skewed party sizes.
pub fn evaluate(models: &[Box<dyn Model>], clients: &[ClientData]) -> (f64, f64) {
    assert_eq!(models.len(), clients.len(), "evaluate: arity mismatch");
    let mut val = (0usize, 0usize);
    let mut test = (0usize, 0usize);
    for (model, client) in models.iter().zip(clients) {
        let logits = predict(model.as_ref(), client);
        let (c, t) = count_correct(&logits, &client.labels, &client.splits.val);
        val.0 += c;
        val.1 += t;
        let (c, t) = count_correct(&logits, &client.labels, &client.splits.test);
        test.0 += c;
        test.1 += t;
    }
    let frac = |(c, t): (usize, usize)| if t == 0 { 0.0 } else { c as f64 / t as f64 };
    (frac(val), frac(test))
}

/// Weighted FedAvg: `W̄ = Σ_i λ_i W_i` with `λ` normalised to sum to 1
/// (paper Eq. 2 / Algorithm 1 line 27).
///
/// # Panics
/// Panics on empty input, arity/shape mismatch, or non-positive total
/// weight.
pub fn fedavg(param_sets: &[Vec<Matrix>], weights: &[f64]) -> Vec<Matrix> {
    assert!(!param_sets.is_empty(), "fedavg: no clients");
    assert_eq!(
        param_sets.len(),
        weights.len(),
        "fedavg: weights arity mismatch"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "fedavg: total weight must be positive");
    let arity = param_sets[0].len();
    let mut out: Vec<Matrix> = param_sets[0]
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();
    for (set, &w) in param_sets.iter().zip(weights) {
        assert_eq!(set.len(), arity, "fedavg: param arity mismatch");
        let lambda = (w / total) as f32;
        for (acc, p) in out.iter_mut().zip(set) {
            assert_eq!(acc.shape(), p.shape(), "fedavg: shape mismatch");
            fedomd_tensor::ops::axpy(acc, lambda, p);
        }
    }
    out
}

/// Fixed lane count of [`UpdateAccumulator`] — the same shard-reduction
/// scheme as `fedomd_core::protocol`'s statistics accumulators, so every
/// aggregate in the system folds in the same machine-independent order.
pub const AGG_LANES: usize = 8;

/// Streaming FedAvg (paper Eq. 2 / Algorithm 1 line 27): folds one
/// client's parameter set at a time so the server never materialises the
/// O(clients × model) vector of updates — peak memory is
/// `AGG_LANES × model` f64 partials, O(model).
///
/// Accumulates `Σ_i w_i · W_i` in f64 across [`AGG_LANES`] fixed lanes
/// (push `i` lands in lane `i % AGG_LANES`); [`finish`](Self::finish)
/// folds the lanes in lane order and divides by `Σ w_i` once. Because the
/// lane an update maps to depends only on its push index, the sequential
/// streaming path and the parallel sharded tree
/// ([`push_batch`](Self::push_batch)) are bit-identical.
#[derive(Clone, Debug, Default)]
pub struct UpdateAccumulator {
    /// `lanes[lane][param][element]`.
    lanes: Vec<Vec<Vec<f64>>>,
    /// Per-parameter `(rows, cols)`, fixed by the first push.
    shapes: Vec<(usize, usize)>,
    total_weight: f64,
    pushed: usize,
}

/// Folds one parameter set into a lane partial: `acc += w · params`.
fn fold_update(acc: &mut [Vec<f64>], params: &[Matrix], weight: f64) {
    for (lane_param, p) in acc.iter_mut().zip(params) {
        for (a, &v) in lane_param.iter_mut().zip(p.as_slice()) {
            *a += weight * v as f64;
        }
    }
}

impl UpdateAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates folded so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    fn init_shape(&mut self, params: &[Matrix]) {
        self.shapes = params.iter().map(|p| p.shape()).collect();
        self.lanes = (0..AGG_LANES)
            .map(|_| {
                self.shapes
                    .iter()
                    .map(|&(r, c)| vec![0.0f64; r * c])
                    .collect()
            })
            .collect();
    }

    fn check_shape(&self, params: &[Matrix]) {
        assert_eq!(
            params.len(),
            self.shapes.len(),
            "UpdateAccumulator: param arity mismatch"
        );
        for (p, &s) in params.iter().zip(&self.shapes) {
            assert_eq!(p.shape(), s, "UpdateAccumulator: shape mismatch");
        }
    }

    /// Folds one client's parameters with FedAvg weight `weight`. The
    /// first push fixes the expected shapes; later pushes must match.
    pub fn push(&mut self, params: &[Matrix], weight: f64) {
        assert!(weight >= 0.0, "UpdateAccumulator: negative weight");
        if self.pushed == 0 {
            self.init_shape(params);
        } else {
            self.check_shape(params);
        }
        let lane = self.pushed % AGG_LANES;
        fold_update(&mut self.lanes[lane], params, weight);
        self.total_weight += weight;
        self.pushed += 1;
    }

    /// Sharded-tree fold of a batch: each lane reduces its stride of the
    /// batch on its own worker, in batch order — bit-identical to pushing
    /// the batch sequentially.
    pub fn push_batch(&mut self, batch: &[(Vec<Matrix>, f64)]) {
        let Some((first, _)) = batch.first() else {
            return;
        };
        if self.pushed == 0 {
            self.init_shape(first);
        }
        for (params, weight) in batch {
            assert!(*weight >= 0.0, "UpdateAccumulator: negative weight");
            self.check_shape(params);
        }
        let base = self.pushed % AGG_LANES;
        self.lanes
            .par_iter_mut()
            .enumerate()
            .for_each(|(lane, acc)| {
                let mut j = (lane + AGG_LANES - base) % AGG_LANES;
                while j < batch.len() {
                    let (params, weight) = &batch[j];
                    fold_update(acc, params, *weight);
                    j += AGG_LANES;
                }
            });
        for (_, weight) in batch {
            self.total_weight += *weight;
        }
        self.pushed += batch.len();
    }

    /// Folds the lane partials in lane order, divides by the total weight,
    /// and returns the averaged model. `None` when nothing was pushed (or
    /// every weight was zero) — the caller keeps the previous global
    /// model, exactly as an empty round does today.
    pub fn finish(self) -> Option<Vec<Matrix>> {
        if self.pushed == 0 || self.total_weight <= 0.0 {
            return None;
        }
        let total = self.total_weight;
        Some(
            self.shapes
                .iter()
                .enumerate()
                .map(|(pi, &(rows, cols))| {
                    let data = (0..rows * cols)
                        .map(|e| {
                            let mut sum = 0.0f64;
                            for lane in &self.lanes {
                                sum += lane[pi][e];
                            }
                            (sum / total) as f32
                        })
                        .collect();
                    Matrix::from_vec(rows, cols, data)
                })
                .collect(),
        )
    }
}

/// One local training step: forward, CE over the train mask, optional
/// extra loss terms, backward, gradient adjustment hook, optimiser step.
/// Returns the total scalar loss.
///
/// `extra_loss` may append additional scalar nodes (already weighted) that
/// are summed into the objective. `adjust_grads` can rewrite the gradient
/// list (SCAFFOLD's control variates). `ws` is the client's buffer pool:
/// the step's tape draws every intermediate from it and recycles them back
/// on return, so consecutive steps reuse the same allocations.
pub fn local_step(
    model: &mut Box<dyn Model>,
    client: &ClientData,
    opt: &mut dyn Optimizer,
    ws: &mut Workspace,
    extra_loss: impl FnOnce(&mut Tape, &ForwardOut) -> Vec<Var>,
    adjust_grads: impl FnOnce(&mut [Matrix]),
) -> f32 {
    let mut tape = Tape::with_workspace(std::mem::take(ws));
    let out = model.forward(&mut tape, &client.input);
    let mut loss = tape.softmax_cross_entropy(out.logits, &client.labels, &client.splits.train);
    for term in extra_loss(&mut tape, &out) {
        loss = tape.add(loss, term);
    }
    tape.backward(loss);

    let mut grads: Vec<Matrix> = out
        .param_vars
        .iter()
        .map(|&v| tape.grad_or_zeros(v))
        .collect();
    adjust_grads(&mut grads);

    let mut params = model.params();
    opt.step(&mut params, &grads);
    model.set_params(&params);
    model.post_step();
    for g in grads {
        tape.recycle_matrix(g);
    }
    for p in params {
        tape.recycle_matrix(p);
    }
    let scalar = tape.scalar(loss);
    *ws = tape.recycle();
    scalar
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{setup_federation, FederationConfig};
    use fedomd_data::{generate, spec, DatasetName};
    use fedomd_nn::{Mlp, Sgd};
    use fedomd_tensor::rng::seeded;

    fn one_client() -> ClientData {
        let ds = generate(&spec(DatasetName::CoraMini), 0);
        setup_federation(&ds, &FederationConfig::mini(1, 0)).remove(0)
    }

    #[test]
    fn fedavg_of_identical_sets_is_identity() {
        let p = vec![Matrix::from_vec(1, 2, vec![1.0, 2.0])];
        let avg = fedavg(&[p.clone(), p.clone()], &[1.0, 1.0]);
        avg[0].assert_close(&p[0], 1e-6);
    }

    #[test]
    fn fedavg_weighted_mean() {
        let a = vec![Matrix::from_vec(1, 1, vec![0.0])];
        let b = vec![Matrix::from_vec(1, 1, vec![10.0])];
        let avg = fedavg(&[a, b], &[3.0, 1.0]);
        assert!((avg[0][(0, 0)] - 2.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn fedavg_rejects_empty() {
        let _ = fedavg(&[], &[]);
    }

    #[test]
    fn local_step_reduces_loss() {
        let client = one_client();
        let mut rng = seeded(1);
        let mut model: Box<dyn Model> =
            Box::new(Mlp::new(client.input.n_features(), 16, 7, &mut rng));
        let mut opt = Sgd::new(0.1, 0.0);
        let mut ws = Workspace::new();
        let first = local_step(
            &mut model,
            &client,
            &mut opt,
            &mut ws,
            |_, _| vec![],
            |_| {},
        );
        let mut last = first;
        for _ in 0..30 {
            last = local_step(
                &mut model,
                &client,
                &mut opt,
                &mut ws,
                |_, _| vec![],
                |_| {},
            );
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(ws.pooled_buffers() > 0, "steps should recycle buffers");
    }

    #[test]
    fn evaluate_returns_fractions_in_unit_interval() {
        let client = one_client();
        let mut rng = seeded(2);
        let models: Vec<Box<dyn Model>> = vec![Box::new(Mlp::new(
            client.input.n_features(),
            8,
            7,
            &mut rng,
        ))];
        let (val, test) = evaluate(&models, std::slice::from_ref(&client));
        assert!((0.0..=1.0).contains(&val));
        assert!((0.0..=1.0).contains(&test));
    }

    #[test]
    fn count_correct_basics() {
        let logits = Matrix::from_vec(2, 2, vec![2.0, 1.0, 0.0, 5.0]);
        let labels = vec![0, 0];
        let (c, t) = count_correct(&logits, &labels, &[0, 1]);
        assert_eq!((c, t), (1, 2));
    }

    #[test]
    fn update_accumulator_weighted_mean() {
        let a = vec![Matrix::from_vec(1, 1, vec![0.0])];
        let b = vec![Matrix::from_vec(1, 1, vec![10.0])];
        let mut acc = UpdateAccumulator::new();
        acc.push(&a, 3.0);
        acc.push(&b, 1.0);
        let avg = acc.finish().expect("two updates");
        assert!((avg[0][(0, 0)] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn update_accumulator_empty_yields_none() {
        assert!(UpdateAccumulator::new().finish().is_none());
        // All-zero weights keep the old global too.
        let mut acc = UpdateAccumulator::new();
        acc.push(&[Matrix::from_vec(1, 1, vec![4.0])], 0.0);
        assert!(acc.finish().is_none());
    }

    #[test]
    fn update_accumulator_streaming_matches_sharded_bitwise() {
        let mut rng = seeded(11);
        use rand::Rng;
        let batch: Vec<(Vec<Matrix>, f64)> = (0..23)
            .map(|_| {
                let params = vec![
                    Matrix::from_vec(2, 3, (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect()),
                    Matrix::from_vec(1, 4, (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect()),
                ];
                (params, rng.gen_range(0.0..3.0f64))
            })
            .collect();

        let mut seq = UpdateAccumulator::new();
        for (params, w) in &batch {
            seq.push(params, *w);
        }
        let seq = seq.finish().expect("23 updates");

        let mut tree = UpdateAccumulator::new();
        // Split across push and push_batch to cover the mixed path.
        for (params, w) in &batch[..5] {
            tree.push(params, *w);
        }
        tree.push_batch(&batch[5..]);
        let tree = tree.finish().expect("23 updates");

        for (a, b) in seq.iter().zip(&tree) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // And both sit within float tolerance of the f32 batch fedavg.
        let sets: Vec<Vec<Matrix>> = batch.iter().map(|(p, _)| p.clone()).collect();
        let weights: Vec<f64> = batch.iter().map(|(_, w)| *w).collect();
        let reference = fedavg(&sets, &weights);
        for (a, b) in seq.iter().zip(&reference) {
            a.assert_close(b, 1e-5);
        }
    }

    #[test]
    fn update_accumulator_nonfinite_updates_stay_bit_identical() {
        let mut rng = seeded(13);
        use rand::Rng;
        const SPECIALS: [f32; 3] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let batch: Vec<(Vec<Matrix>, f64)> = (0..23)
            .map(|i| {
                let mut vals: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
                // A few poisoned clients: their NaN/±∞ entries must
                // corrupt every aggregation path identically, not just
                // some of them.
                if i % 7 == 0 {
                    vals[rng.gen_range(0..6usize)] = SPECIALS[rng.gen_range(0..SPECIALS.len())];
                }
                let params = vec![
                    Matrix::from_vec(2, 3, vals),
                    Matrix::from_vec(1, 4, (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect()),
                ];
                (params, rng.gen_range(0.0..3.0f64))
            })
            .collect();

        let mut seq = UpdateAccumulator::new();
        for (params, w) in &batch {
            seq.push(params, *w);
        }
        let seq = seq.finish().expect("23 updates");

        for split in [1usize, 5, 11, 22] {
            let mut mixed = UpdateAccumulator::new();
            for (params, w) in &batch[..split] {
                mixed.push(params, *w);
            }
            mixed.push_batch(&batch[split..]);
            let mixed = mixed.finish().expect("23 updates");

            let mut saw_nonfinite = false;
            for (a, b) in seq.iter().zip(&mixed) {
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                    saw_nonfinite |= !x.is_finite();
                }
            }
            assert!(saw_nonfinite, "the poison must reach the aggregate");
        }
    }
}
