//! Fixture-directory tests for the rule engine.
//!
//! Every `.rs` file under `tests/fixtures/` is a small known-bad (or
//! known-clean) snippet. Its first line is a directive of the form
//!
//! ```text
//! //@ crate=<name> path=<rel_path> expect=<rule[,rule...]|clean>
//! ```
//!
//! which declares the [`FileCtx`] the snippet is linted under and the
//! exact set of rules that must fire. This keeps each rule's failure
//! mode demonstrable: deleting a rule (or breaking its matching) makes
//! the corresponding bad fixture stop tripping, and this test fails.
//!
//! The workspace walker deliberately skips directories named `fixtures`,
//! so these intentionally-bad files never reach the real lint gate.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use fedomd_lint::{lint_source, FileCtx};

/// Parses the `//@ crate=... path=... expect=...` directive line.
fn parse_directive(fixture: &str, first_line: &str) -> (FileCtx, BTreeSet<String>) {
    let body = first_line
        .strip_prefix("//@")
        .unwrap_or_else(|| panic!("{fixture}: first line must start with `//@`"))
        .trim();
    let mut crate_name = None;
    let mut rel_path = None;
    let mut expect = None;
    for field in body.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .unwrap_or_else(|| panic!("{fixture}: malformed directive field `{field}`"));
        match key {
            "crate" => crate_name = Some(value.to_string()),
            "path" => rel_path = Some(value.to_string()),
            "expect" => expect = Some(value.to_string()),
            other => panic!("{fixture}: unknown directive key `{other}`"),
        }
    }
    let expect = expect.unwrap_or_else(|| panic!("{fixture}: directive missing `expect=`"));
    let expected: BTreeSet<String> = if expect == "clean" {
        BTreeSet::new()
    } else {
        expect.split(',').map(str::to_string).collect()
    };
    let ctx = FileCtx {
        crate_name: crate_name.unwrap_or_else(|| panic!("{fixture}: missing `crate=`")),
        rel_path: rel_path.unwrap_or_else(|| panic!("{fixture}: missing `path=`")),
        is_test_file: false,
    };
    (ctx, expected)
}

#[test]
fn fixtures_trip_exactly_their_declared_rules() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 16,
        "expected at least one bad fixture per rule plus clean fixtures, found {}",
        paths.len()
    );

    let mut bad_rules_seen = BTreeSet::new();
    for path in &paths {
        let fixture = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = fs::read_to_string(path).expect("fixture readable");
        let first_line = src.lines().next().unwrap_or("");
        let (ctx, expected) = parse_directive(&fixture, first_line);

        let fired: BTreeSet<String> = lint_source(&ctx, &src)
            .iter()
            .map(|v| v.rule.to_string())
            .collect();
        assert_eq!(
            fired, expected,
            "{fixture}: rules that fired do not match its `expect=` directive"
        );
        bad_rules_seen.extend(expected);
    }

    // Every rule the engine ships must have at least one bad fixture
    // demonstrating its failure mode.
    let all_rules: BTreeSet<String> = [
        "unsafe-safety",
        "forbid-unsafe",
        "map-iteration",
        "wall-clock",
        "panic-freedom",
        "lock-order",
        "unbounded-channel",
        "detached-thread",
        "msg-wildcard",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();
    assert_eq!(
        bad_rules_seen, all_rules,
        "every rule needs a fixture that trips it"
    );
}

#[test]
fn violation_messages_carry_file_line_and_rule() {
    let src = "//@ none\nfn f() { v.unwrap(); }\n";
    let ctx = FileCtx {
        crate_name: "core".into(),
        rel_path: "crates/core/src/fixture.rs".into(),
        is_test_file: false,
    };
    let v = lint_source(&ctx, src);
    assert_eq!(v.len(), 1);
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:2: [panic-freedom]"),
        "unexpected rendering: {rendered}"
    );
}
