//@ crate=net path=crates/net/src/fixture.rs expect=unbounded-channel
// Unbounded queues in a concurrency crate hide backpressure: a stalled
// consumer lets the producer buffer frames without limit.
pub fn open_crossbeam() -> (Sender, Receiver) {
    crossbeam::channel::unbounded()
}

pub fn open_std() -> (Sender, Receiver) {
    std::sync::mpsc::channel()
}
