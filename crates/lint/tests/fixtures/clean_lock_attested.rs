//@ crate=net path=crates/net/src/fixture.rs expect=clean
// Lock discipline done right: a single documented nesting order, and
// blocking work only after the guard is released.
pub fn nested(reg: &Lock, stats: &Lock) {
    let a = reg.lock();
    // LINT: lock-order registry-before-stats, the documented global order.
    let b = stats.lock();
    use_both(&a, &b);
}

pub fn handoff(state: &Lock, tx: &Sender) {
    let guard = state.lock();
    let head = guard.head();
    drop(guard);
    tx.send(head);
}

pub fn temporary(state: &Lock, tx: &Sender) {
    // A temporary guard dies at its own statement; the send is safe.
    state.lock().bump();
    tx.send(1);
}
