//@ crate=tensor path=crates/tensor/src/fixture.rs expect=unsafe-safety
// An `unsafe fn` with no safety-audit comment bound to it.
pub unsafe fn launch_kernel(p: *const f32) -> f32 {
    unsafe { *p }
}
