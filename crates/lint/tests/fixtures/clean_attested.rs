//@ crate=transport path=crates/transport/src/fixture.rs expect=clean
// Every risky construct below carries its attestation, so no rule fires.

// LINT: sorted — keys are collected into a Vec and sorted before any
// byte ever leaves this module.
use std::collections::HashMap;

pub fn sorted_keys(m: &std::collections::BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn first(v: &[u32]) -> u32 {
    // LINT: allow(panic) fixture invariant: callers pass a slice they
    // just pushed into, so it is never empty.
    *v.first().unwrap()
}

pub fn chained(v: Vec<u32>) -> u32 {
    // LINT: allow(panic) binding must also cover a flagged token on a
    // continuation line of this multi-line method chain.
    v.into_iter()
        .map(|x| x + 1)
        .max()
        .unwrap()
}
