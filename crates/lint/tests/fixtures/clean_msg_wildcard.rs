//@ crate=core path=crates/core/src/fixture.rs expect=clean
// Exhaustive protocol handling: every variant named, and the one
// deliberate catch-all attested because it fails loudly, not silently.
pub fn route(env: Envelope) {
    match env.payload {
        Payload::WeightUpdate { params } => fold(params),
        Payload::StatsRound1 { terms } => stats1(terms),
        Payload::StatsRound2 { terms } => stats2(terms),
        Payload::GlobalModel { params } => set(params),
        Payload::GlobalStats { stats } => apply(stats),
        Payload::Control(c) => control(c),
        Payload::Metrics { .. } => record(env.sender),
    }
}

pub fn decode(msg_type: u8) -> DecodeResult {
    match msg_type {
        // LINT: allow(msg-wildcard) unknown tags become a typed error the
        // caller must handle; no frame is dropped on the floor.
        other => reject(other),
    }
}
