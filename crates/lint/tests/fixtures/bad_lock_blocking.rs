//@ crate=transport path=crates/transport/src/fixture.rs expect=lock-order
// A blocking channel send while a lock guard is live: if the receiver is
// itself waiting on this lock, both sides park forever.
pub fn drain(state: &Lock, tx: &Sender) {
    let guard = state.lock();
    tx.send(guard.head());
}
