//@ crate=core path=crates/core/src/fixture.rs expect=msg-wildcard
// Protocol matches that can silently drop frames: a catch-all arm over
// `Payload`, and a `msg_type` match naming only some variants.
pub fn route(env: Envelope) {
    match env.payload {
        Payload::WeightUpdate { params } => fold(params),
        other => ignore(other),
    }
}

pub fn phase_of(msg_type: u8) -> Phase {
    match msg_type {
        WeightUpdate => Phase::Weights,
        Control => Phase::Control,
    }
}
