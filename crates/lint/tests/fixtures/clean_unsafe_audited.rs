//@ crate=tensor path=crates/tensor/src/fixture.rs expect=clean
// An audited `unsafe fn`: the fn-level comment binds through the
// attribute, and the inner block restates the contract it relies on.

// SAFETY: the caller guarantees `p` points to a live, aligned f32 and
// that the AVX2 feature was detected before dispatching here.
#[target_feature(enable = "avx2")]
pub unsafe fn read_one(p: *const f32) -> f32 {
    // SAFETY: forwarding the fn-level contract: `p` is valid for reads.
    unsafe { *p }
}
