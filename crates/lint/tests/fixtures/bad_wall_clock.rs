//@ crate=federated path=crates/federated/src/fixture.rs expect=wall-clock
// A raw wall-clock read outside the telemetry/metrics/bench crates.
use std::time::Instant;

pub fn stamp() -> std::time::Duration {
    let t = Instant::now();
    t.elapsed()
}
