//@ crate=transport path=crates/transport/src/fixture.rs expect=map-iteration
// A HashMap in a serialization crate with no sorted-emission attestation:
// its iteration order could leak into encoded bytes.
use std::collections::HashMap;

pub fn encode_all(m: &std::collections::BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
