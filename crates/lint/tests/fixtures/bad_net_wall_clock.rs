//@ crate=net path=crates/net/src/bad.rs expect=wall-clock
// The generic clock attestation must NOT cover the net crate: its
// wall-clock sites need the dedicated `wall-clock` marker so each socket
// deadline is reviewed under the net crate's policy, not pasted in.

use std::time::Instant;

pub fn phase_deadline() -> Instant {
    // LINT: allow(clock) phase deadline over a real socket.
    Instant::now()
}
