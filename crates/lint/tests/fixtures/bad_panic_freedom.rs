//@ crate=core path=crates/core/src/fixture.rs expect=panic-freedom
// An unattested `.unwrap()` in the library code of a panic-free crate.
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
