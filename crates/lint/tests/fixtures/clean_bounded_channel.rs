//@ crate=net path=crates/net/src/fixture.rs expect=clean
// Bounded queues make backpressure explicit; a deliberate unbounded queue
// carries its reasoned attestation.
pub fn open() -> (Sender, Receiver) {
    crossbeam::channel::bounded(64)
}

pub fn legacy() -> (Sender, Receiver) {
    // LINT: allow(unbounded-channel) drained synchronously every round by
    // the lockstep driver, so occupancy is bounded by one round's frames.
    crossbeam::channel::unbounded()
}
