//@ crate=federated path=crates/federated/src/fixture.rs expect=detached-thread
// A spawned thread whose handle is discarded: nothing ever observes its
// completion (or its panic), and shutdown can race its side effects.
pub fn fire_and_forget() {
    std::thread::spawn(|| background_work());
}
