//@ crate=jsonio path=crates/jsonio/src/lib.rs expect=forbid-unsafe
// The lib.rs of a crate on the forbid list, missing `#![forbid(unsafe_code)]`.
pub fn parse(s: &str) -> usize {
    s.len()
}
