//@ crate=net path=crates/net/src/fixture.rs expect=lock-order
// Two functions acquire the same pair of locks in opposite orders — the
// classic ABBA deadlock. Both edges of the cycle are reported.
pub fn forward(reg: &Lock, stats: &Lock) {
    let a = reg.lock();
    let b = stats.lock();
    use_both(&a, &b);
}

pub fn backward(reg: &Lock, stats: &Lock) {
    let b = stats.lock();
    let a = reg.lock();
    use_both(&a, &b);
}
