//@ crate=net path=crates/net/src/clean.rs expect=clean
// The net crate's dedicated marker attests socket-deadline clock reads.

use std::time::Instant;

pub fn phase_deadline() -> Instant {
    // LINT: allow(wall-clock) phase deadline over a real socket; every
    // admit/drop decision it feeds goes through `admit_by_deadline`.
    Instant::now()
}
