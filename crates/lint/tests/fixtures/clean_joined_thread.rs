//@ crate=federated path=crates/federated/src/fixture.rs expect=clean
// Every spawn has a reachable join: on its own binding, at the call site
// of the spawning function, or an attested deliberate detachment.
pub fn run() {
    let worker = std::thread::spawn(|| background_work());
    finish(worker.join());
}

pub fn start() -> JoinHandle {
    std::thread::spawn(|| background_work())
}

pub fn drive() {
    let h = start();
    finish(h.join());
}

pub fn daemon() {
    // LINT: allow(detached-thread) process-lifetime heartbeat; it exits
    // with the process and owns nothing that needs ordered teardown.
    std::thread::spawn(|| background_work());
}
