//! Concurrency discipline rules over the item-level parser.
//!
//! Three rule families (DESIGN.md §17) guard the workspace's concurrent
//! surface — the thread-per-client TCP deployment, the fold pipeline, and
//! whatever the roadmap's codec work adds next:
//!
//! * **lock-order** — every nested lock acquisition (`B` acquired while a
//!   guard on `A` is live) becomes an edge `A → B` in a workspace-wide
//!   lock-acquisition order graph; edges on a cycle are violations, as is
//!   re-acquiring a lock while its own guard is live (self-deadlock on
//!   non-reentrant locks) and any blocking channel `send`/`recv`/`join`/
//!   `wait`/`sleep` performed under a live guard. Attest a reviewed
//!   nesting with `// LINT: lock-order <name>` — the name documents the
//!   global order the site obeys.
//! * **unbounded-channel** — channel constructions must be bounded
//!   (`channel::bounded(n)`) so backpressure is explicit, or carry
//!   `// LINT: allow(unbounded-channel) <reason>`.
//! * **detached-thread** — every `thread::spawn` / `Builder::…spawn` must
//!   have a reachable `join`: on its own binding, or on the result of the
//!   spawning function at a call site (resolved through the parser's call
//!   edges). Deliberately detached threads attest with
//!   `// LINT: allow(detached-thread) <reason>`.
//!
//! Scoped spawns (`thread::scope`'s `s.spawn(…)`) are exempt: the scope
//! joins them by construction — exactly the shape `fold_in_order` uses.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::ParsedFile;
use crate::rules::{FileCtx, Lines, Violation, CONCURRENCY_CRATES};

/// One nested-acquisition edge: `acquired` was taken while a guard on
/// `held` was live, at `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: usize,
}

/// Blocking operations that must not run under a live guard.
const BLOCKING_METHODS: &[&str] = &["send", "recv", "recv_timeout", "join", "wait"];

/// Runs the three concurrency rules on one parsed file, appending
/// violations and returning the file's (unattested) lock edges for the
/// workspace-wide cycle pass.
pub fn apply(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) -> Vec<LockEdge> {
    if ctx.is_test_file || !CONCURRENCY_CRATES.contains(&ctx.crate_name.as_str()) {
        return Vec::new();
    }
    let edges = rule_lock_order(ctx, parsed, in_test, lines, out);
    rule_unbounded_channel(ctx, parsed, in_test, lines, out);
    rule_detached_thread(ctx, parsed, in_test, lines, out);
    edges
}

fn rule_lock_order(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) -> Vec<LockEdge> {
    let live = |c: usize| in_test.get(parsed.token_index(c)).copied().unwrap_or(false);
    let guards: Vec<_> = parsed
        .guard_scopes()
        .into_iter()
        .filter(|g| !live(g.acquire))
        .collect();
    let mut edges = Vec::new();
    let mut flagged_blocking: BTreeSet<usize> = BTreeSet::new();
    for g in &guards {
        // Nested acquisitions inside g's live region.
        for h in &guards {
            if h.acquire <= g.acquire || h.acquire >= g.end {
                continue;
            }
            if h.name == g.name {
                if !lines.attested_with_reason(h.line, "LINT: lock-order") {
                    out.push(Violation {
                        file: ctx.rel_path.clone(),
                        line: h.line,
                        rule: "lock-order",
                        message: format!(
                            "re-acquiring `{}` while its own guard is live \
                             self-deadlocks a non-reentrant lock — drop the \
                             guard first, or attest with \
                             `// LINT: lock-order <name>`",
                            h.name
                        ),
                    });
                }
                continue;
            }
            if lines.attested_with_reason(h.line, "LINT: lock-order") {
                continue; // reviewed nesting: excluded from the graph
            }
            edges.push(LockEdge {
                held: g.name.clone(),
                acquired: h.name.clone(),
                file: ctx.rel_path.clone(),
                line: h.line,
            });
        }
        // Blocking operations inside g's live region.
        for c in g.acquire + 1..g.end.min(parsed.code.len()) {
            if live(c) || !parsed.is_ident(c) {
                continue;
            }
            let name = parsed.text(c);
            let is_method_block = BLOCKING_METHODS.contains(&name)
                && c > 0
                && parsed.text(c - 1) == "."
                && parsed.text(c + 1) == "(";
            let is_sleep = name == "sleep"
                && c >= 2
                && parsed.text(c - 1) == ":"
                && parsed.text(c - 2) == ":"
                && parsed.text(c + 1) == "(";
            if !is_method_block && !is_sleep {
                continue;
            }
            let line = parsed.line(c);
            if lines.attested_with_reason(line, "LINT: lock-order") || !flagged_blocking.insert(c) {
                continue;
            }
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line,
                rule: "lock-order",
                message: format!(
                    "blocking `{}` while the guard on `{}` is live risks \
                     deadlock — release the guard before blocking, or attest \
                     with `// LINT: lock-order <name>`",
                    name, g.name
                ),
            });
        }
    }
    edges
}

/// Reports every edge that participates in a lock-order cycle. Called
/// per file by `lint_source` (fixtures, single-file use) and over the
/// merged edge list by `lint_workspace`, so cross-file cycles through
/// `net`/`transport`/`federated` are caught too.
pub fn lock_cycle_violations(edges: &[LockEdge]) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().insert(&e.acquired);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut out = Vec::new();
    for e in edges {
        if reaches(&e.acquired, &e.held) {
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "acquiring `{}` while holding `{}` is part of a \
                     lock-order cycle — nest the locks in one global order, \
                     or attest the reviewed order with \
                     `// LINT: lock-order <name>`",
                    e.acquired, e.held
                ),
            });
        }
    }
    out
}

fn rule_unbounded_channel(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    for c in 0..parsed.code.len() {
        if in_test.get(parsed.token_index(c)).copied().unwrap_or(false) || !parsed.is_ident(c) {
            continue;
        }
        let name = parsed.text(c);
        // `unbounded()` (crossbeam) or `mpsc::channel()` (std, unbounded
        // by definition).
        let is_unbounded = name == "unbounded"
            || (name == "channel"
                && c >= 3
                && parsed.text(c - 1) == ":"
                && parsed.text(c - 2) == ":"
                && parsed.text(c - 3) == "mpsc");
        if !is_unbounded || call_open(parsed, c).is_none() {
            continue;
        }
        let line = parsed.line(c);
        if lines.attested_with_reason(line, "LINT: allow(unbounded-channel)") {
            continue;
        }
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line,
            rule: "unbounded-channel",
            message: format!(
                "unbounded channel in concurrency crate `{}` hides \
                 backpressure and can grow without limit — use \
                 `channel::bounded(n)`, or attest with \
                 `// LINT: allow(unbounded-channel) <reason>`",
                ctx.crate_name
            ),
        });
    }
}

/// Code index of the `(` opening a call of the ident at `c`, looking
/// through an optional turbofish (`unbounded::<u8>()` must not evade a
/// rule keyed on `unbounded(`). `None` when no call follows.
fn call_open(parsed: &ParsedFile<'_>, c: usize) -> Option<usize> {
    let mut k = c + 1;
    if parsed.text(k) == ":" && parsed.text(k + 1) == ":" && parsed.text(k + 2) == "<" {
        let mut depth = 1i32;
        k += 3;
        while k < parsed.code.len() && depth > 0 {
            match parsed.text(k) {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
    }
    (parsed.text(k) == "(").then_some(k)
}

fn rule_detached_thread(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    // Idents whose handle is joined somewhere in the file: `x.join(…)`.
    let mut joined: BTreeSet<&str> = BTreeSet::new();
    for j in 0..parsed.code.len() {
        if parsed.is_ident(j)
            && parsed.text(j + 1) == "."
            && parsed.text(j + 2) == "join"
            && parsed.text(j + 3) == "("
        {
            joined.insert(parsed.text(j));
        }
    }

    // Whether some call site of `f` has its returned handle joined:
    // either chained directly (`f(…).join()`) or via a let binding whose
    // name is later joined — the call-edge view of "reachable join".
    let call_result_joined = |f: &str| -> bool {
        for c in 0..parsed.code.len() {
            if !parsed.is_ident(c) || parsed.text(c) != f || parsed.text(c + 1) != "(" {
                continue;
            }
            if c > 0 && parsed.text(c - 1) == "fn" {
                continue; // the definition, not a call
            }
            // Find the call's closing paren.
            let mut depth = 0i32;
            let mut k = c + 1;
            while k < parsed.code.len() {
                match parsed.text(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if parsed.text(k + 1) == "." && parsed.text(k + 2) == "join" {
                return true;
            }
            if let Some(l) = parsed.enclosing_let(c) {
                if l.name.as_deref().is_some_and(|n| joined.contains(n)) {
                    return true;
                }
            }
        }
        false
    };

    for c in 0..parsed.code.len() {
        if in_test.get(parsed.token_index(c)).copied().unwrap_or(false)
            || !parsed.is_ident(c)
            || parsed.text(c) != "spawn"
            || call_open(parsed, c).is_none()
        {
            continue;
        }
        let prev = if c > 0 { parsed.text(c - 1) } else { "" };
        let flagged = if prev == ":" && c >= 3 && parsed.text(c - 2) == ":" {
            // Path form: only `thread::spawn` detaches; `rayon::spawn`
            // etc. are pool tasks, not OS threads with handles.
            parsed.text(c - 3) == "thread"
        } else if prev == "." {
            // Method form: `Builder::new()…spawn()` detaches if unjoined;
            // `scope.spawn(…)` is joined by the scope itself.
            statement_mentions_builder(parsed, c)
        } else {
            false
        };
        if !flagged {
            continue;
        }
        let bound_joined = parsed
            .enclosing_let(c)
            .and_then(|l| l.name.as_deref())
            .is_some_and(|n| joined.contains(n));
        let returned_joined = parsed
            .enclosing_fn(c)
            .is_some_and(|f| call_result_joined(&f.name));
        if bound_joined || returned_joined {
            continue;
        }
        let line = parsed.line(c);
        if lines.attested_with_reason(line, "LINT: allow(detached-thread)") {
            continue;
        }
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line,
            rule: "detached-thread",
            message: "spawned thread has no reachable `join` — join its \
                      handle (directly, or where the spawning function's \
                      result is consumed), or attest with \
                      `// LINT: allow(detached-thread) <reason>`"
                .into(),
        });
    }
}

/// Walks back from a `.spawn(` to its statement start looking for the
/// `Builder` ident (bounded lookback; statements are short).
fn statement_mentions_builder(parsed: &ParsedFile<'_>, spawn: usize) -> bool {
    let mut c = spawn;
    for _ in 0..64 {
        if c == 0 {
            return false;
        }
        c -= 1;
        match parsed.text(c) {
            ";" | "{" | "}" => return false,
            "Builder" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_source;

    fn ctx(crate_name: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/x.rs"),
            is_test_file: false,
        }
    }

    fn rules_hit(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn opposite_nesting_orders_are_a_cycle() {
        let src = "fn a() { let g = m1.lock(); let h = m2.lock(); }\n\
                   fn b() { let g = m2.lock(); let h = m1.lock(); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["lock-order", "lock-order"]);
    }

    #[test]
    fn consistent_nesting_order_is_clean() {
        let src = "fn a() { let g = m1.lock(); let h = m2.lock(); }\n\
                   fn b() { let g = m1.lock(); let h = m2.lock(); }\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn attested_nesting_is_excluded_from_the_graph() {
        let src = "fn a() {\n    let g = m1.lock();\n    // LINT: lock-order m1-before-m2, reviewed order.\n    let h = m2.lock();\n}\n\
                   fn b() {\n    let g = m2.lock();\n    // LINT: lock-order m2-before-m1, reviewed order.\n    let h = m1.lock();\n}\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_flagged() {
        let src = "fn a() { let g = m.lock(); let h = m.lock(); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["lock-order"]);
        assert!(v[0].message.contains("re-acquiring"));
    }

    #[test]
    fn blocking_send_under_a_live_guard_is_flagged() {
        let src = "fn a() { let g = m.lock(); tx.send(1); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["lock-order"]);
        assert!(v[0].message.contains("blocking `send`"));
    }

    #[test]
    fn send_after_a_temporary_guard_is_clean() {
        // The guard dies at its statement's end; the send is safe.
        let src = "fn a() { m.lock().push(1); tx.send(1); }\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn send_after_drop_is_clean() {
        let src = "fn a() { let g = m.lock(); drop(g); tx.send(1); }\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn cross_file_cycles_surface_from_merged_edges() {
        let e1 = LockEdge {
            held: "a".into(),
            acquired: "b".into(),
            file: "crates/net/src/x.rs".into(),
            line: 3,
        };
        let e2 = LockEdge {
            held: "b".into(),
            acquired: "a".into(),
            file: "crates/transport/src/y.rs".into(),
            line: 9,
        };
        assert!(lock_cycle_violations(std::slice::from_ref(&e1)).is_empty());
        let v = lock_cycle_violations(&[e1, e2]);
        assert_eq!(v.len(), 2, "both edges of the cycle are reported");
        assert!(v.iter().any(|v| v.file.contains("transport")));
    }

    #[test]
    fn unbounded_channels_need_attestation() {
        let src = "fn a() { let (tx, rx) = unbounded(); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["unbounded-channel"]);
        let attested = "fn a() {\n    // LINT: allow(unbounded-channel) drained every round by the driver.\n    let (tx, rx) = unbounded();\n}\n";
        assert!(lint_source(&ctx("net"), attested).is_empty());
    }

    #[test]
    fn turbofish_does_not_hide_an_unbounded_channel() {
        let src = "fn a() { let (tx, rx) = crossbeam::channel::unbounded::<Vec<u8>>(); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["unbounded-channel"]);
        // A bare path mention with no call stays clean.
        let no_call = "fn a() { let f = crossbeam::channel::unbounded::<u8>; }\n";
        assert!(lint_source(&ctx("net"), no_call).is_empty());
    }

    #[test]
    fn std_mpsc_channel_counts_as_unbounded() {
        let src = "fn a() { let (tx, rx) = std::sync::mpsc::channel(); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["unbounded-channel"]);
    }

    #[test]
    fn bounded_channels_are_clean() {
        let src = "fn a() { let (tx, rx) = channel::bounded(2); }\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn channel_rules_only_cover_concurrency_crates_and_skip_tests() {
        let src = "fn a() { let (tx, rx) = unbounded(); }\n";
        assert!(lint_source(&ctx("tensor"), src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn a() { let (tx, rx) = unbounded(); }\n}\n";
        assert!(lint_source(&ctx("net"), test_mod).is_empty());
    }

    #[test]
    fn unjoined_thread_spawn_is_flagged() {
        let src = "fn a() { std::thread::spawn(move || work()); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["detached-thread"]);
    }

    #[test]
    fn joined_handles_are_clean() {
        let src = "fn a() { let h = std::thread::spawn(work); h.join(); }\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn join_at_the_call_site_is_reachable() {
        // The handle escapes through the spawning function's return value
        // and is joined by the caller — the call-edge path.
        let chained = "fn start() -> JoinHandle { std::thread::spawn(work) }\n\
                       fn run() { start().join(); }\n";
        assert!(lint_source(&ctx("net"), chained).is_empty());
        let via_let = "fn start() -> JoinHandle { std::thread::spawn(work) }\n\
                       fn run() { let h = start(); h.join(); }\n";
        assert!(lint_source(&ctx("net"), via_let).is_empty());
    }

    #[test]
    fn scoped_spawns_are_exempt() {
        let src = "fn a() { std::thread::scope(|s| { s.spawn(|| work()); }); }\n";
        assert!(lint_source(&ctx("federated"), src).is_empty());
    }

    #[test]
    fn builder_spawns_need_a_join_too() {
        let src = "fn a() { std::thread::Builder::new().name(n).spawn(work); }\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(rules_hit(&v), ["detached-thread"]);
    }

    #[test]
    fn detached_attestation_with_reason_passes() {
        let src = "fn a() {\n    // LINT: allow(detached-thread) reader exits on socket shutdown.\n    std::thread::spawn(move || work());\n}\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }
}
