//! Machine-readable diagnostics (`fedomd_lint --format json`).
//!
//! Hand-rolled JSON (the crate stays zero-dependency): an array of
//! objects with `file`, `line`, `rule`, `message`, and `attestation` —
//! the `// LINT: …` marker that would silence the finding, so CI
//! annotations can show the reviewer exactly what an accepted exception
//! must say. The human one-line-per-violation format stays the default.

use crate::rules::Violation;

/// The attestation marker that silences a rule, when one exists.
/// `forbid-unsafe` has none: the fix is the crate-level attribute.
pub fn attestation_for(rule: &str) -> Option<&'static str> {
    match rule {
        "unsafe-safety" => Some("// SAFETY: <justification>"),
        "map-iteration" => Some("// LINT: sorted <reason>"),
        "wall-clock" => Some("// LINT: allow(wall-clock) <reason>"),
        "panic-freedom" => Some("// LINT: allow(panic) <reason>"),
        "lock-order" => Some("// LINT: lock-order <name>"),
        "unbounded-channel" => Some("// LINT: allow(unbounded-channel) <reason>"),
        "detached-thread" => Some("// LINT: allow(detached-thread) <reason>"),
        "msg-wildcard" => Some("// LINT: allow(msg-wildcard) <reason>"),
        _ => None,
    }
}

/// Renders violations as a JSON array (stable key order, one object per
/// line, trailing newline).
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"file\": {}, ", escape(&v.file)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"rule\": {}, ", escape(v.rule)));
        out.push_str(&format!("\"message\": {}, ", escape(&v.message)));
        match attestation_for(v.rule) {
            Some(a) => out.push_str(&format!("\"attestation\": {}", escape(a))),
            None => out.push_str("\"attestation\": null"),
        }
        out.push('}');
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// JSON string escaping per RFC 8259: quotes, backslashes, and control
/// characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, msg: &str) -> Violation {
        Violation {
            file: "crates/net/src/x.rs".into(),
            line: 7,
            rule,
            message: msg.into(),
        }
    }

    #[test]
    fn empty_report_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn objects_carry_all_five_fields() {
        let json = render_json(&[v("lock-order", "blocking `send` under guard")]);
        assert!(json.contains("\"file\": \"crates/net/src/x.rs\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"rule\": \"lock-order\""));
        assert!(json.contains("\"message\": \"blocking `send` under guard\""));
        assert!(json.contains("\"attestation\": \"// LINT: lock-order <name>\""));
    }

    #[test]
    fn forbid_unsafe_has_no_attestation() {
        let json = render_json(&[v("forbid-unsafe", "missing attribute")]);
        assert!(json.contains("\"attestation\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = render_json(&[v("panic-freedom", "uses `\"quoted\"`\nand\tmore")]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\t"));
    }

    #[test]
    fn every_rule_id_resolves_an_attestation_or_is_structural() {
        for rule in [
            "unsafe-safety",
            "map-iteration",
            "wall-clock",
            "panic-freedom",
            "lock-order",
            "unbounded-channel",
            "detached-thread",
            "msg-wildcard",
        ] {
            assert!(attestation_for(rule).is_some(), "{rule}");
        }
        assert!(attestation_for("forbid-unsafe").is_none());
    }
}
