//! The invariant rules and the attestation-comment grammar.
//!
//! Four rule families guard the workspace (see DESIGN.md §13):
//!
//! * **unsafe-safety** — every `unsafe` token must be immediately preceded
//!   by a `// SAFETY: …` comment (attribute lines in between are fine).
//! * **forbid-unsafe** — crates with no legitimate need for `unsafe` must
//!   say so with `#![forbid(unsafe_code)]` in their `lib.rs`.
//! * **determinism** — serialization/wire/checkpoint crates may not touch
//!   `HashMap`/`HashSet` without a `// LINT: sorted` attestation, and
//!   wall-clock reads (`Instant::now`, `SystemTime`) are confined to the
//!   telemetry/metrics/bench crates unless attested
//!   `// LINT: allow(clock) <reason>` — except in the socket-facing `net`
//!   crate, whose sites must carry the dedicated
//!   `// LINT: allow(wall-clock) <reason>` marker instead.
//! * **panic-freedom** — kernel and protocol crates may not `.unwrap()`,
//!   `.expect(…)`, `panic!`, `unreachable!`, `todo!`, or `unimplemented!`
//!   in non-test library code unless attested
//!   `// LINT: allow(panic) <reason>`.
//! * **lock discipline** (`lock-order`, [`crate::concurrency`]) — nested
//!   lock acquisitions form a workspace-wide order graph; cycles,
//!   re-acquisition, and blocking under a live guard are flagged unless
//!   attested `// LINT: lock-order <name>`.
//! * **bounded concurrency** (`unbounded-channel` / `detached-thread`,
//!   [`crate::concurrency`]) — channels must be bounded and spawned
//!   threads must have a reachable `join`, or attest with
//!   `// LINT: allow(unbounded-channel) <reason>` /
//!   `// LINT: allow(detached-thread) <reason>`.
//! * **protocol exhaustiveness** (`msg-wildcard`, [`crate::protocol`]) —
//!   matches over `Payload`/`msg_type` must name every message variant;
//!   wildcard arms need `// LINT: allow(msg-wildcard) <reason>`.
//!
//! Attestations bind to the flagged line: they count when they sit on the
//! same line or on the contiguous run of comment/attribute-only lines
//! directly above it — a blank line breaks the binding, so a stale
//! attestation cannot drift away from the code it justifies.

use crate::regions::test_regions;
use crate::tokenizer::{tokenize, Token, TokenKind};

/// Crates that must carry `#![forbid(unsafe_code)]` in `src/lib.rs`.
pub const FORBID_UNSAFE_CRATES: &[&str] = &[
    "graph",
    "jsonio",
    "metrics",
    "telemetry",
    "transport",
    "core",
    "federated",
    "data",
    "net",
];

/// Crates whose code builds serialized artefacts (wire frames, JSON
/// checkpoints): unordered-map types are banned without attestation.
pub const SERIALIZATION_CRATES: &[&str] = &["transport", "jsonio", "core"];

/// The only crates allowed to read the wall clock without attestation.
pub const CLOCK_ALLOWED_CRATES: &[&str] = &["telemetry", "metrics", "bench"];

/// Crates whose non-test library code must be panic-free (or attested).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "tensor",
    "sparse",
    "autograd",
    "transport",
    "core",
    "net",
    "federated",
];

/// Crates with a real concurrent surface (threads, channels, locks): the
/// lock-discipline and bounded-concurrency rules apply here.
pub const CONCURRENCY_CRATES: &[&str] = &["net", "transport", "federated", "core"];

/// Crates that touch the wire protocol: `Payload`/`msg_type` matches must
/// be exhaustive here.
pub const PROTOCOL_CRATES: &[&str] = &["core", "net", "transport"];

/// Where a source file sits in the workspace, as the rules see it.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Crate directory name under `crates/` (`"suite"` for the root
    /// package, `"lint"` for this crate).
    pub crate_name: String,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// True for path-level test code (`tests/`, `benches/`, `examples/`,
    /// `proptests.rs`-style modules).
    pub is_test_file: bool,
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule identifier (`unsafe-safety`, `forbid-unsafe`,
    /// `map-iteration`, `wall-clock`, `panic-freedom`, `lock-order`,
    /// `unbounded-channel`, `detached-thread`, `msg-wildcard`).
    pub rule: &'static str,
    /// Human-readable explanation with the required fix.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// An `unsafe` occurrence, for the rule and for `UNSAFE_INVENTORY.md`.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// `unsafe fn` / `unsafe block` / `unsafe impl` / `unsafe trait`.
    pub kind: &'static str,
    /// The `SAFETY:` justification bound to the site, when present.
    pub safety: Option<String>,
}

/// Per-line index of a token stream: which lines hold code, comments, or
/// only attributes — the substrate for attestation binding.
pub struct Lines {
    /// line → concatenated comment text on that line.
    comments: Vec<(usize, String)>,
    /// Lines containing at least one non-comment token.
    code: Vec<usize>,
    /// Code lines whose every non-comment token belongs to an attribute.
    attr_only: Vec<usize>,
    /// line → text of the last non-comment token on it (statement-end
    /// detection for multi-line statements).
    last_code: Vec<(usize, String)>,
    /// Last line holding any token.
    max_line: usize,
}

impl Lines {
    /// Builds the index for one file's tokens.
    pub fn new(tokens: &[Token]) -> Self {
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut code: Vec<usize> = Vec::new();
        let mut max_line = 0usize;

        // Token indices covered by attribute groups (`#[…]` / `#![…]`).
        let mut in_attr = vec![false; tokens.len()];
        let idxs: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let mut c = 0usize;
        while c < idxs.len() {
            if tokens[idxs[c]].text == "#" {
                let mut j = c + 1;
                if j < idxs.len() && tokens[idxs[j]].text == "!" {
                    j += 1;
                }
                if j < idxs.len() && tokens[idxs[j]].text == "[" {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < idxs.len() {
                        match tokens[idxs[k]].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    for covered in idxs.iter().take(k.min(idxs.len() - 1) + 1).skip(c) {
                        in_attr[*covered] = true;
                    }
                    c = k + 1;
                    continue;
                }
            }
            c += 1;
        }

        let mut non_attr_code: Vec<usize> = Vec::new();
        let mut last_code: Vec<(usize, String)> = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            max_line = max_line.max(t.line);
            if t.is_comment() {
                match comments.iter_mut().find(|(l, _)| *l == t.line) {
                    Some((_, s)) => {
                        s.push(' ');
                        s.push_str(&t.text);
                    }
                    None => comments.push((t.line, t.text.clone())),
                }
            } else {
                code.push(t.line);
                if !in_attr[i] {
                    non_attr_code.push(t.line);
                }
                match last_code.last_mut() {
                    Some((l, s)) if *l == t.line => *s = t.text.clone(),
                    _ => last_code.push((t.line, t.text.clone())),
                }
            }
        }
        code.dedup();
        non_attr_code.dedup();
        let attr_only = code
            .iter()
            .copied()
            .filter(|l| !non_attr_code.contains(l))
            .collect();
        Self {
            comments,
            code,
            attr_only,
            last_code,
            max_line,
        }
    }

    fn comment_on(&self, line: usize) -> Option<&str> {
        self.comments
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, s)| s.as_str())
    }

    fn has_code(&self, line: usize) -> bool {
        self.code.binary_search(&line).is_ok()
    }

    fn attr_only(&self, line: usize) -> bool {
        self.attr_only.contains(&line)
    }

    /// True when the last non-comment token on `line` ends a statement
    /// (`;`, `{`, `}`): the next line then starts a fresh statement.
    fn ends_statement(&self, line: usize) -> bool {
        self.last_code
            .iter()
            .find(|(l, _)| *l == line)
            .is_some_and(|(_, t)| matches!(t.as_str(), ";" | "{" | "}"))
    }

    /// The comment text bound to `line`: comments on the lines of the
    /// statement containing it (trailing and interior), plus the
    /// contiguous run of comment/attribute-only lines directly above the
    /// statement. A blank line ends the run, so an attestation cannot
    /// drift away from the code it justifies.
    pub fn bound_comments(&self, line: usize) -> Vec<&str> {
        // Extend upward to the statement's first line: a preceding code
        // line that does not end with `;`/`{`/`}` means `line` is a
        // continuation of it (method chains, wrapped argument lists).
        let mut stmt = line;
        while stmt > 1 {
            let prev = stmt - 1;
            if self.has_code(prev) && !self.attr_only(prev) && !self.ends_statement(prev) {
                stmt -= 1;
            } else {
                break;
            }
        }
        // The comment/attribute run directly above the statement.
        let mut above = Vec::new();
        let mut l = stmt;
        while l > 1 {
            l -= 1;
            let comment = self.comment_on(l);
            let code = self.has_code(l);
            match (comment, code) {
                (Some(c), false) => above.push(c),
                (maybe, true) if self.attr_only(l) => {
                    if let Some(c) = maybe {
                        above.push(c);
                    }
                }
                _ => break, // blank line or real code: binding ends
            }
        }
        above.reverse();
        // Comments on the statement's own lines, in source order.
        for sl in stmt..=line {
            if let Some(c) = self.comment_on(sl) {
                above.push(c);
            }
        }
        above
    }

    /// True when a bound comment contains `needle`.
    pub fn attested(&self, line: usize, needle: &str) -> bool {
        self.bound_comments(line).iter().any(|c| c.contains(needle))
    }

    /// True when a bound comment contains `needle` followed by a
    /// non-empty free-text reason.
    pub fn attested_with_reason(&self, line: usize, needle: &str) -> bool {
        self.bound_comments(line).iter().any(|c| {
            c.find(needle)
                .map(|p| c[p + needle.len()..].trim().len() >= 3)
                .unwrap_or(false)
        })
    }

    /// Total lines spanned (diagnostics).
    pub fn max_line(&self) -> usize {
        self.max_line
    }
}

/// One file's analysis: its violations plus the lock edges it contributes
/// to the workspace-wide lock-order graph.
pub struct Analysis {
    pub violations: Vec<Violation>,
    pub lock_edges: Vec<crate::concurrency::LockEdge>,
}

/// Analyzes one file's source, applying every rule that matches `ctx`.
/// Lock-order *edges* are returned, not judged: cycle detection needs the
/// whole graph, which [`crate::lint_workspace`] assembles across files.
pub fn analyze_source(ctx: &FileCtx, src: &str) -> Analysis {
    let tokens = tokenize(src);
    let in_test = test_regions(&tokens);
    let lines = Lines::new(&tokens);
    let parsed = crate::parser::parse(&tokens);
    let mut out = Vec::new();

    rule_unsafe_safety(ctx, &tokens, &lines, &mut out);
    rule_forbid_unsafe(ctx, &tokens, &mut out);
    rule_map_in_serialization(ctx, &tokens, &in_test, &lines, &mut out);
    rule_wall_clock(ctx, &tokens, &in_test, &lines, &mut out);
    rule_panic_freedom(ctx, &tokens, &in_test, &lines, &mut out);
    let lock_edges = crate::concurrency::apply(ctx, &parsed, &in_test, &lines, &mut out);
    crate::protocol::apply(ctx, &parsed, &in_test, &lines, &mut out);

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    Analysis {
        violations: out,
        lock_edges,
    }
}

/// Lints one file's source in isolation: `analyze_source` plus cycle
/// detection over this file's own lock edges (fixtures and single-file
/// callers; the workspace pass judges the merged graph instead).
pub fn lint_source(ctx: &FileCtx, src: &str) -> Vec<Violation> {
    let mut a = analyze_source(ctx, src);
    a.violations
        .extend(crate::concurrency::lock_cycle_violations(&a.lock_edges));
    a.violations
        .sort_by(|x, y| (x.line, x.rule).cmp(&(y.line, y.rule)));
    a.violations
}

/// Extracts every unsafe site with its bound `SAFETY:` justification.
pub fn unsafe_sites(tokens: &[Token], lines: &Lines) -> Vec<UnsafeSite> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let kind = match code.get(i + 1).map(|n| n.text.as_str()) {
            Some("fn") => "unsafe fn",
            Some("{") => "unsafe block",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ => "unsafe",
        };
        // The justification is everything from the first `SAFETY:` marker
        // to the end of the bound comment run (multi-line comments keep
        // their continuation lines).
        let bound = lines.bound_comments(t.line);
        let safety = bound
            .iter()
            .position(|c| c.contains("SAFETY:"))
            .map(|start| {
                let mut joined = String::new();
                for (k, c) in bound[start..].iter().enumerate() {
                    let piece = match (k, c.find("SAFETY:")) {
                        (0, Some(p)) => &c[p + "SAFETY:".len()..],
                        _ => c,
                    };
                    joined.push_str(piece);
                    joined.push(' ');
                }
                normalize_comment(&joined)
            })
            .filter(|s| !s.is_empty());
        out.push(UnsafeSite {
            line: t.line,
            kind,
            safety,
        });
    }
    out
}

/// Collapses a comment run into one display line: strips `//` markers and
/// squeezes whitespace.
fn normalize_comment(s: &str) -> String {
    let mut out = String::new();
    for piece in s.split("//") {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(piece);
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn rule_unsafe_safety(ctx: &FileCtx, tokens: &[Token], lines: &Lines, out: &mut Vec<Violation>) {
    for site in unsafe_sites(tokens, lines) {
        if !lines.attested(site.line, "SAFETY:") {
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: site.line,
                rule: "unsafe-safety",
                message: format!(
                    "{} without an immediately preceding `// SAFETY:` comment \
                     stating why its preconditions hold",
                    site.kind
                ),
            });
        }
    }
}

fn rule_forbid_unsafe(ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Violation>) {
    let expected = format!("crates/{}/src/lib.rs", ctx.crate_name);
    if ctx.rel_path != expected || !FORBID_UNSAFE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let found = code
        .windows(3)
        .any(|w| w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code");
    if !found {
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: format!(
                "crate `{}` has no legitimate need for unsafe code and must \
                 declare `#![forbid(unsafe_code)]`",
                ctx.crate_name
            ),
        });
    }
}

fn rule_map_in_serialization(
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    if ctx.is_test_file || !SERIALIZATION_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if (t.text == "HashMap" || t.text == "HashSet") && !lines.attested(t.line, "LINT: sorted") {
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: "map-iteration",
                message: format!(
                    "`{}` in serialization crate `{}`: unordered iteration can \
                     leak into wire frames or checkpoints — use `BTreeMap`/\
                     `BTreeSet`, or attest with `// LINT: sorted` after making \
                     the emission order deterministic",
                    t.text, ctx.crate_name
                ),
            });
        }
    }
}

fn rule_wall_clock(
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    if ctx.is_test_file || CLOCK_ALLOWED_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let flagged = |idx: usize| -> bool {
        let t = &tokens[idx];
        if t.kind != TokenKind::Ident {
            return false;
        }
        if t.text == "SystemTime" {
            return true;
        }
        if t.text == "Instant" {
            // `Instant :: now` — `use std::time::Instant` alone is fine.
            let rest: Vec<&Token> = tokens[idx + 1..]
                .iter()
                .filter(|n| !n.is_comment())
                .take(3)
                .collect();
            return rest.len() == 3
                && rest[0].text == ":"
                && rest[1].text == ":"
                && rest[2].text == "now";
        }
        false
    };
    // The net crate serves real sockets, where phase deadlines are wall
    // time by nature — each site still needs its own attestation, under a
    // dedicated marker so the generic one cannot be pasted in unreviewed.
    let needle = if ctx.crate_name == "net" {
        "LINT: allow(wall-clock)"
    } else {
        "LINT: allow(clock)"
    };
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !flagged(i) {
            continue;
        }
        if !lines.attested_with_reason(t.line, needle) {
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: "wall-clock",
                message: format!(
                    "wall-clock read (`{}`) outside the telemetry/metrics/bench \
                     crates breaks replay determinism — route timing through \
                     `fedomd_metrics::Stopwatch`/`Timer`, or attest with \
                     `// {needle} <reason>`",
                    t.text
                ),
            });
        }
    }
}

fn rule_panic_freedom(
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    if ctx.is_test_file || !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    // Work on the code-token view but keep original indices for the
    // test-region flags.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (c, &i) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let t = &tokens[i];
        let next = |k: usize| code.get(c + k).map(|&j| tokens[j].text.as_str());
        let prev = if c > 0 {
            Some(tokens[code[c - 1]].text.as_str())
        } else {
            None
        };
        let what: Option<&str> = match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, m @ ("unwrap" | "expect"))
                if prev == Some(".") && next(1) == Some("(") =>
            {
                Some(m)
            }
            (TokenKind::Ident, m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if next(1) == Some("!") =>
            {
                Some(m)
            }
            _ => None,
        };
        let Some(what) = what else { continue };
        if !lines.attested_with_reason(t.line, "LINT: allow(panic)") {
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: "panic-freedom",
                message: format!(
                    "`{what}` in non-test library code of panic-free crate \
                     `{}` — return a typed error, or attest with \
                     `// LINT: allow(panic) <reason>`",
                    ctx.crate_name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, rel_path: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.into(),
            rel_path: rel_path.into(),
            is_test_file: false,
        }
    }

    fn rules_hit(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn safety_comment_binds_through_attributes() {
        let src = r#"
// SAFETY: callers guarantee the feature is present.
#[target_feature(enable = "avx2")]
unsafe fn k() {}
"#;
        assert!(lint_source(&ctx("tensor", "crates/tensor/src/x.rs"), src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_binding() {
        let src = "// SAFETY: stale, drifted away.\n\nunsafe fn k() {}\n";
        let v = lint_source(&ctx("tensor", "crates/tensor/src/x.rs"), src);
        assert_eq!(rules_hit(&v), ["unsafe-safety"]);
    }

    #[test]
    fn unwrap_attestation_requires_a_reason() {
        let bare = "fn f() {\n    // LINT: allow(panic)\n    x.unwrap();\n}\n";
        let v = lint_source(&ctx("tensor", "crates/tensor/src/x.rs"), bare);
        assert_eq!(rules_hit(&v), ["panic-freedom"]);
        let reasoned =
            "fn f() {\n    // LINT: allow(panic) invariant: x was just inserted.\n    x.unwrap();\n}\n";
        assert!(lint_source(&ctx("tensor", "crates/tensor/src/x.rs"), reasoned).is_empty());
    }

    #[test]
    fn attestation_above_a_multi_line_statement_binds() {
        // The flagged token sits on a continuation line of a method
        // chain; the attestation above the statement head must cover it.
        let src = "fn f() {\n    // LINT: allow(panic) receiver is owned by self, send cannot fail.\n    tx\n        .send(frame)\n        .expect(\"owned\");\n}\n";
        assert!(lint_source(&ctx("transport", "crates/transport/src/x.rs"), src).is_empty());
        // A completed statement in between severs the binding.
        let severed = "fn f() {\n    // LINT: allow(panic) stale reason, drifted.\n    other();\n    tx.send(frame).expect(\"owned\");\n}\n";
        let v = lint_source(&ctx("transport", "crates/transport/src/x.rs"), severed);
        assert_eq!(rules_hit(&v), ["panic-freedom"]);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.unwrap_or_default(); }\n";
        assert!(lint_source(&ctx("tensor", "crates/tensor/src/x.rs"), src).is_empty());
    }

    #[test]
    fn panic_rule_ignores_non_kernel_crates_and_test_files() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(lint_source(&ctx("nn", "crates/nn/src/x.rs"), src).is_empty());
        let mut c = ctx("tensor", "crates/tensor/tests/t.rs");
        c.is_test_file = true;
        assert!(lint_source(&c, src).is_empty());
    }

    #[test]
    fn clock_rule_flags_instant_now_but_not_the_import() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let v = lint_source(&ctx("federated", "crates/federated/src/x.rs"), src);
        assert_eq!(rules_hit(&v), ["wall-clock"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn clock_rule_exempts_metrics_and_attested_sites() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(lint_source(&ctx("metrics", "crates/metrics/src/x.rs"), src).is_empty());
        let attested =
            "fn f() {\n    // LINT: allow(clock) boot banner only, not in any round path.\n    let t = Instant::now();\n}\n";
        assert!(lint_source(&ctx("federated", "crates/federated/src/x.rs"), attested).is_empty());
    }

    #[test]
    fn net_crate_requires_the_wall_clock_marker() {
        // The generic attestation does not cover the net crate ...
        let generic =
            "fn f() {\n    // LINT: allow(clock) phase deadline over a real socket.\n    let t = Instant::now();\n}\n";
        let v = lint_source(&ctx("net", "crates/net/src/x.rs"), generic);
        assert_eq!(rules_hit(&v), ["wall-clock"]);
        // ... only its dedicated marker does.
        let dedicated =
            "fn f() {\n    // LINT: allow(wall-clock) phase deadline over a real socket.\n    let t = Instant::now();\n}\n";
        assert!(lint_source(&ctx("net", "crates/net/src/x.rs"), dedicated).is_empty());
        // Bare reads stay flagged.
        let bare = "fn f() { let t = Instant::now(); }\n";
        let v = lint_source(&ctx("net", "crates/net/src/x.rs"), bare);
        assert_eq!(rules_hit(&v), ["wall-clock"]);
    }

    #[test]
    fn map_rule_fires_only_in_serialization_crates() {
        let src = "use std::collections::HashMap;\n";
        let v = lint_source(&ctx("transport", "crates/transport/src/x.rs"), src);
        assert_eq!(rules_hit(&v), ["map-iteration"]);
        assert!(lint_source(&ctx("graph", "crates/graph/src/x.rs"), src).is_empty());
        let attested = "// LINT: sorted keys are emitted via a sorted Vec below.\nuse std::collections::HashMap;\n";
        assert!(lint_source(&ctx("transport", "crates/transport/src/x.rs"), attested).is_empty());
    }

    #[test]
    fn forbid_rule_checks_only_the_designated_lib_rs() {
        let empty = "pub fn f() {}\n";
        let v = lint_source(&ctx("graph", "crates/graph/src/lib.rs"), empty);
        assert_eq!(rules_hit(&v), ["forbid-unsafe"]);
        // Same content, not a lib.rs: no violation.
        assert!(lint_source(&ctx("graph", "crates/graph/src/graph.rs"), empty).is_empty());
        // tensor legitimately uses unsafe: not on the forbid list.
        assert!(lint_source(&ctx("tensor", "crates/tensor/src/lib.rs"), empty).is_empty());
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source(&ctx("graph", "crates/graph/src/lib.rs"), ok).is_empty());
    }

    #[test]
    fn violations_in_cfg_test_regions_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); let m: HashMap<u32, u32> = HashMap::new(); let t = Instant::now(); }
}
"#;
        assert!(lint_source(&ctx("transport", "crates/transport/src/x.rs"), src).is_empty());
    }

    #[test]
    fn code_like_text_in_strings_and_comments_is_inert() {
        let src = r##"
fn f() {
    let a = "x.unwrap() and panic! and unsafe and HashMap";
    let b = r#"Instant::now() SystemTime"#;
    // mentions of .unwrap() and unsafe in a comment
    /* HashMap inside /* nested */ block comment */
}
"##;
        assert!(lint_source(&ctx("transport", "crates/transport/src/x.rs"), src).is_empty());
    }

    #[test]
    fn unsafe_site_extraction_captures_justifications() {
        let src = r#"
// SAFETY: len was checked three lines up.
unsafe { do_it() }
unsafe fn naked() {}
"#;
        let toks = tokenize(src);
        let lines = Lines::new(&toks);
        let sites = unsafe_sites(&toks, &lines);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kind, "unsafe block");
        assert_eq!(
            sites[0].safety.as_deref(),
            Some("len was checked three lines up.")
        );
        assert_eq!(sites[1].kind, "unsafe fn");
        assert!(sites[1].safety.is_none());
    }
}
