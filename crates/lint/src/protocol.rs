//! Protocol exhaustiveness rule (`msg-wildcard`).
//!
//! Every `match` over the wire protocol — a scrutinee ending in
//! `.payload` / `msg_type`, or arms that pattern-match `Payload::…` —
//! inside `core`/`net`/`transport` must name all message variants.
//! A wildcard/catch-all arm silently drops frame types added later (the
//! roadmap's codec payloads), so it needs
//! `// LINT: allow(msg-wildcard) <reason>`; a match with no wildcard must
//! name every variant or the lint lists the missing ones.
//!
//! The variant list below is the rule's source of truth and must track
//! `fedomd_transport::Payload`; the transport crate's `payload_roundtrip`
//! tests fail on any variant added without an encode/decode arm, and the
//! same PR updates this list.

use crate::parser::ParsedFile;
use crate::rules::{FileCtx, Lines, Violation, PROTOCOL_CRATES};

/// The message variants of `fedomd_transport::Payload`, in msg_type order.
pub const VARIANTS: &[&str] = &[
    "WeightUpdate",
    "StatsRound1",
    "StatsRound2",
    "GlobalModel",
    "GlobalStats",
    "Control",
    "Metrics",
];

pub fn apply(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    in_test: &[bool],
    lines: &Lines,
    out: &mut Vec<Violation>,
) {
    if ctx.is_test_file || !PROTOCOL_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for c in 0..parsed.code.len() {
        if in_test.get(parsed.token_index(c)).copied().unwrap_or(false)
            || !parsed.is_ident(c)
            || parsed.text(c) != "match"
        {
            continue;
        }
        check_match(ctx, parsed, lines, c, out);
    }
}

fn check_match(
    ctx: &FileCtx,
    parsed: &ParsedFile<'_>,
    lines: &Lines,
    match_idx: usize,
    out: &mut Vec<Violation>,
) {
    // Scrutinee runs from `match` to the body's `{` at depth 0.
    let mut open = match_idx + 1;
    let mut depth = 0i32;
    loop {
        if open >= parsed.code.len() {
            return;
        }
        match parsed.text(open) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        open += 1;
    }
    let close = match block_close(parsed, open) {
        Some(k) => k,
        None => return,
    };
    let arms = split_arms(parsed, open, close);

    // Protocol match? (a) the scrutinee is a simple field/path chain
    // ending in `payload`/`msg_type` — calls like `collect(…)` are not
    // protocol scrutinees even if a closure inside mentions Payload — or
    // (b) some arm pattern names `Payload`.
    let scrutinee: Vec<&str> = (match_idx + 1..open).map(|i| parsed.text(i)).collect();
    let simple_chain = !scrutinee.is_empty()
        && scrutinee
            .iter()
            .all(|t| matches!(*t, "." | ":" | "&" | "*") || is_word(t));
    let chain_hits = simple_chain
        && scrutinee
            .last()
            .is_some_and(|t| *t == "payload" || *t == "msg_type");
    let arm_hits = arms
        .iter()
        .any(|(_, pat)| pat.iter().any(|i| parsed.text(*i) == "Payload"));
    if !chain_hits && !arm_hits {
        return;
    }

    let mut named: Vec<&str> = Vec::new();
    let mut saw_wildcard = false;
    for (arm_line, pat) in &arms {
        let toks: Vec<&str> = pat.iter().map(|i| parsed.text(*i)).collect();
        if is_wildcard(&toks) {
            saw_wildcard = true;
            if !lines.attested_with_reason(*arm_line, "LINT: allow(msg-wildcard)") {
                out.push(Violation {
                    file: ctx.rel_path.clone(),
                    line: *arm_line,
                    rule: "msg-wildcard",
                    message: "wildcard arm in a protocol match silently \
                              swallows message variants added later — name \
                              the variants, or attest with \
                              `// LINT: allow(msg-wildcard) <reason>`"
                        .into(),
                });
            }
            continue;
        }
        for t in &toks {
            if VARIANTS.contains(t) && !named.contains(t) {
                named.push(t);
            }
        }
    }
    if !saw_wildcard && named.len() < VARIANTS.len() {
        let missing: Vec<&str> = VARIANTS
            .iter()
            .copied()
            .filter(|v| !named.contains(v))
            .collect();
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line: parsed.line(match_idx),
            rule: "msg-wildcard",
            message: format!(
                "protocol match does not cover all message variants \
                 (missing: {}) — name every variant so new frame types \
                 fail loudly here",
                missing.join(", ")
            ),
        });
    }
}

/// Code index of the `}` closing the block opened at `open`.
fn block_close(parsed: &ParsedFile<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..parsed.code.len() {
        match parsed.text(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a match body into `(arm_line, pattern-token indices)` pairs.
/// Patterns run to the first depth-0 `=>`; bodies are skipped as one
/// balanced block or up to the next depth-0 comma.
fn split_arms(parsed: &ParsedFile<'_>, open: usize, close: usize) -> Vec<(usize, Vec<usize>)> {
    let mut arms = Vec::new();
    let mut c = open + 1;
    while c < close {
        let arm_line = parsed.line(c);
        let mut pat = Vec::new();
        let mut depth = 0i32;
        while c < close {
            if depth == 0 && parsed.text(c) == "=" && parsed.text(c + 1) == ">" {
                break;
            }
            match parsed.text(c) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            pat.push(c);
            c += 1;
        }
        if c >= close {
            break;
        }
        c += 2; // past `=>`
        if parsed.text(c) == "{" {
            c = block_close(parsed, c).map(|k| k + 1).unwrap_or(close);
            if c < close && parsed.text(c) == "," {
                c += 1;
            }
        } else {
            let mut d = 0i32;
            while c < close {
                match parsed.text(c) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "," if d == 0 => {
                        c += 1;
                        break;
                    }
                    _ => {}
                }
                c += 1;
            }
        }
        if !pat.is_empty() {
            arms.push((arm_line, pat));
        }
    }
    arms
}

fn is_word(t: &str) -> bool {
    t.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_') && !t.is_empty()
}

/// A catch-all pattern: `_`, `_name`, or a bare binding ident. Anything
/// structured (`Payload::X { .. }`, literals, guards) is not, and neither
/// is a bare variant-name ident (const-style `msg_type` arms).
fn is_wildcard(toks: &[&str]) -> bool {
    let toks: Vec<&str> = toks
        .iter()
        .copied()
        .filter(|t| !matches!(*t, "&" | "ref" | "mut"))
        .collect();
    match toks.as_slice() {
        [one] => {
            one.starts_with('_')
                || (is_word(one)
                    && !one.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !VARIANTS.contains(one))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_source;

    fn ctx(crate_name: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/x.rs"),
            is_test_file: false,
        }
    }

    const FULL: &str = "fn f(p: Payload) -> u8 {\n    match p {\n        Payload::WeightUpdate { .. } => 1,\n        Payload::StatsRound1 { .. } => 2,\n        Payload::StatsRound2 { .. } => 3,\n        Payload::GlobalModel { .. } => 4,\n        Payload::GlobalStats { .. } => 5,\n        Payload::Control(_) => 6,\n        Payload::Metrics { .. } => 7,\n    }\n}\n";

    #[test]
    fn naming_every_variant_is_clean() {
        assert!(lint_source(&ctx("transport"), FULL).is_empty());
    }

    #[test]
    fn unattested_wildcard_arm_is_flagged() {
        let src = "fn f(env: &Envelope) {\n    match env.payload {\n        Payload::WeightUpdate { .. } => use_it(),\n        other => drop_it(other),\n    }\n}\n";
        let v = lint_source(&ctx("net"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "msg-wildcard");
        assert!(v[0].message.contains("wildcard"));
    }

    #[test]
    fn attested_wildcard_arm_passes() {
        let src = "fn f(env: &Envelope) {\n    match env.payload {\n        Payload::WeightUpdate { .. } => use_it(),\n        // LINT: allow(msg-wildcard) clients only ever see weight updates here.\n        other => reject(other),\n    }\n}\n";
        assert!(lint_source(&ctx("net"), src).is_empty());
    }

    #[test]
    fn msg_type_scrutinee_missing_variants_is_flagged() {
        let src = "fn f(msg_type: u8) {\n    match msg_type {\n        WeightUpdate => a(),\n        Control => b(),\n    }\n}\n";
        let v = lint_source(&ctx("transport"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "msg-wildcard");
        assert!(v[0].message.contains("StatsRound1"), "{}", v[0].message);
        assert!(v[0].message.contains("Metrics"), "{}", v[0].message);
    }

    #[test]
    fn call_scrutinees_are_not_protocol_matches() {
        // `match collect(…)` with a closure mentioning Payload inside the
        // call is an Option match, not a protocol match (deploy.rs shape).
        let src = "fn f() {\n    match collect(&mut chan, |p| matches!(p, Payload::Control(_))) {\n        Some(env) => use_it(env),\n        None => idle(),\n    }\n}\n";
        assert!(lint_source(&ctx("core"), src).is_empty());
    }

    #[test]
    fn non_protocol_matches_and_other_crates_are_ignored() {
        let src = "fn f(x: Option<u8>) { match x { Some(v) => use_it(v), None => idle() } }\n";
        assert!(lint_source(&ctx("transport"), src).is_empty());
        let wild = "fn f(env: &Envelope) { match env.payload { other => drop_it(other) } }\n";
        assert!(lint_source(&ctx("federated"), wild).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(env: &Envelope) { match env.payload { other => panic!() } }\n}\n";
        assert!(lint_source(&ctx("transport"), src).is_empty());
    }

    #[test]
    fn wildcard_classifier_sees_through_ref_and_mut() {
        assert!(is_wildcard(&["_"]));
        assert!(is_wildcard(&["other"]));
        assert!(is_wildcard(&["ref", "mut", "other"]));
        assert!(!is_wildcard(&[
            "Payload", ":", ":", "Control", "(", "_", ")"
        ]));
        assert!(!is_wildcard(&["0"]));
    }
}
