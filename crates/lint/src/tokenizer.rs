//! A comment- and string-aware Rust tokenizer.
//!
//! The rule engine needs to tell *code* apart from *text that merely looks
//! like code*: the word `unsafe` inside a string literal, a `HashMap`
//! mentioned in a doc comment, or a `panic!` in a nested block comment must
//! never trip a rule. This scanner produces a flat token stream with line
//! numbers, handling every literal form that can hide code-like text:
//! line and (nested) block comments, plain strings with escapes, raw
//! strings with arbitrary `#` fences, byte and raw-byte strings, char
//! literals, and the char-vs-lifetime ambiguity.
//!
//! It is deliberately **not** a full lexer: numbers are lumped into one
//! kind, punctuation is single-char, and keywords are plain identifiers.
//! Rules match short token sequences (`.` `unwrap` `(`), so that is all
//! the structure they need — and a smaller grammar means fewer ways for
//! the gatekeeper itself to be wrong.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#idents`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// Numeric literal (integers, floats, any radix, with suffixes).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`) or loop label.
    Lifetime,
    /// `// …` comment, doc (`///`, `//!`) included.
    LineComment,
    /// `/* … */` comment, nesting included.
    BlockComment,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// The exact source text, fences and quotes included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`, never failing: unterminated literals simply extend to
/// the end of input (the compiler will reject such a file anyway; the
/// linter's job is just to not misclassify what follows valid code).
pub fn tokenize(src: &str) -> Vec<Token> {
    Scanner::new(src).run()
}

struct Scanner<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    src: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.src;
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let start_line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    out.push(self.line_comment(start_line));
                }
                '/' if self.peek(1) == Some('*') => {
                    out.push(self.block_comment(start_line));
                }
                '"' => out.push(self.string(start_line, String::new())),
                '\'' => out.push(self.char_or_lifetime(start_line)),
                'r' | 'b' | 'c' if self.literal_prefix().is_some() => {
                    // One of r" r#" b" br" b' rb is not real; prefix run
                    // already validated which form starts here.
                    let tok = self.prefixed_literal(start_line);
                    out.push(tok);
                }
                c if c.is_alphabetic() || c == '_' => out.push(self.ident(start_line)),
                c if c.is_ascii_digit() => out.push(self.number(start_line)),
                _ => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line: start_line,
                    });
                }
            }
        }
        out
    }

    /// When the cursor sits on `r`/`b`/`c`, decides whether a prefixed
    /// literal starts here, returning the prefix length (chars before the
    /// quote or the first `#` fence).
    fn literal_prefix(&self) -> Option<usize> {
        let a = self.peek(0)?;
        let b = self.peek(1);
        match (a, b) {
            // r"…" | r#"…"# | r#ident (raw ident: NOT a literal)
            ('r', Some('"')) => Some(1),
            ('r', Some('#')) => {
                // Distinguish r#"…"# / r##"…"## from r#ident.
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                if self.peek(i) == Some('"') {
                    Some(1)
                } else {
                    None
                }
            }
            // b"…" | b'…' | br"…" | br#"…"#
            ('b', Some('"')) | ('b', Some('\'')) => Some(1),
            ('b', Some('r')) => match self.peek(2) {
                Some('"') => Some(2),
                Some('#') => {
                    let mut i = 2;
                    while self.peek(i) == Some('#') {
                        i += 1;
                    }
                    if self.peek(i) == Some('"') {
                        Some(2)
                    } else {
                        None
                    }
                }
                _ => None,
            },
            // c"…" (C strings, 2021+ editions accept the syntax in later
            // compilers; treat like a plain string so text inside is inert)
            ('c', Some('"')) => Some(1),
            _ => None,
        }
    }

    fn prefixed_literal(&mut self, start_line: usize) -> Token {
        let mut text = String::new();
        let prefix_len = self.literal_prefix().unwrap_or(1);
        let raw =
            self.peek(0) == Some('r') || (self.peek(0) == Some('b') && self.peek(1) == Some('r'));
        for _ in 0..prefix_len {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        match self.peek(0) {
            Some('\'') => {
                // b'…': a byte literal; reuse the char scanner.
                let tok = self.char_or_lifetime(start_line);
                text.push_str(&tok.text);
                Token {
                    kind: TokenKind::Char,
                    text,
                    line: start_line,
                }
            }
            Some('#') if raw => self.raw_string(start_line, text),
            Some('"') if raw => self.raw_string(start_line, text),
            _ => self.string(start_line, text),
        }
    }

    fn line_comment(&mut self, start_line: usize) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        Token {
            kind: TokenKind::LineComment,
            text,
            line: start_line,
        }
    }

    fn block_comment(&mut self, start_line: usize) -> Token {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        Token {
            kind: TokenKind::BlockComment,
            text,
            line: start_line,
        }
    }

    /// Plain (escaped) string body starting at the opening quote.
    fn string(&mut self, start_line: usize, mut text: String) -> Token {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    // The escaped char can never close the literal.
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        }
    }

    /// Raw string: `#…#"` fence already positioned at the first `#` or `"`.
    fn raw_string(&mut self, start_line: usize, mut text: String) -> Token {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                // Need exactly `hashes` fence characters to close.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        }
    }

    /// `'a'`, `'\n'`, `'\u{1F600}'` — or a lifetime `'ident`.
    fn char_or_lifetime(&mut self, start_line: usize) -> Token {
        let mut text = String::from("'");
        self.bump(); // opening quote
        match (self.peek(0), self.peek(1)) {
            // 'x' or '\…' is a char literal; 'x… (no closing quote next)
            // is a lifetime. ''' (a quote char) only appears escaped.
            (Some('\\'), _) => {
                text.push('\\');
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                    if e == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                }
                Token {
                    kind: TokenKind::Char,
                    text,
                    line: start_line,
                }
            }
            (Some(c), Some('\'')) if c != '\'' => {
                text.push(c);
                text.push('\'');
                self.bump();
                self.bump();
                Token {
                    kind: TokenKind::Char,
                    text,
                    line: start_line,
                }
            }
            _ => {
                // Lifetime or loop label: consume the identifier part.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line: start_line,
                }
            }
        }
    }

    fn ident(&mut self, start_line: usize) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token {
            kind: TokenKind::Ident,
            text,
            line: start_line,
        }
    }

    fn number(&mut self, start_line: usize) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // Part of the number only when a digit follows; `1..5`
                // and `x.0.unwrap()` must leave the dots as punctuation.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push('.');
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        Token {
            kind: TokenKind::Num,
            text,
            line: start_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_in_string_literals_is_inert() {
        let src = r#"let s = "unsafe { HashMap::new().unwrap() } // not a comment";"#;
        assert_eq!(idents(src), ["let", "s"]);
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        // Nothing after the string was swallowed: the trailing `;` is real.
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some(";"));
    }

    #[test]
    fn escaped_quote_does_not_close_a_string() {
        let src = r#"let s = "she said \"panic!\""; let x = 1;"#;
        assert_eq!(idents(src), ["let", "s", "let", "x"]);
    }

    #[test]
    fn raw_strings_with_fences_are_one_token() {
        let src = r###"let s = r#"quote " and // slashes and unsafe"#; f();"###;
        assert_eq!(idents(src), ["let", "s", "f"]);
        // A longer fence swallows a shorter one inside.
        let src2 = "let s = r##\"inner \"# still open\"##; g();";
        assert_eq!(idents(src2), ["let", "s", "g"]);
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let src = "let r#type = 1; let r = r#fn; r#\"raw\"#;";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"bytes .unwrap()"; let b2 = br#"raw bytes panic!"#; h();"###;
        assert_eq!(idents(src), ["let", "a", "let", "b2", "h"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner unsafe */ still comment .unwrap() */ real();";
        assert_eq!(idents(src), ["real"]);
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner unsafe"));
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let src = "// looks like .unwrap() and unsafe\nactual();";
        assert_eq!(idents(src), ["actual"]);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "let c: char = '\"'; let q = '\\''; fn f<'a>(x: &'a str) {} 'label: loop { break 'label; }";
        let ids = idents(src);
        assert!(ids.contains(&"char".to_string()));
        // The lifetimes must come out as lifetimes, not swallow code.
        let lifes: Vec<_> = tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifes, ["'a", "'a", "'label", "'label"]);
    }

    #[test]
    fn a_quote_char_literal_does_not_open_a_string() {
        // '"' is a char literal; if misread as a string opener, the
        // following code would vanish into a phantom literal.
        let src = "let c = '\"'; danger();";
        assert_eq!(idents(src), ["let", "c", "danger"]);
    }

    #[test]
    fn numbers_keep_dots_but_release_method_calls() {
        let src = "let x = 1.5e3 + t.0.unwrap();";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "1.5e3"));
        // `.unwrap` after a tuple index is still a detectable sequence.
        let flat: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        let pos = flat
            .iter()
            .position(|t| *t == "unwrap")
            .expect("unwrap token");
        assert_eq!(flat[pos - 1], ".");
        assert_eq!(flat[pos + 1], "(");
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "a\n\nb // c\n/* d\nd2 */\ne";
        let toks = tokenize(src);
        let find = |txt: &str| toks.iter().find(|t| t.text.contains(txt)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("d2"), Some(4));
        assert_eq!(find("e"), Some(6));
    }
}
