//! A lightweight item-level parser over the token stream.
//!
//! The token-level rules of PR 5 see one token at a time; the concurrency
//! and protocol rules (DESIGN.md §17) need *structure*: which `fn` a token
//! sits in, how long a lock guard lives, which functions call which. This
//! module recovers exactly that much — `fn`/`impl`/`mod` items with
//! brace-matched bodies, `let`-binding ranges, guard scopes for
//! `.lock()`/`.read()`/`.write()` acquisitions, and a within-file call
//! edge list — without attempting a real Rust grammar. Everything is
//! expressed in *code-token indices*: positions into the comment-stripped
//! view of the token stream, so the structural passes never trip over
//! comment placement.
//!
//! Known, accepted approximations (documented in DESIGN.md §17): const
//! generic default blocks in signatures are not angle-bracket aware, and
//! `match` guards containing closures could confuse arm splitting. The
//! workspace contains neither; fixtures pin the supported shapes.

use crate::tokenizer::{Token, TokenKind};

/// Kinds of items the parser recognises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Mod,
}

/// One `fn` / `impl` / `mod` item, possibly nested in another.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`fn` name, `mod` name, the joined type idents of an
    /// `impl` header). Empty for unnamed forms.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Code-token index range of the `{ … }` body, inclusive of both
    /// braces. `None` for bodiless items (`mod x;`, trait method decls).
    pub body: Option<(usize, usize)>,
}

/// One `let` statement: its optional simple binding name and the
/// code-token index range `[let .. ;]` it spans.
#[derive(Clone, Debug)]
pub struct LetBinding {
    /// `Some(name)` only for plain `let [mut] name = …;` bindings —
    /// destructuring patterns yield `None`.
    pub name: Option<String>,
    /// Code-token index of the `let` keyword.
    pub start: usize,
    /// Code-token index of the terminating `;` (or the last token when
    /// the statement is truncated).
    pub end: usize,
}

/// A live lock-guard region derived from a `.lock()` / `.read()` /
/// `.write()` acquisition.
#[derive(Clone, Debug)]
pub struct GuardScope {
    /// The receiver chain naming the lock (`self.inner`, `registry`).
    pub name: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Code-token index of the method ident.
    pub acquire: usize,
    /// Code-token index at which the guard is no longer live (exclusive):
    /// the end of the statement for temporaries, the end of the enclosing
    /// block (or an early `drop(name)`) for `let`-bound guards.
    pub end: usize,
    /// Whether the guard was bound by a `let` (block scope).
    pub bound: bool,
}

/// One within-file call edge: `caller` (an enclosing fn's name) invokes
/// `callee` at `line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallEdge {
    pub caller: String,
    pub callee: String,
    pub line: usize,
}

/// A parsed file: the code-token view plus the recovered structure.
pub struct ParsedFile<'a> {
    /// The full token stream the indices refer back to.
    pub tokens: &'a [Token],
    /// Indices of non-comment tokens — the view all offsets use.
    pub code: Vec<usize>,
    /// All items in source order, nested items included.
    pub items: Vec<Item>,
    /// All `let` statements in source order.
    pub lets: Vec<LetBinding>,
}

/// Keywords that look like calls when followed by `(` but are not.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "fn", "impl", "mod", "use", "pub",
    "in", "as", "move", "ref", "mut", "else", "unsafe", "where", "break", "continue", "struct",
    "enum", "trait", "type", "const", "static", "dyn", "box", "async", "await", "crate", "super",
];

impl<'a> ParsedFile<'a> {
    /// Text of the code token at code index `c` (empty past the end).
    pub fn text(&self, c: usize) -> &str {
        self.code
            .get(c)
            .map(|&i| self.tokens[i].text.as_str())
            .unwrap_or("")
    }

    /// 1-based line of the code token at code index `c`.
    pub fn line(&self, c: usize) -> usize {
        self.code.get(c).map(|&i| self.tokens[i].line).unwrap_or(0)
    }

    /// Whether the code token at `c` is an identifier.
    pub fn is_ident(&self, c: usize) -> bool {
        self.code
            .get(c)
            .is_some_and(|&i| self.tokens[i].kind == TokenKind::Ident)
    }

    /// Original token-stream index of code index `c` (for test-region
    /// lookups), saturating past the end.
    pub fn token_index(&self, c: usize) -> usize {
        self.code.get(c).copied().unwrap_or(usize::MAX)
    }

    /// The innermost `fn` item whose body contains code index `c`.
    pub fn enclosing_fn(&self, c: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn)
            .filter(|it| it.body.is_some_and(|(s, e)| s < c && c < e))
            .min_by_key(|it| it.body.map(|(s, e)| e - s).unwrap_or(usize::MAX))
    }

    /// The innermost `let` statement whose range contains code index `c`.
    pub fn enclosing_let(&self, c: usize) -> Option<&LetBinding> {
        self.lets
            .iter()
            .filter(|l| l.start < c && c <= l.end)
            .min_by_key(|l| l.end - l.start)
    }

    /// Every within-file call edge. An ident followed by `(` counts as a
    /// call unless it is a keyword, a macro invocation (`name!(…)`), or a
    /// definition site (`fn name(`); method calls contribute their bare
    /// method name. Tokens outside any `fn` body yield no edge.
    pub fn call_edges(&self) -> Vec<CallEdge> {
        let mut out = Vec::new();
        for c in 0..self.code.len() {
            if !self.is_ident(c) || self.text(c + 1) != "(" {
                continue;
            }
            let name = self.text(c);
            if CALL_KEYWORDS.contains(&name) {
                continue;
            }
            let prev = if c > 0 { self.text(c - 1) } else { "" };
            if prev == "fn" || prev == "!" {
                continue; // definition header / inside a macro path
            }
            // `name!(…)` never reaches here (the `!` sits between), but
            // `name !(` with the ident before `!` must be skipped too.
            if self.text(c + 1) == "!" {
                continue;
            }
            let Some(f) = self.enclosing_fn(c) else {
                continue;
            };
            if f.name.is_empty() {
                continue;
            }
            out.push(CallEdge {
                caller: f.name.clone(),
                callee: name.to_string(),
                line: self.line(c),
            });
        }
        out
    }

    /// The receiver chain ending just before the `.` at code index
    /// `dot` — idents joined by `.`/`::`, e.g. `self.inner`. Empty when
    /// the receiver is not a plain chain (a call result, a literal).
    pub fn receiver_chain(&self, dot: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut c = dot; // index of the `.` before the method
        loop {
            if c == 0 {
                break;
            }
            let prev = c - 1;
            if self.is_ident(prev) {
                parts.push(self.text(prev).to_string());
                // Continue through `.` or `::` separators.
                if prev >= 1 && self.text(prev - 1) == "." {
                    parts.push(".".into());
                    c = prev - 1;
                    continue;
                }
                if prev >= 2 && self.text(prev - 1) == ":" && self.text(prev - 2) == ":" {
                    parts.push("::".into());
                    c = prev - 2;
                    continue;
                }
                break;
            }
            return String::new();
        }
        parts.reverse();
        parts.concat()
    }

    /// Scans forward from code index `from` for the next `;` at the same
    /// bracket depth, returning its index (or the last token's).
    fn statement_end(&self, from: usize) -> usize {
        let mut depth = 0i32;
        for c in from..self.code.len() {
            match self.text(c) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return c; // fell out of the enclosing block
                    }
                }
                ";" if depth == 0 => return c,
                _ => {}
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Scans forward from code index `from` for the `}` that closes the
    /// enclosing block, returning its index (or the last token's).
    fn block_end(&self, from: usize) -> usize {
        let mut depth = 0i32;
        for c in from..self.code.len() {
            match self.text(c) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return c;
                    }
                }
                _ => {}
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Every lock-guard region in the file. An acquisition is a
    /// `.lock()` / `.read()` / `.write()` call with empty parens (the
    /// `RwLock`/`Mutex` shapes; `io::Read::read(buf)` has arguments and
    /// never matches). Temporaries (the guard is immediately chained or
    /// passed) live to the end of their statement; `let`-bound guards
    /// live to the end of the enclosing block or an earlier
    /// `drop(name)`.
    pub fn guard_scopes(&self) -> Vec<GuardScope> {
        let mut out = Vec::new();
        for c in 0..self.code.len() {
            let m = self.text(c);
            if !matches!(m, "lock" | "read" | "write") || !self.is_ident(c) {
                continue;
            }
            if c == 0 || self.text(c - 1) != "." {
                continue;
            }
            if self.text(c + 1) != "(" || self.text(c + 2) != ")" {
                continue;
            }
            let name = self.receiver_chain(c - 1);
            if name.is_empty() {
                continue; // unnameable receiver: not a graph node
            }
            let after = c + 3; // first token past the `()`
            let chained = matches!(self.text(after), "." | "?");
            let binding = if chained { None } else { self.enclosing_let(c) };
            let (bound, end) = if let Some(b) = binding {
                let mut end = self.block_end(b.end + 1) + 1;
                // An explicit `drop(name)` releases the guard early.
                if let Some(bound_name) = b.name.as_deref() {
                    for d in b.end + 1..end {
                        if self.text(d) == "drop"
                            && self.text(d + 1) == "("
                            && self.text(d + 2) == bound_name
                            && self.text(d + 3) == ")"
                        {
                            end = d;
                            break;
                        }
                    }
                }
                (true, end)
            } else {
                (false, self.statement_end(c) + 1)
            };
            out.push(GuardScope {
                name,
                method: m.to_string(),
                line: self.line(c),
                acquire: c,
                end,
                bound,
            });
        }
        out
    }
}

/// Parses the item-level structure of one file's token stream.
pub fn parse(tokens: &[Token]) -> ParsedFile<'_> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text = |c: usize| -> &str { code.get(c).map(|&i| tokens[i].text.as_str()).unwrap_or("") };
    let is_ident = |c: usize| -> bool {
        code.get(c)
            .is_some_and(|&i| tokens[i].kind == TokenKind::Ident)
    };
    let line = |c: usize| -> usize { code.get(c).map(|&i| tokens[i].line).unwrap_or(0) };

    // Finds the body `{ … }` starting at the first brace at paren/bracket
    // depth 0 after `from`; stops at a depth-0 `;` (bodiless item).
    let find_body = |from: usize| -> Option<(usize, usize)> {
        let mut depth = 0i32;
        let mut c = from;
        while c < code.len() {
            match text(c) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => return None,
                "{" if depth <= 0 => {
                    // Brace-match to the body's closing `}`.
                    let mut b = 0i32;
                    let mut k = c;
                    while k < code.len() {
                        match text(k) {
                            "(" | "[" | "{" => b += 1,
                            ")" | "]" | "}" => {
                                b -= 1;
                                if b == 0 {
                                    return Some((c, k));
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return Some((c, code.len().saturating_sub(1)));
                }
                _ => {}
            }
            c += 1;
        }
        None
    };

    let mut items = Vec::new();
    let mut lets = Vec::new();
    for c in 0..code.len() {
        if !is_ident(c) {
            continue;
        }
        match text(c) {
            "fn" => {
                // `fn(u32) -> u32` type position has no name: skip.
                if !is_ident(c + 1) {
                    continue;
                }
                items.push(Item {
                    kind: ItemKind::Fn,
                    name: text(c + 1).to_string(),
                    line: line(c),
                    body: find_body(c + 2),
                });
            }
            "impl" => {
                // Name = the header's idents joined ("Channel for Tcp…").
                let mut names = Vec::new();
                let mut k = c + 1;
                let mut depth = 0i32;
                while k < code.len() {
                    match text(k) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" | ";" if depth <= 0 => break,
                        _ if is_ident(k) => names.push(text(k).to_string()),
                        _ => {}
                    }
                    k += 1;
                }
                items.push(Item {
                    kind: ItemKind::Impl,
                    name: names.join(" "),
                    line: line(c),
                    body: find_body(c + 1),
                });
            }
            "mod" => {
                if !is_ident(c + 1) {
                    continue;
                }
                items.push(Item {
                    kind: ItemKind::Mod,
                    name: text(c + 1).to_string(),
                    line: line(c),
                    body: find_body(c + 2),
                });
            }
            "let" => {
                // Simple binding name: `let [mut] name (=|:)`; anything
                // else (destructuring, `let Some(x)`) yields None.
                let mut n = c + 1;
                if text(n) == "mut" {
                    n += 1;
                }
                let name = if is_ident(n)
                    && text(n) != "_"
                    && matches!(text(n + 1), "=" | ":")
                    && text(n + 2) != "="
                // `let x == …` is not a binding
                {
                    Some(text(n).to_string())
                } else {
                    None
                };
                // Range to the terminating depth-0 `;`.
                let mut depth = 0i32;
                let mut end = code.len().saturating_sub(1);
                for k in c + 1..code.len() {
                    match text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            depth -= 1;
                            if depth < 0 {
                                end = k;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end = k;
                            break;
                        }
                        _ => {}
                    }
                }
                lets.push(LetBinding {
                    name,
                    start: c,
                    end,
                });
            }
            _ => {}
        }
    }
    ParsedFile {
        tokens,
        code,
        items,
        lets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parsed(src: &str) -> (Vec<Item>, Vec<LetBinding>) {
        let toks = tokenize(src);
        let p = parse(&toks);
        (p.items, p.lets)
    }

    #[test]
    fn parses_fn_items_with_names_and_bodies() {
        let toks = tokenize("fn a() { b(); }\nfn c(x: u32) -> u32 { x }\n");
        let p = parse(&toks);
        let fns: Vec<&Item> = p.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "c");
        assert!(fns.iter().all(|f| f.body.is_some()));
        let (s, e) = fns[0].body.unwrap();
        assert_eq!(p.text(s), "{");
        assert_eq!(p.text(e), "}");
    }

    #[test]
    fn bodiless_trait_fn_has_no_body() {
        let (items, _) = parsed("trait T { fn f(&self) -> u32; fn g(&self) { } }");
        let fns: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none(), "declaration has no body");
        assert!(fns[1].body.is_some(), "default method has one");
    }

    #[test]
    fn fn_type_tokens_are_not_items() {
        let (items, _) = parsed("fn real(cb: fn(u32) -> u32) { cb(1); }");
        let fns: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 1, "the `fn(u32)` type is not an item");
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn impl_and_mod_items_are_recorded() {
        let src = "mod inner { impl Channel for Tcp { fn up(&self) {} } } mod decl;";
        let (items, _) = parsed(src);
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            [ItemKind::Mod, ItemKind::Impl, ItemKind::Fn, ItemKind::Mod]
        );
        assert_eq!(items[1].name, "Channel for Tcp");
        assert!(items[3].body.is_none(), "`mod decl;` is bodiless");
    }

    #[test]
    fn enclosing_fn_finds_the_innermost() {
        let src = "fn outer() { fn inner() { target(); } }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let t = (0..p.code.len()).find(|&c| p.text(c) == "target").unwrap();
        assert_eq!(p.enclosing_fn(t).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn call_edges_link_caller_to_callee() {
        let src = "fn a() { helper(1); x.method(); }\nfn helper(v: u32) {}\n";
        let toks = tokenize(src);
        let p = parse(&toks);
        let edges = p.call_edges();
        assert!(edges
            .iter()
            .any(|e| e.caller == "a" && e.callee == "helper"));
        assert!(edges
            .iter()
            .any(|e| e.caller == "a" && e.callee == "method"));
    }

    #[test]
    fn macros_and_keywords_are_not_call_edges() {
        let src = "fn a() { println!(\"x\"); if (b) { } match (c) { _ => {} } }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let edges = p.call_edges();
        let callees: Vec<&str> = edges.iter().map(|e| e.callee.as_str()).collect();
        assert!(!callees.contains(&"println"));
        assert!(!callees.contains(&"if"));
        assert!(!callees.contains(&"match"));
    }

    #[test]
    fn let_binding_names_and_ranges() {
        let (_, lets) = parsed("fn f() { let mut x = g(); let (a, b) = h(); let _ = i(); }");
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0].name.as_deref(), Some("x"));
        assert_eq!(lets[1].name, None, "destructuring has no simple name");
        assert_eq!(lets[2].name, None, "`_` is not a binding");
    }

    #[test]
    fn let_bound_guard_scopes_to_block_end() {
        let src = "fn f() { let g = m.lock(); use_it(); } fn after() { free(); }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let guards = p.guard_scopes();
        assert_eq!(guards.len(), 1);
        let g = &guards[0];
        assert_eq!(g.name, "m");
        assert!(g.bound);
        // `use_it` is inside the scope, `free` is not.
        let use_it = (0..p.code.len()).find(|&c| p.text(c) == "use_it").unwrap();
        let free = (0..p.code.len()).find(|&c| p.text(c) == "free").unwrap();
        assert!(g.acquire < use_it && use_it < g.end);
        assert!(free >= g.end);
    }

    #[test]
    fn temporary_guard_scopes_to_statement_end() {
        let src = "fn f() { self.inner.lock().push(1); later(); }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let guards = p.guard_scopes();
        assert_eq!(guards.len(), 1);
        let g = &guards[0];
        assert_eq!(g.name, "self.inner");
        assert!(!g.bound, "chained guard is a temporary");
        let later = (0..p.code.len()).find(|&c| p.text(c) == "later").unwrap();
        assert!(later >= g.end, "statement scope ends before `later()`");
    }

    #[test]
    fn drop_ends_a_bound_guard_early() {
        let src = "fn f() { let g = m.lock(); a(); drop(g); b(); }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let g = &p.guard_scopes()[0];
        let b = (0..p.code.len()).find(|&c| p.text(c) == "b").unwrap();
        assert!(b >= g.end, "guard is dead after drop(g)");
    }

    #[test]
    fn io_style_reads_with_arguments_are_not_guards() {
        let src = "fn f() { stream.read(&mut buf); w.write(&bytes); }";
        let toks = tokenize(src);
        let p = parse(&toks);
        assert!(
            p.guard_scopes().is_empty(),
            "only empty-paren lock()/read()/write() acquire guards"
        );
    }

    #[test]
    fn receiver_chains_cross_module_paths() {
        let src = "fn f() { crate::state::REGISTRY.lock(); }";
        let toks = tokenize(src);
        let p = parse(&toks);
        let g = &p.guard_scopes()[0];
        assert_eq!(g.name, "crate::state::REGISTRY");
    }
}
