//! `fedomd_lint` — the workspace invariant gate.
//!
//! ```text
//! fedomd_lint [--root DIR]                 lint the workspace (exit 1 on violations)
//! fedomd_lint --inventory [--root DIR]     rewrite UNSAFE_INVENTORY.md
//! fedomd_lint --inventory --check          fail (exit 1) if the inventory drifted
//! ```
//!
//! Exit codes: 0 clean, 1 violations or inventory drift, 2 usage or I/O
//! error. Run from the workspace root (what `cargo run -p fedomd-lint`
//! does); `--root` points anywhere else.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fedomd_lint::{lint_workspace, render_inventory};

const INVENTORY_FILE: &str = "UNSAFE_INVENTORY.md";

struct Args {
    root: PathBuf,
    inventory: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut inventory = false;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return Err("--root needs a directory argument".into()),
            },
            "--inventory" => inventory = true,
            "--check" => check = true,
            "--help" | "-h" => {
                return Err("usage: fedomd_lint [--root DIR] [--inventory [--check]]".into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if check && !inventory {
        return Err("--check only applies to --inventory".into());
    }
    Ok(Args {
        root,
        inventory,
        check,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("fedomd_lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if !args.root.join("crates").is_dir() {
        eprintln!(
            "fedomd_lint: `{}` is not the workspace root (no crates/ directory); \
             run from the repo root or pass --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }

    if args.inventory {
        return run_inventory(&args);
    }
    run_lint(&args)
}

fn run_lint(args: &Args) -> ExitCode {
    let violations = match lint_workspace(&args.root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fedomd_lint: walking workspace failed: {e}");
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("fedomd_lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!(
        "fedomd_lint: {} violation{} (see DESIGN.md §13 for the rules and \
         the attestation grammar)",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn run_inventory(args: &Args) -> ExitCode {
    let rendered = match render_inventory(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedomd_lint: walking workspace failed: {e}");
            return ExitCode::from(2);
        }
    };
    let path = args.root.join(INVENTORY_FILE);
    if args.check {
        let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
        if on_disk == rendered {
            println!("fedomd_lint: {INVENTORY_FILE} is up to date");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "fedomd_lint: {INVENTORY_FILE} drifted from the workspace's unsafe \
             sites — regenerate with `cargo run -p fedomd-lint -- --inventory` \
             and commit the result"
        );
        return ExitCode::FAILURE;
    }
    match std::fs::write(&path, &rendered) {
        Ok(()) => {
            println!("fedomd_lint: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedomd_lint: writing {} failed: {e}", path.display());
            ExitCode::from(2)
        }
    }
}
