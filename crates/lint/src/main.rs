//! `fedomd_lint` — the workspace invariant gate.
//!
//! ```text
//! fedomd_lint [--root DIR] [--check]       lint the workspace (exit 1 on violations)
//! fedomd_lint --format json                machine-readable diagnostics for CI
//! fedomd_lint --inventory [--root DIR]     rewrite UNSAFE_INVENTORY.md
//! fedomd_lint --inventory --check          fail (exit 1) if the inventory drifted
//! ```
//!
//! `--check` is accepted in lint mode for CI-script symmetry with the
//! inventory gate: linting never writes, so it only documents intent.
//! Exit codes: 0 clean, 1 violations or inventory drift, 2 usage or I/O
//! error. Run from the workspace root (what `cargo run -p fedomd-lint`
//! does); `--root` points anywhere else.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fedomd_lint::{lint_workspace, render_inventory, report};

const INVENTORY_FILE: &str = "UNSAFE_INVENTORY.md";

enum Format {
    Human,
    Json,
}

struct Args {
    root: PathBuf,
    inventory: bool,
    check: bool,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut inventory = false;
    let mut check = false;
    let mut format = Format::Human;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return Err("--root needs a directory argument".into()),
            },
            "--inventory" => inventory = true,
            "--check" => check = true,
            "--format" => match it.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}` (human|json)")),
                None => return Err("--format needs an argument (human|json)".into()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: fedomd_lint [--root DIR] [--check] [--format human|json] \
                     [--inventory [--check]]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if inventory && matches!(format, Format::Json) {
        return Err("--format json only applies to lint mode".into());
    }
    Ok(Args {
        root,
        inventory,
        check,
        format,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("fedomd_lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if !args.root.join("crates").is_dir() {
        eprintln!(
            "fedomd_lint: `{}` is not the workspace root (no crates/ directory); \
             run from the repo root or pass --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }

    if args.inventory {
        return run_inventory(&args);
    }
    run_lint(&args)
}

fn run_lint(args: &Args) -> ExitCode {
    let violations = match lint_workspace(&args.root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fedomd_lint: walking workspace failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Format::Json = args.format {
        print!("{}", report::render_json(&violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if violations.is_empty() {
        println!("fedomd_lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!(
        "fedomd_lint: {} violation{} (see DESIGN.md §13 and §17 for the \
         rules and the attestation grammar)",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn run_inventory(args: &Args) -> ExitCode {
    let rendered = match render_inventory(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedomd_lint: walking workspace failed: {e}");
            return ExitCode::from(2);
        }
    };
    let path = args.root.join(INVENTORY_FILE);
    if args.check {
        let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
        if on_disk == rendered {
            println!("fedomd_lint: {INVENTORY_FILE} is up to date");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "fedomd_lint: {INVENTORY_FILE} drifted from the workspace's unsafe \
             sites — regenerate with `cargo run -p fedomd-lint -- --inventory` \
             and commit the result"
        );
        return ExitCode::FAILURE;
    }
    match std::fs::write(&path, &rendered) {
        Ok(()) => {
            println!("fedomd_lint: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedomd_lint: writing {} failed: {e}", path.display());
            ExitCode::from(2)
        }
    }
}
