//! `UNSAFE_INVENTORY.md` generation and drift checking.
//!
//! The inventory is the audited record of every `unsafe` site in the
//! workspace with its `SAFETY:` justification. It is a generated
//! artefact: `fedomd_lint --inventory` rewrites it, and CI runs
//! `fedomd_lint --inventory --check` so a new unsafe site (or a moved
//! one) cannot land without the regenerated, re-reviewed inventory in the
//! same commit.

use crate::rules::{unsafe_sites, Lines};
use crate::tokenizer::tokenize;
use crate::walk::SourceFile;

/// Renders the inventory document for the walked workspace.
pub fn render(files: &[SourceFile]) -> String {
    let mut sections: Vec<(String, Vec<String>)> = Vec::new();
    let mut total = 0usize;
    for f in files {
        let tokens = tokenize(&f.src);
        let lines = Lines::new(&tokens);
        let sites = unsafe_sites(&tokens, &lines);
        if sites.is_empty() {
            continue;
        }
        let mut rows = Vec::new();
        for s in &sites {
            let just = s
                .safety
                .as_deref()
                .unwrap_or("**MISSING — fails `unsafe-safety`**")
                .replace('|', "\\|");
            rows.push(format!("| {} | `{}` | {} |", s.line, s.kind, just));
        }
        total += sites.len();
        sections.push((f.ctx.rel_path.clone(), rows));
    }

    let mut out = String::new();
    out.push_str("# Unsafe inventory\n\n");
    out.push_str(
        "Every `unsafe` site in the workspace with its audited `SAFETY:`\n\
         justification. **Generated** by `cargo run -p fedomd-lint -- --inventory`\n\
         — edit the `SAFETY:` comments in the source, then regenerate; CI\n\
         gates drift with `--inventory --check`.\n\n",
    );
    out.push_str(&format!(
        "{} unsafe site{} across {} file{}.\n",
        total,
        if total == 1 { "" } else { "s" },
        sections.len(),
        if sections.len() == 1 { "" } else { "s" },
    ));
    for (path, rows) in &sections {
        out.push_str(&format!("\n## `{path}`\n\n"));
        out.push_str("| Line | Kind | SAFETY justification |\n");
        out.push_str("|---|---|---|\n");
        for r in rows {
            out.push_str(r);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileCtx;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            ctx: FileCtx {
                crate_name: "tensor".into(),
                rel_path: path.into(),
                is_test_file: false,
            },
            src: src.into(),
        }
    }

    #[test]
    fn renders_sites_with_and_without_justifications() {
        let files = vec![
            file("crates/tensor/src/clean.rs", "pub fn f() {}\n"),
            file(
                "crates/tensor/src/k.rs",
                "// SAFETY: bounds checked above.\nunsafe { go() }\nunsafe fn raw() {}\n",
            ),
        ];
        let doc = render(&files);
        assert!(doc.contains("2 unsafe sites across 1 file"));
        assert!(doc.contains("## `crates/tensor/src/k.rs`"));
        assert!(doc.contains("| 2 | `unsafe block` | bounds checked above. |"));
        assert!(doc.contains("MISSING"));
        assert!(
            !doc.contains("clean.rs"),
            "files without unsafe are omitted"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let files = vec![file(
            "crates/tensor/src/k.rs",
            "// SAFETY: x.\nunsafe { a() }\n",
        )];
        assert_eq!(render(&files), render(&files));
    }
}
