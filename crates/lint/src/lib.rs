//! `fedomd-lint`: the workspace invariant checker.
//!
//! The workspace's correctness story rests on invariants no compiler
//! checks: bit-identical determinism of serialized artefacts (golden
//! kill-and-resume checkpoints, wire-frame round-trips), audited `unsafe`
//! in the hand-rolled kernels, and panic-freedom of library code that
//! production round loops call. This crate enforces them mechanically,
//! so a PR cannot quietly break them with an unordered `HashMap`
//! iteration in a serialization path, an unaudited `unsafe` block, or a
//! wall-clock read inside deterministic training code.
//!
//! Pieces:
//!
//! * [`tokenizer`] — a comment- and string-aware Rust scanner, so code
//!   that merely *mentions* `unsafe` or `.unwrap()` in strings or
//!   comments never trips a rule.
//! * [`regions`] — `#[cfg(test)]` / `#[test]` region detection; rules
//!   about library code skip test regions.
//! * [`rules`] — the rule engine: unsafe hygiene, `#![forbid(unsafe_code)]`
//!   coverage, serialization-crate map bans, wall-clock confinement, and
//!   panic-freedom, with the `// LINT: …` attestation grammar.
//! * [`parser`] — a lightweight item-level pass over the token stream
//!   (fn/impl/mod items, let bindings, lock-guard scopes, call edges),
//!   the substrate for the concurrency and protocol rules.
//! * [`concurrency`] — lock discipline (workspace-wide acquisition-order
//!   graph), bounded-channel hygiene, and detached-thread detection.
//! * [`protocol`] — `Payload`/`msg_type` match exhaustiveness, so new
//!   frame types can't be silently dropped by wildcard arms.
//! * [`inventory`] — `UNSAFE_INVENTORY.md` generation + drift check.
//! * [`walk`] — workspace file discovery (skips `vendor/` and fixtures).
//!
//! The `fedomd_lint` binary wires these together; `scripts/tier1.sh` and
//! CI run it as a hard gate. Zero dependencies by design: the gatekeeper
//! must never be broken by the crates it gates.

#![forbid(unsafe_code)]

pub mod concurrency;
pub mod inventory;
pub mod parser;
pub mod protocol;
pub mod regions;
pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod walk;

pub use rules::{lint_source, FileCtx, Violation};

use std::path::Path;

/// Lints every workspace source under `root`, returning all violations
/// sorted by file and line. Lock-order edges from every file are merged
/// into one acquisition-order graph before cycle detection, so a cycle
/// split across `net`/`transport`/`federated` is still caught.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let files = walk::collect_workspace(root)?;
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for f in &files {
        let a = rules::analyze_source(&f.ctx, &f.src);
        out.extend(a.violations);
        edges.extend(a.lock_edges);
    }
    out.extend(concurrency::lock_cycle_violations(&edges));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Renders the current `UNSAFE_INVENTORY.md` content for `root`.
pub fn render_inventory(root: &Path) -> std::io::Result<String> {
    Ok(inventory::render(&walk::collect_workspace(root)?))
}
