//! Workspace file discovery.
//!
//! Walks every workspace crate under `crates/` plus the root
//! `fedomd-suite` package, collecting `.rs` sources with the crate name
//! and test-ness the rules key on. `vendor/` (offline dependency
//! stand-ins), `target/`, and fixture directories (intentionally-bad lint
//! test inputs) are never walked.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileCtx;

/// One discovered source file with its rule context.
pub struct SourceFile {
    /// Where the file sits, as the rules see it.
    pub ctx: FileCtx,
    /// File contents.
    pub src: String,
}

/// Directories whose contents are test code at the path level.
const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// File stems that are `#[cfg(test)]`-included modules by workspace
/// convention (`#[cfg(test)] mod proptests;` in the crate's `lib.rs`).
const TEST_STEMS: &[&str] = &["proptests", "tests"];

/// Collects every lintable source file under `root`, sorted by path so a
/// run's output (and the generated inventory) is deterministic.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();

    // Member crates.
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_package(root, &dir, &name, &mut out)?;
    }

    // The root `fedomd-suite` package (integration tests + examples).
    collect_package(root, root, "suite", &mut out)?;

    out.sort_by(|a, b| a.ctx.rel_path.cmp(&b.ctx.rel_path));
    Ok(out)
}

fn collect_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for sub in ["src", "tests", "benches", "examples"] {
        let dir = pkg.join(sub);
        if dir.is_dir() {
            walk_dir(root, &dir, crate_name, out)?;
        }
    }
    Ok(())
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" {
                continue; // intentionally-bad lint test inputs
            }
            walk_dir(root, &path, crate_name, out)?;
        } else if name.ends_with(".rs") {
            let rel_path = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let stem = name.trim_end_matches(".rs");
            let is_test_file = rel_path.split('/').any(|seg| TEST_DIRS.contains(&seg))
                || TEST_STEMS.contains(&stem);
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile {
                ctx: FileCtx {
                    crate_name: crate_name.to_string(),
                    rel_path,
                    is_test_file,
                },
                src,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint/ -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    #[test]
    fn walks_the_real_workspace() {
        let files = collect_workspace(&workspace_root()).expect("walk");
        let paths: Vec<&str> = files.iter().map(|f| f.ctx.rel_path.as_str()).collect();
        assert!(paths.contains(&"crates/tensor/src/gemm.rs"));
        assert!(paths.contains(&"crates/lint/src/walk.rs"));
        // Root package rides along under the `suite` crate name.
        assert!(files
            .iter()
            .any(|f| f.ctx.crate_name == "suite" && f.ctx.rel_path == "src/lib.rs"));
        // Exclusions hold.
        assert!(paths.iter().all(|p| !p.starts_with("vendor/")));
        assert!(paths.iter().all(|p| !p.contains("/fixtures/")));
        // Sorted, so runs are deterministic.
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn test_paths_are_classified() {
        let files = collect_workspace(&workspace_root()).expect("walk");
        let find = |p: &str| files.iter().find(|f| f.ctx.rel_path == p).map(|f| &f.ctx);
        assert!(find("tests/determinism.rs").is_some_and(|c| c.is_test_file));
        assert!(
            find("crates/graph/src/proptests.rs").is_some_and(|c| c.is_test_file),
            "cfg(test)-included module files are test code"
        );
        assert!(find("crates/tensor/src/gemm.rs").is_some_and(|c| !c.is_test_file));
    }
}
