//! Detection of test-only code regions.
//!
//! The panic-freedom and determinism rules apply to *library* code;
//! `#[cfg(test)]` modules and `#[test]` functions may unwrap and panic as
//! much as they like. This module marks, per token, whether it lives
//! inside such a region, by brace-matching the item that follows any
//! attribute whose argument list contains the bare identifier `test`
//! (covers `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`).
//!
//! Files can also opt out wholesale with a leading `#![cfg(test)]` inner
//! attribute; the workspace additionally treats `tests/`, `benches/`,
//! `examples/`, and `proptests.rs`-style files as test code at the path
//! level (see [`crate::walk`]).

use crate::tokenizer::{Token, TokenKind};

/// Per-token test-region flags, aligned with the token slice that
/// produced them.
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut is_test = vec![false; tokens.len()];
    // Code view: indices of non-comment tokens (comments never affect
    // attribute or brace structure).
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut c = 0usize;
    while c < code.len() {
        let i = code[c];
        if tokens[i].text == "#" {
            // Attribute: `#[…]` (outer) or `#![…]` (inner).
            let mut j = c + 1;
            let inner = j < code.len() && tokens[code[j]].text == "!";
            if inner {
                j += 1;
            }
            if j < code.len() && tokens[code[j]].text == "[" {
                let (end, has_test) = scan_attribute(tokens, &code, j);
                if has_test {
                    if inner {
                        // `#![cfg(test)]`: the whole file is test code.
                        is_test.iter_mut().for_each(|t| *t = true);
                        return is_test;
                    }
                    // Mark from the attribute through the item it gates.
                    let item_end = item_end_after(tokens, &code, end + 1);
                    let from = i;
                    let to = code.get(item_end).copied().unwrap_or(tokens.len() - 1);
                    for flag in is_test.iter_mut().take(to + 1).skip(from) {
                        *flag = true;
                    }
                    c = item_end + 1;
                    continue;
                }
                c = end + 1;
                continue;
            }
        }
        c += 1;
    }
    is_test
}

/// Scans an attribute's bracket group starting at `code[open]` (the `[`),
/// returning (code-index of the closing `]`, whether the bare ident
/// `test` appears inside).
fn scan_attribute(tokens: &[Token], code: &[usize], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut c = open;
    while c < code.len() {
        let t = &tokens[code[c]];
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (c, has_test);
                }
            }
            "test" if t.kind == TokenKind::Ident => has_test = true,
            _ => {}
        }
        c += 1;
    }
    (code.len().saturating_sub(1), has_test)
}

/// Finds the code-index where the item starting at `code[start]` ends:
/// either a `;` at depth 0 (e.g. `#[cfg(test)] mod proptests;`) or the
/// brace that closes its body. Any further attributes and doc comments
/// between the gate attribute and the item are part of the region.
fn item_end_after(tokens: &[Token], code: &[usize], start: usize) -> usize {
    let mut c = start;
    // Skip stacked attributes (`#[test] #[ignore] fn …`).
    while c < code.len() && tokens[code[c]].text == "#" {
        if c + 1 < code.len() && tokens[code[c + 1]].text == "[" {
            let (end, _) = scan_attribute(tokens, code, c + 1);
            c = end + 1;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    while c < code.len() {
        match tokens[code[c]].text.as_str() {
            ";" if depth == 0 => return c,
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return c;
                }
            }
            _ => {}
        }
        c += 1;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    /// Returns, for each `unwrap` ident in `src`, whether it is in a test
    /// region.
    fn unwrap_flags(src: &str) -> Vec<bool> {
        let toks = tokenize(src);
        let flags = test_regions(&toks);
        toks.iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &f)| f)
            .collect()
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = r#"
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
    #[test]
    fn t() { z.unwrap(); }
}
fn lib2() { w.unwrap(); }
"#;
        assert_eq!(unwrap_flags(src), [false, true, true, false]);
    }

    #[test]
    fn test_fn_outside_module_is_a_test_region() {
        let src = r#"
#[test]
fn t() { a.unwrap(); }
fn lib() { b.unwrap(); }
"#;
        assert_eq!(unwrap_flags(src), [true, false]);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = r#"
#[cfg(all(test, feature = "slow"))]
mod heavy { fn f() { a.unwrap(); } }
fn lib() { b.unwrap(); }
"#;
        assert_eq!(unwrap_flags(src), [true, false]);
    }

    #[test]
    fn string_test_does_not_count() {
        let src = r#"
#[cfg(feature = "test")]
mod not_tests { fn f() { a.unwrap(); } }
"#;
        assert_eq!(unwrap_flags(src), [false]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() { a.unwrap(); }";
        assert_eq!(unwrap_flags(src), [true]);
    }

    #[test]
    fn module_declaration_without_body_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod proptests;\nfn lib() { a.unwrap(); }";
        assert_eq!(unwrap_flags(src), [false]);
    }

    #[test]
    fn nested_braces_inside_test_module_stay_inside() {
        let src = r#"
#[cfg(test)]
mod tests {
    struct S { x: u32 }
    fn f() { if true { a.unwrap(); } }
}
fn lib() { b.unwrap(); }
"#;
        assert_eq!(unwrap_flags(src), [true, false]);
    }

    #[test]
    fn stacked_attributes_before_the_item_are_covered() {
        let src = r#"
#[test]
#[ignore]
fn t() { a.unwrap(); }
fn lib() { b.unwrap(); }
"#;
        assert_eq!(unwrap_flags(src), [true, false]);
    }
}
