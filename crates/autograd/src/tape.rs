//! The recording tape: eager forward evaluation plus reverse-mode backward.

use std::sync::Arc;

use fedomd_sparse::Csr;
use fedomd_tensor::activation::{relu_backward_inplace, softmax_rows_inplace};
use fedomd_tensor::gemm::{matmul_into, matmul_nt_into, matmul_tn_into};
use fedomd_tensor::ops::{add_row_broadcast, axpy};
use fedomd_tensor::Matrix;

use crate::cmd::{cmd_grad_weighted, cmd_value_weighted, CmdTargets};
use crate::workspace::Workspace;

/// Handle to a node on a [`Tape`]. Cheap to copy; only meaningful for the
/// tape that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Input or parameter; no backward propagation beyond gradient storage.
    Leaf,
    /// `C = A · B`.
    MatMul(usize, usize),
    /// `Y = S · X` for a constant sparse `S`.
    SpMM(Arc<Csr>, usize),
    /// `C = A + alpha · B` (same shapes).
    AddScaled(usize, usize, f32),
    /// Row-broadcast bias add: `Y = X + 1·bᵀ`, `b` is `1 × cols`.
    AddBias(usize, usize),
    /// Element-wise `max(0, x)`.
    Relu(usize),
    /// `alpha · x`.
    Scale(usize, f32),
    /// Element-wise product with a constant mask (dropout).
    MaskMul(usize, Matrix),
    /// Mean softmax cross-entropy over `mask` rows of the logits.
    SoftmaxCrossEntropy {
        logits: usize,
        probs: Matrix,
        labels: Vec<usize>,
        mask: Vec<usize>,
    },
    /// `‖WWᵀ − I‖_F` (paper Eq. 6, one layer's term).
    OrthoPenalty(usize),
    /// CMD distance of the activations against server targets (Eq. 11);
    /// `mean_scale` scales the first (mean) term (1 = the paper's Eq. 11).
    Cmd {
        z: usize,
        targets: CmdTargets,
        width: f32,
        mean_scale: f32,
    },
    /// `0.5 ‖W − T‖_F²` against a constant target (FedProx proximal term).
    SqDiff(usize, Matrix),
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// A gradient tape. Create one per optimisation step, record the forward
/// computation through its methods, call [`Tape::backward`], then read
/// parameter gradients with [`Tape::grad`].
///
/// Every matrix the tape produces — forward values, backward deltas,
/// gradient accumulators — is drawn from its [`Workspace`]. A fresh tape
/// starts with an empty pool; a training loop that threads one workspace
/// through consecutive tapes ([`Tape::with_workspace`] →
/// [`Tape::recycle`]) reuses the previous step's buffers instead of
/// allocating. Pooled and unpooled execution produce bit-identical
/// results: every taken buffer is fully overwritten before it is read.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    ws: Workspace,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tape drawing its buffers from `ws` (typically the pool
    /// recycled from the previous step's tape).
    pub fn with_workspace(ws: Workspace) -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            ws,
        }
    }

    /// Tears the tape down, returning every node value, gradient, and op
    /// scratch buffer to the workspace for the next step's tape.
    pub fn recycle(mut self) -> Workspace {
        for g in self.grads.drain(..).flatten() {
            self.ws.recycle(g);
        }
        for node in self.nodes.drain(..) {
            self.ws.recycle(node.value);
            match node.op {
                Op::MaskMul(_, mask) => self.ws.recycle(mask),
                Op::SoftmaxCrossEntropy { probs, .. } => self.ws.recycle(probs),
                Op::SqDiff(_, target) => self.ws.recycle(target),
                _ => {}
            }
        }
        self.ws
    }

    /// Returns a caller-owned matrix (e.g. a gradient taken off the tape)
    /// to this tape's buffer pool.
    pub fn recycle_matrix(&mut self, m: Matrix) {
        self.ws.recycle(m);
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// A pooled `1 × 1` matrix holding `v` (loss nodes, backward seed).
    fn scalar_value(&mut self, v: f32) -> Matrix {
        let mut m = self.ws.take_uninit(1, 1);
        m.as_mut_slice()[0] = v;
        m
    }

    /// Records a constant (no gradient tracked).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a constant copied into a pooled buffer — the allocation-free
    /// way to put a borrowed matrix (e.g. a cached `Ŝ·X`) on the tape.
    pub fn constant_copied(&mut self, value: &Matrix) -> Var {
        let v = self.ws.take_copy(value);
        self.push(v, Op::Leaf, false)
    }

    /// Records a trainable parameter (gradient accumulated on backward).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// [`Tape::param`] copying from a borrowed matrix into a pooled buffer.
    pub fn param_copied(&mut self, value: &Matrix) -> Var {
        let v = self.ws.take_copy(value);
        self.push(v, Op::Leaf, true)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The scalar value of a `1 × 1` node.
    ///
    /// # Panics
    /// Panics when the node is not `1 × 1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is {:?}", m.shape());
        m[(0, 0)]
    }

    /// The accumulated gradient of a node, if any was propagated.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }

    /// Moves the gradient of `v` off the tape, or returns a pooled zero
    /// matrix of the node's shape when none was propagated. The clone-free
    /// way for a trainer to collect parameter gradients; return the
    /// buffers with [`Tape::recycle_matrix`] after the optimiser step.
    pub fn grad_or_zeros(&mut self, v: Var) -> Matrix {
        match self.grads[v.0].take() {
            Some(g) => g,
            None => {
                let (r, c) = self.nodes[v.0].value.shape();
                self.ws.take_zeroed(r, c)
            }
        }
    }

    /// `C = A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        let mut value = self.ws.take_uninit(va.rows(), vb.cols());
        matmul_into(va, vb, &mut value);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a.0, b.0), rg)
    }

    /// `Y = S · X` with a constant sparse operator (graph propagation).
    pub fn spmm(&mut self, s: Arc<Csr>, x: Var) -> Var {
        let vx = &self.nodes[x.0].value;
        let mut value = self.ws.take_uninit(s.rows(), vx.cols());
        s.spmm_into(vx, &mut value);
        let rg = self.rg(x);
        self.push(value, Op::SpMM(s, x.0), rg)
    }

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.add_scaled(a, b, 1.0)
    }

    /// `a + alpha · b` (shapes must match). The workhorse for combining the
    /// paper's three loss terms (Eq. 12).
    pub fn add_scaled(&mut self, a: Var, b: Var, alpha: f32) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        assert_eq!(va.shape(), vb.shape(), "add_scaled: shape mismatch");
        let mut value = self.ws.take_copy(va);
        axpy(&mut value, alpha, vb);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddScaled(a.0, b.0, alpha), rg)
    }

    /// Adds a `1 × cols` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let vx = &self.nodes[x.0].value;
        let vb = &self.nodes[bias.0].value;
        assert_eq!(vb.rows(), 1, "add_bias: bias must be 1 x cols");
        assert_eq!(vx.cols(), vb.cols(), "add_bias: width mismatch");
        let mut value = self.ws.take_copy(vx);
        add_row_broadcast(&mut value, self.nodes[bias.0].value.row(0));
        let rg = self.rg(x) || self.rg(bias);
        self.push(value, Op::AddBias(x.0, bias.0), rg)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let mut value = self.ws.take_copy(&self.nodes[x.0].value);
        value.map_inplace(|v| v.max(0.0));
        let rg = self.rg(x);
        self.push(value, Op::Relu(x.0), rg)
    }

    /// `alpha · x`.
    pub fn scale(&mut self, x: Var, alpha: f32) -> Var {
        let mut value = self.ws.take_copy(&self.nodes[x.0].value);
        value.map_inplace(|v| v * alpha);
        let rg = self.rg(x);
        self.push(value, Op::Scale(x.0, alpha), rg)
    }

    /// Element-wise product with a fixed 0/`1/keep` mask (inverted dropout).
    /// The caller supplies the mask so that randomness stays seeded.
    pub fn mask_mul(&mut self, x: Var, mask: Matrix) -> Var {
        let vx = &self.nodes[x.0].value;
        assert_eq!(vx.shape(), mask.shape(), "mask_mul: shape mismatch");
        let mut value = self.ws.take_copy(vx);
        for (v, &m) in value.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *v *= m;
        }
        let rg = self.rg(x);
        self.push(value, Op::MaskMul(x.0, mask), rg)
    }

    /// Mean softmax cross-entropy of `logits` rows listed in `mask` against
    /// integer `labels` (`labels.len() == logits.rows()`). Returns a scalar
    /// node. This is the `CE(Z^l, Y)` of the paper's Eq. 12, restricted to
    /// the training mask.
    ///
    /// # Panics
    /// Panics when `mask` is empty or an index/label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize], mask: &[usize]) -> Var {
        let lm = &self.nodes[logits.0].value;
        let (n, k) = lm.shape();
        assert_eq!(
            labels.len(),
            n,
            "softmax_cross_entropy: labels length mismatch"
        );
        assert!(!mask.is_empty(), "softmax_cross_entropy: empty mask");
        let mut probs = self.ws.take_copy(lm);
        softmax_rows_inplace(&mut probs);
        let mut loss = 0.0f64;
        for &r in mask {
            assert!(r < n, "mask row {r} out of bounds");
            let y = labels[r];
            assert!(y < k, "label {y} out of bounds for {k} classes");
            loss -= (probs[(r, y)].max(1e-12) as f64).ln();
        }
        let value = self.scalar_value((loss / mask.len() as f64) as f32);
        let rg = self.rg(logits);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits: logits.0,
                probs,
                labels: labels.to_vec(),
                mask: mask.to_vec(),
            },
            rg,
        )
    }

    /// Orthogonality penalty `‖WWᵀ − I‖_F` (one term of paper Eq. 6).
    pub fn ortho_penalty(&mut self, w: Var) -> Var {
        let a = residual_wwt_minus_i(&mut self.ws, &self.nodes[w.0].value);
        let norm = a.frobenius_norm();
        self.ws.recycle(a);
        let value = self.scalar_value(norm);
        let rg = self.rg(w);
        self.push(value, Op::OrthoPenalty(w.0), rg)
    }

    /// CMD distance of activations `z` to server `targets` (paper Eq. 11).
    pub fn cmd_loss(&mut self, z: Var, targets: &CmdTargets, width: f32) -> Var {
        self.cmd_loss_weighted(z, targets, width, 1.0)
    }

    /// [`Tape::cmd_loss`] with the mean-alignment term scaled by
    /// `mean_scale` (component ablation; 1.0 reproduces Eq. 11).
    pub fn cmd_loss_weighted(
        &mut self,
        z: Var,
        targets: &CmdTargets,
        width: f32,
        mean_scale: f32,
    ) -> Var {
        let v = cmd_value_weighted(self.value(z), targets, width, mean_scale);
        let value = self.scalar_value(v);
        let rg = self.rg(z);
        self.push(
            value,
            Op::Cmd {
                z: z.0,
                targets: targets.clone(),
                width,
                mean_scale,
            },
            rg,
        )
    }

    /// Proximal penalty `0.5‖W − T‖_F²` against a constant target (FedProx).
    pub fn sq_diff(&mut self, w: Var, target: &Matrix) -> Var {
        assert_eq!(
            self.value(w).shape(),
            target.shape(),
            "sq_diff: shape mismatch"
        );
        let d = fedomd_tensor::ops::sq_distance(self.value(w), target);
        let target = self.ws.take_copy(target);
        let value = self.scalar_value(0.5 * d);
        let rg = self.rg(w);
        self.push(value, Op::SqDiff(w.0, target), rg)
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`.
    ///
    /// Gradients of earlier backward calls are cleared. May be called on any
    /// `1 × 1` node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a scalar node"
        );
        for i in 0..self.grads.len() {
            if let Some(g) = self.grads[i].take() {
                self.ws.recycle(g);
            }
        }
        let seed = self.scalar_value(1.0);
        self.grads[loss.0] = Some(seed);

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.propagate(i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn accumulate(&mut self, idx: usize, delta: Matrix) {
        if !self.nodes[idx].requires_grad {
            self.ws.recycle(delta);
            return;
        }
        match &mut self.grads[idx] {
            Some(g) => axpy(g, 1.0, &delta),
            slot @ None => {
                *slot = Some(delta);
                return;
            }
        }
        self.ws.recycle(delta);
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        // Taking op details by value/borrow split: compute deltas first,
        // then accumulate.
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let da = if self.nodes[a].requires_grad {
                    let vb = &self.nodes[b].value;
                    let mut d = self.ws.take_uninit(g.rows(), vb.rows());
                    matmul_nt_into(g, vb, &mut d);
                    Some(d)
                } else {
                    None
                };
                let db = if self.nodes[b].requires_grad {
                    let va = &self.nodes[a].value;
                    let mut d = self.ws.take_uninit(va.cols(), g.cols());
                    matmul_tn_into(va, g, &mut d);
                    Some(d)
                } else {
                    None
                };
                if let Some(d) = da {
                    self.accumulate(a, d);
                }
                if let Some(d) = db {
                    self.accumulate(b, d);
                }
            }
            Op::SpMM(s, x) => {
                let x = *x;
                if self.nodes[x].requires_grad {
                    let st = self.ws.transposed(s);
                    let mut d = self.ws.take_uninit(st.rows(), g.cols());
                    st.spmm_into(g, &mut d);
                    self.accumulate(x, d);
                }
            }
            Op::AddScaled(a, b, alpha) => {
                let (a, b, alpha) = (*a, *b, *alpha);
                let da = self.ws.take_copy(g);
                let mut db = self.ws.take_copy(g);
                db.map_inplace(|v| v * alpha);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::AddBias(x, bias) => {
                let (x, bias) = (*x, *bias);
                let dx = self.ws.take_copy(g);
                self.accumulate(x, dx);
                if self.nodes[bias].requires_grad {
                    let cols = g.cols();
                    let mut db = self.ws.take_zeroed(1, cols);
                    for row in g.as_slice().chunks(cols) {
                        for (d, &v) in db.as_mut_slice().iter_mut().zip(row) {
                            *d += v;
                        }
                    }
                    self.accumulate(bias, db);
                }
            }
            Op::Relu(x) => {
                let x = *x;
                let mut d = self.ws.take_copy(g);
                relu_backward_inplace(&self.nodes[x].value, &mut d);
                self.accumulate(x, d);
            }
            Op::Scale(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                let mut d = self.ws.take_copy(g);
                d.map_inplace(|v| v * alpha);
                self.accumulate(x, d);
            }
            Op::MaskMul(x, mask) => {
                let x = *x;
                let mut d = self.ws.take_copy(g);
                for (dv, &m) in d.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *dv *= m;
                }
                self.accumulate(x, d);
            }
            Op::SoftmaxCrossEntropy {
                logits,
                probs,
                labels,
                mask,
            } => {
                let logits = *logits;
                let gout = g[(0, 0)];
                let scale = gout / mask.len() as f32;
                let mut d = self.ws.take_zeroed(probs.rows(), probs.cols());
                for &r in mask {
                    let y = labels[r];
                    let drow = d.row_mut(r);
                    for (c, dv) in drow.iter_mut().enumerate() {
                        let p = probs[(r, c)];
                        *dv = scale * (p - if c == y { 1.0 } else { 0.0 });
                    }
                }
                self.accumulate(logits, d);
            }
            Op::OrthoPenalty(w) => {
                let w = *w;
                let gout = g[(0, 0)];
                let a = residual_wwt_minus_i(&mut self.ws, &self.nodes[w].value);
                let norm = a.frobenius_norm();
                if norm > 1e-12 {
                    // d‖A‖_F/dW = 2 A W / ‖A‖_F with A = WWᵀ − I (symmetric).
                    let wm = &self.nodes[w].value;
                    let mut d = self.ws.take_uninit(a.rows(), wm.cols());
                    matmul_into(&a, wm, &mut d);
                    d.map_inplace(|v| v * 2.0 * gout / norm);
                    self.ws.recycle(a);
                    self.accumulate(w, d);
                } else {
                    self.ws.recycle(a);
                }
            }
            Op::Cmd {
                z,
                targets,
                width,
                mean_scale,
            } => {
                let z = *z;
                let gout = g[(0, 0)];
                let d = cmd_grad_weighted(&self.nodes[z].value, targets, *width, gout, *mean_scale);
                self.accumulate(z, d);
            }
            Op::SqDiff(w, target) => {
                let w = *w;
                let gout = g[(0, 0)];
                let mut d = self.ws.take_copy(&self.nodes[w].value);
                for (dv, &t) in d.as_mut_slice().iter_mut().zip(target.as_slice()) {
                    *dv -= t;
                }
                d.map_inplace(|v| v * gout);
                self.accumulate(w, d);
            }
        }
    }
}

/// `A = WWᵀ − I` for the orthogonality penalty, in a pooled buffer.
fn residual_wwt_minus_i(ws: &mut Workspace, w: &Matrix) -> Matrix {
    let mut a = ws.take_uninit(w.rows(), w.rows());
    matmul_nt_into(w, w, &mut a);
    let n = a.rows();
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_diff_check;
    use crate::cmd::{cmd_grad, cmd_value};
    use fedomd_tensor::rng::seeded;

    fn randm(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v * 0.4)
    }

    /// Builds a scalar loss as sum of all elements via matmul with ones.
    fn sum_to_scalar(t: &mut Tape, v: Var) -> Var {
        let (r, c) = t.value(v).shape();
        let left = t.constant(Matrix::full(1, r, 1.0));
        let right = t.constant(Matrix::full(c, 1, 1.0));
        let tmp = t.matmul(left, v);
        t.matmul(tmp, right)
    }

    #[test]
    fn matmul_gradients_match_fd() {
        let a0 = randm(4, 3, 1);
        let b0 = randm(3, 5, 2);
        let mut t = Tape::new();
        let a = t.param(a0.clone());
        let b = t.param(b0.clone());
        let c = t.matmul(a, b);
        let loss = sum_to_scalar(&mut t, c);
        t.backward(loss);
        let ga = t.grad(a).unwrap().clone();
        let gb = t.grad(b).unwrap().clone();

        finite_diff_check(
            |m| {
                let mut t = Tape::new();
                let a = t.param(m.clone());
                let b = t.constant(b0.clone());
                let c = t.matmul(a, b);
                let l = sum_to_scalar(&mut t, c);
                t.scalar(l)
            },
            &a0,
            &ga,
            1e-3,
            1e-2,
        );
        finite_diff_check(
            |m| {
                let mut t = Tape::new();
                let a = t.constant(a0.clone());
                let b = t.param(m.clone());
                let c = t.matmul(a, b);
                let l = sum_to_scalar(&mut t, c);
                t.scalar(l)
            },
            &b0,
            &gb,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn relu_and_bias_gradients_match_fd() {
        let x0 = randm(5, 4, 3);
        let b0 = randm(1, 4, 4);
        let run = |xm: &Matrix, bm: &Matrix, grads: bool| -> (f32, Option<(Matrix, Matrix)>) {
            let mut t = Tape::new();
            let x = t.param(xm.clone());
            let b = t.param(bm.clone());
            let h = t.add_bias(x, b);
            let h = t.relu(h);
            let l = sum_to_scalar(&mut t, h);
            if grads {
                t.backward(l);
                let gx = t.grad(x).unwrap().clone();
                let gb = t.grad(b).unwrap().clone();
                (t.scalar(l), Some((gx, gb)))
            } else {
                (t.scalar(l), None)
            }
        };
        let (_, g) = run(&x0, &b0, true);
        let (gx, gb) = g.unwrap();
        finite_diff_check(|m| run(m, &b0, false).0, &x0, &gx, 1e-3, 2e-2);
        finite_diff_check(|m| run(&x0, m, false).0, &b0, &gb, 1e-3, 2e-2);
    }

    #[test]
    fn spmm_gradient_matches_fd() {
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        ));
        let x0 = randm(5, 3, 5);
        let run = |xm: &Matrix| {
            let mut t = Tape::new();
            let x = t.param(xm.clone());
            let y = t.spmm(s.clone(), x);
            let l = sum_to_scalar(&mut t, y);
            (t, x, l)
        };
        let (mut t, x, l) = run(&x0);
        t.backward(l);
        let gx = t.grad(x).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &x0,
            &gx,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_gradient_matches_fd() {
        let logits0 = randm(6, 3, 7);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mask = vec![0, 2, 4, 5];
        let run = |m: &Matrix| {
            let mut t = Tape::new();
            let lg = t.param(m.clone());
            let l = t.softmax_cross_entropy(lg, &labels, &mask);
            (t, lg, l)
        };
        let (mut t, lg, l) = run(&logits0);
        t.backward(l);
        let g = t.grad(lg).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &logits0,
            &g,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_value_is_log_k_at_uniform_logits() {
        let mut t = Tape::new();
        let lg = t.param(Matrix::zeros(4, 5));
        let labels = vec![0, 1, 2, 3];
        let l = t.softmax_cross_entropy(lg, &labels, &[0, 1, 2, 3]);
        assert!((t.scalar(l) - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ortho_penalty_gradient_matches_fd() {
        let w0 = randm(4, 6, 8);
        let run = |m: &Matrix| {
            let mut t = Tape::new();
            let w = t.param(m.clone());
            let l = t.ortho_penalty(w);
            (t, w, l)
        };
        let (mut t, w, l) = run(&w0);
        t.backward(l);
        let g = t.grad(w).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &w0,
            &g,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn ortho_penalty_is_zero_for_orthonormal_rows() {
        // Rows of the identity are orthonormal: WWᵀ = I.
        let mut t = Tape::new();
        let w = t.param(Matrix::identity(3));
        let l = t.ortho_penalty(w);
        assert!(t.scalar(l) < 1e-6);
        t.backward(l);
        // Zero-norm residual: subgradient is zero (no grad accumulated or zero).
        if let Some(g) = t.grad(w) {
            assert!(g.max_abs() < 1e-6);
        }
    }

    #[test]
    fn sq_diff_gradient_is_w_minus_target() {
        let w0 = randm(3, 3, 9);
        let target = randm(3, 3, 10);
        let mut t = Tape::new();
        let w = t.param(w0.clone());
        let l = t.sq_diff(w, &target);
        t.backward(l);
        let g = t.grad(w).unwrap();
        g.assert_close(&fedomd_tensor::ops::sub(&w0, &target), 1e-5);
    }

    #[test]
    fn cmd_loss_through_tape_matches_direct() {
        let z0 = randm(8, 4, 11);
        let targets = CmdTargets::from_matrix(&randm(10, 4, 12), 5);
        let mut t = Tape::new();
        let z = t.param(z0.clone());
        let l = t.cmd_loss(z, &targets, 1.0);
        assert!((t.scalar(l) - cmd_value(&z0, &targets, 1.0)).abs() < 1e-6);
        t.backward(l);
        t.grad(z)
            .unwrap()
            .assert_close(&cmd_grad(&z0, &targets, 1.0, 1.0), 1e-5);
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x  =>  dy/dx = 2.
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 1, vec![3.0]));
        let y = t.add(x, x);
        t.backward(y);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let w = t.param(Matrix::from_vec(1, 1, vec![4.0]));
        let y = t.matmul(x, w);
        t.backward(y);
        assert!(t.grad(x).is_none());
        assert!(t.grad(w).is_some());
    }

    #[test]
    fn mask_mul_routes_gradient_through_mask() {
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let mask = Matrix::from_vec(1, 3, vec![2.0, 0.0, 2.0]);
        let y = t.mask_mul(x, mask);
        let l = sum_to_scalar(&mut t, y);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn scale_chain_rule() {
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 1, vec![5.0]));
        let y = t.scale(x, -3.0);
        t.backward(y);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], -3.0);
    }

    #[test]
    fn two_layer_gcn_like_graph_end_to_end_fd() {
        // ReLU(Ŝ X W0) W1 -> CE: the exact shape of the paper's local model.
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        ));
        let x0 = randm(6, 4, 20);
        let w0 = randm(4, 5, 21);
        let w1 = randm(5, 3, 22);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mask = vec![0, 1, 3, 5];

        let run = |w0m: &Matrix, w1m: &Matrix| {
            let mut t = Tape::new();
            let x = t.constant(x0.clone());
            let w0v = t.param(w0m.clone());
            let w1v = t.param(w1m.clone());
            let h = t.spmm(s.clone(), x);
            let h = t.matmul(h, w0v);
            let h = t.relu(h);
            let h = t.spmm(s.clone(), h);
            let logits = t.matmul(h, w1v);
            let l = t.softmax_cross_entropy(logits, &labels, &mask);
            (t, w0v, w1v, l)
        };
        let (mut t, w0v, w1v, l) = run(&w0, &w1);
        t.backward(l);
        let g0 = t.grad(w0v).unwrap().clone();
        let g1 = t.grad(w1v).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, _, l) = run(m, &w1);
                t.scalar(l)
            },
            &w0,
            &g0,
            1e-3,
            3e-2,
        );
        finite_diff_check(
            |m| {
                let (t, _, _, l) = run(&w0, m);
                t.scalar(l)
            },
            &w1,
            &g1,
            1e-3,
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.param(Matrix::zeros(2, 2));
        t.backward(x);
    }

    /// Four SGD steps through a graph touching every op, once with a fresh
    /// tape per step and once threading a single workspace through
    /// [`Tape::with_workspace`] / [`Tape::recycle`]. Losses and parameters
    /// must agree to the bit: reused buffers never change a result.
    #[test]
    fn workspace_reuse_is_bit_identical() {
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        ));
        let x0 = randm(6, 4, 30);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mask_rows = vec![0, 1, 3, 5];
        let drop_mask = randm(6, 5, 31).map(|v| if v > 0.0 { 2.0 } else { 0.0 });
        let targets = CmdTargets::from_matrix(&randm(8, 3, 32), 3);
        let prox_target = randm(4, 5, 33);

        // One step: forward through every op, backward, SGD update.
        // Returns the loss; mutates the parameters in place.
        let step = |t: &mut Tape, w0: &mut Matrix, w1: &mut Matrix, b: &mut Matrix| -> f32 {
            let x = t.constant_copied(&x0);
            let w0v = t.param_copied(w0);
            let w1v = t.param_copied(w1);
            let bv = t.param_copied(b);
            let h = t.spmm(s.clone(), x);
            let h = t.matmul(h, w0v);
            let h = t.add_bias(h, bv);
            let h = t.relu(h);
            let h = t.mask_mul(h, drop_mask.clone());
            let h2 = t.scale(h, 0.5);
            let h = t.add_scaled(h, h2, 1.0);
            let logits = t.matmul(h, w1v);
            let ce = t.softmax_cross_entropy(logits, &labels, &mask_rows);
            let ortho = t.ortho_penalty(w0v);
            let cmd = t.cmd_loss(logits, &targets, 1.0);
            let prox = t.sq_diff(w0v, &prox_target);
            let l = t.add_scaled(ce, ortho, 0.1);
            let l = t.add_scaled(l, cmd, 0.3);
            let l = t.add_scaled(l, prox, 0.05);
            t.backward(l);
            for (p, v) in [(w0v, &mut *w0), (w1v, &mut *w1), (bv, &mut *b)] {
                let g = t.grad_or_zeros(p);
                axpy(v, -0.05, &g);
                t.recycle_matrix(g);
            }
            t.scalar(l)
        };

        let (mut aw0, mut aw1, mut ab) = (randm(4, 5, 34), randm(5, 3, 35), randm(1, 5, 36));
        let (mut bw0, mut bw1, mut bb) = (aw0.clone(), aw1.clone(), ab.clone());

        let mut ws = Workspace::new();
        for i in 0..4 {
            let mut fresh = Tape::new();
            let la = step(&mut fresh, &mut aw0, &mut aw1, &mut ab);

            let mut pooled = Tape::with_workspace(std::mem::take(&mut ws));
            let lb = step(&mut pooled, &mut bw0, &mut bw1, &mut bb);
            ws = pooled.recycle();

            assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged at step {i}");
            if i > 0 {
                assert!(ws.pooled_buffers() > 0, "workspace never pooled anything");
            }
        }
        for (u, v) in [(&aw0, &bw0), (&aw1, &bw1), (&ab, &bb)] {
            for (x, y) in u.as_slice().iter().zip(v.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
